"""Logical optimization: rule batches run to a fixed point.

The rules mirror Catalyst's standard batch (paper Figure 1, "Logical
Optimization Layer"): constant folding, boolean simplification, filter
pruning/combining, predicate pushdown (through projects, joins, and
unions), projection collapsing, limit combining, and column pruning.

Column pruning matters doubly here: it is what lets the *vanilla*
columnar cache win on projection in Figure 2 (a pruned scan touches
only the projected column vectors), and what the Indexed DataFrame
cannot exploit because its storage is row-oriented.

Extension point: :class:`Optimizer` accepts ``extra_rules`` so
libraries (like :mod:`repro.core`) can inject index-aware rewrites
without modifying this module — the reproduction of the paper's "no
Spark source modification" claim.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sql.expressions import (
    Alias,
    And,
    Attribute,
    Expression,
    Literal,
    Not,
    combine_conjuncts,
    split_conjuncts,
    strip_alias,
)
from repro.sql.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LocalRelation,
    LogicalPlan,
    Project,
    Relation,
    Sort,
    SubqueryAlias,
    Union,
)
from repro.sql.types import BooleanType

Rule = Callable[[LogicalPlan], LogicalPlan]


def substitute_attributes(
    expr: Expression, mapping: dict[int, Expression]
) -> Expression:
    """Replace attribute references by expressions keyed on expr_id."""

    def sub(node: Expression) -> Expression:
        if isinstance(node, Attribute) and node.expr_id in mapping:
            return mapping[node.expr_id]
        return node

    return expr.transform_up(sub)


def alias_map(project_list: Sequence[Expression]) -> dict[int, Expression]:
    """expr_id → defining expression for a project list."""
    mapping: dict[int, Expression] = {}
    for expr in project_list:
        if isinstance(expr, Alias):
            mapping[expr.expr_id] = expr.child
        elif isinstance(expr, Attribute):
            mapping[expr.expr_id] = expr
    return mapping


# ----------------------------------------------------------------------
# Expression-level rules
# ----------------------------------------------------------------------


def constant_folding(plan: LogicalPlan) -> LogicalPlan:
    """Evaluate literal-only subtrees at plan time."""

    def fold(expr: Expression) -> Expression:
        if isinstance(expr, (Literal, Alias)):
            return expr
        if expr.foldable and expr.resolved:
            return Literal(expr.eval(()), expr.data_type())
        return expr

    return plan.transform_expressions(fold)


def boolean_simplification(plan: LogicalPlan) -> LogicalPlan:
    """Short-circuit AND/OR/NOT with literal operands."""

    def simplify(expr: Expression) -> Expression:
        if isinstance(expr, And):
            for side, other in ((expr.left, expr.right), (expr.right, expr.left)):
                if isinstance(side, Literal):
                    if side.value is True:
                        return other
                    if side.value is False:
                        return Literal(False, BooleanType())
        elif isinstance(expr, Not):
            child = expr.child
            if isinstance(child, Literal):
                value = None if child.value is None else (not child.value)
                return Literal(value, BooleanType())
            if isinstance(child, Not):
                return child.child
        else:
            from repro.sql.expressions import Or

            if isinstance(expr, Or):
                for side, other in ((expr.left, expr.right), (expr.right, expr.left)):
                    if isinstance(side, Literal):
                        if side.value is False:
                            return other
                        if side.value is True:
                            return Literal(True, BooleanType())
        return expr

    return plan.transform_expressions(simplify)


def simplify_in_lists(plan: LogicalPlan) -> LogicalPlan:
    """Dedupe literal IN lists; collapse a single-literal IN to ``=``.

    ``x IN (5, 5, 5)`` carries its duplicates all the way into the
    physical plan — the index-lookup path then probes (or at least
    dedupes) per literal, and pruning analysis checks each one. One
    literal is exactly equality, which the index-equality rewrite
    already fast-paths.
    """
    from repro.sql.expressions import EqualTo, In

    def simplify(expr: Expression) -> Expression:
        if not isinstance(expr, In):
            return expr
        options = expr.options
        if not all(isinstance(o, Literal) for o in options):
            return expr
        seen = set()
        unique: list[Expression] = []
        for option in options:
            try:
                if option.value in seen:
                    continue
                seen.add(option.value)
            except TypeError:
                pass  # unhashable literal: keep it, sound either way
            unique.append(option)
        if len(unique) == 1:
            return EqualTo(expr.value, unique[0])
        if len(unique) == len(options):
            return expr
        return In(expr.value, unique)

    return plan.transform_expressions(simplify)


# ----------------------------------------------------------------------
# Plan-level rules
# ----------------------------------------------------------------------


def simplify_null_checks(plan: LogicalPlan) -> LogicalPlan:
    """Fold IS [NOT] NULL on provably non-nullable attributes.

    Nullability flows from schema declarations through the plan, so
    e.g. ``WHERE id IS NOT NULL`` on a non-nullable key disappears
    entirely (via prune_filters).
    """
    from repro.sql.expressions import IsNotNull, IsNull

    def simplify(expr: Expression) -> Expression:
        if isinstance(expr, IsNull):
            child = expr.child
            if isinstance(child, Attribute) and not child.nullable:
                return Literal(False, BooleanType())
            if isinstance(child, Literal):
                return Literal(child.value is None, BooleanType())
        elif isinstance(expr, IsNotNull):
            child = expr.child
            if isinstance(child, Attribute) and not child.nullable:
                return Literal(True, BooleanType())
            if isinstance(child, Literal):
                return Literal(child.value is not None, BooleanType())
        return expr

    return plan.transform_expressions(simplify)


def eliminate_subquery_aliases(plan: LogicalPlan) -> LogicalPlan:
    def strip(node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, SubqueryAlias):
            return node.child
        return node

    return plan.transform_up(strip)


def prune_filters(plan: LogicalPlan) -> LogicalPlan:
    """Drop always-true filters; empty out always-false ones."""

    def prune(node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, Filter) and isinstance(node.condition, Literal):
            if node.condition.value is True:
                return node.child
            return LocalRelation(node.output(), [])
        return node

    return plan.transform_up(prune)


def combine_filters(plan: LogicalPlan) -> LogicalPlan:
    def combine(node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, Filter) and isinstance(node.child, Filter):
            inner = node.child
            return Filter(And(inner.condition, node.condition), inner.child)
        return node

    return plan.transform_up(combine)


def combine_limits(plan: LogicalPlan) -> LogicalPlan:
    def combine(node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, Limit) and isinstance(node.child, Limit):
            return Limit(min(node.n, node.child.n), node.child.child)
        return node

    return plan.transform_up(combine)


def collapse_projects(plan: LogicalPlan) -> LogicalPlan:
    """Merge adjacent Projects by inlining the lower select list."""

    def collapse(node: LogicalPlan) -> LogicalPlan:
        if not (isinstance(node, Project) and isinstance(node.child, Project)):
            return node
        lower = node.child
        mapping = alias_map(lower.project_list)
        rebuilt: list[Expression] = []
        for expr in node.project_list:
            if isinstance(expr, Attribute):
                defining = mapping.get(expr.expr_id, expr)
                if isinstance(defining, Attribute):
                    rebuilt.append(defining if defining.expr_id == expr.expr_id else expr)
                else:
                    rebuilt.append(Alias(defining, expr.name, expr.expr_id))
            elif isinstance(expr, Alias):
                rebuilt.append(
                    Alias(
                        substitute_attributes(expr.child, mapping),
                        expr.name,
                        expr.expr_id,
                    )
                )
            else:
                return node
        return Project(rebuilt, lower.child)

    return plan.transform_up(collapse)


def push_down_predicates(plan: LogicalPlan) -> LogicalPlan:
    """Move filters closer to the data they reference."""

    def push(node: LogicalPlan) -> LogicalPlan:
        if not isinstance(node, Filter):
            return node
        child = node.child

        if isinstance(child, Project):
            mapping = alias_map(child.project_list)
            has_aggregates = False
            from repro.sql.expressions import AggregateExpression

            for expr in child.project_list:
                inner = strip_alias(expr)
                if any(
                    True
                    for _ in inner.collect(
                        lambda e: isinstance(e, AggregateExpression)
                    )
                ):
                    has_aggregates = True
            if not has_aggregates:
                pushed = substitute_attributes(node.condition, mapping)
                return Project(child.project_list, Filter(pushed, child.child))
            return node

        if isinstance(child, Join):
            return _push_into_join(node, child)

        if isinstance(child, Union):
            left_out = child.left.output()
            right_out = child.right.output()
            union_out = child.output()
            left_map = {
                u.expr_id: l for u, l in zip(union_out, left_out)
            }
            right_map = {
                u.expr_id: r for u, r in zip(union_out, right_out)
            }
            left_cond = substitute_attributes(node.condition, left_map)  # type: ignore[arg-type]
            right_cond = substitute_attributes(node.condition, right_map)  # type: ignore[arg-type]
            return Union(
                Filter(left_cond, child.left), Filter(right_cond, child.right)
            )

        if isinstance(child, (Sort, Limit)):
            if isinstance(child, Limit):
                return node  # filtering below a limit changes results
            return type(child)(child.orders, Filter(node.condition, child.child))  # type: ignore[call-arg]

        return node

    return plan.transform_up(push)


def _push_into_join(filter_node: Filter, join: Join) -> LogicalPlan:
    left_ids = {a.expr_id for a in join.left.output()}
    right_ids = {a.expr_id for a in join.right.output()}
    to_left: list[Expression] = []
    to_right: list[Expression] = []
    remaining: list[Expression] = []
    for conjunct in split_conjuncts(filter_node.condition):
        refs = {a.expr_id for a in conjunct.references}
        if refs and refs <= left_ids and join.how in ("inner", "left", "semi", "anti", "cross"):
            to_left.append(conjunct)
        elif refs and refs <= right_ids and join.how in ("inner", "right", "cross"):
            to_right.append(conjunct)
        else:
            remaining.append(conjunct)
    if not to_left and not to_right:
        return filter_node
    left = join.left
    right = join.right
    left_cond = combine_conjuncts(to_left)
    right_cond = combine_conjuncts(to_right)
    if left_cond is not None:
        left = Filter(left_cond, left)
    if right_cond is not None:
        right = Filter(right_cond, right)
    new_join = Join(left, right, join.how, join.condition)
    rest = combine_conjuncts(remaining)
    return Filter(rest, new_join) if rest is not None else new_join


def prune_columns(plan: LogicalPlan) -> LogicalPlan:
    """Insert attribute-only Projects so scans read only needed columns."""
    required = {a.expr_id for a in plan.output()}
    return _prune(plan, required)


def _restrict(plan: LogicalPlan, required: set[int]) -> LogicalPlan:
    """Wrap ``plan`` in a Project keeping only required attributes."""
    out = plan.output()
    keep = [a for a in out if a.expr_id in required]
    if len(keep) == len(out) or not keep:
        return plan
    return Project(keep, plan)


def _prune(plan: LogicalPlan, required: set[int]) -> LogicalPlan:
    if isinstance(plan, Project):
        keep = [
            e
            for e in plan.project_list
            if isinstance(e, Attribute) and e.expr_id in required
            or isinstance(e, Alias) and e.expr_id in required
        ]
        if not keep:
            keep = plan.project_list[:1]
        needed = {r.expr_id for e in keep for r in e.references}
        return Project(keep, _prune(plan.child, needed))
    if isinstance(plan, Filter):
        needed = required | {r.expr_id for r in plan.condition.references}
        return Filter(plan.condition, _prune(plan.child, needed))
    if isinstance(plan, Aggregate):
        needed = {
            r.expr_id
            for e in [*plan.grouping, *plan.aggregate_list]
            for r in e.references
        }
        return Aggregate(
            plan.grouping, plan.aggregate_list, _prune(plan.child, needed)
        )
    if isinstance(plan, Join):
        cond_refs = (
            {r.expr_id for r in plan.condition.references}
            if plan.condition is not None
            else set()
        )
        needed = required | cond_refs
        left = _restrict(_prune(plan.left, needed), needed)
        right = _restrict(_prune(plan.right, needed), needed)
        return Join(left, right, plan.how, plan.condition)
    if isinstance(plan, Sort):
        needed = required | {
            r.expr_id for o in plan.orders for r in o.child.references
        }
        return Sort(plan.orders, _prune(plan.child, needed))
    if isinstance(plan, Limit):
        return Limit(plan.n, _prune(plan.child, required))
    if isinstance(plan, Distinct):
        # Distinct dedups whole rows: every child column is semantically
        # significant, so nothing below it can be pruned away.
        return plan
    if isinstance(plan, Union):
        union_out = plan.output()
        keep_positions = [
            i for i, a in enumerate(union_out) if a.expr_id in required
        ]
        if len(keep_positions) == len(union_out):
            left = _prune(plan.left, {a.expr_id for a in plan.left.output()})
            right = _prune(plan.right, {a.expr_id for a in plan.right.output()})
            return Union(left, right)
        left_out = plan.left.output()
        right_out = plan.right.output()
        left_keep = [left_out[i] for i in keep_positions]
        right_keep = [right_out[i] for i in keep_positions]
        left = Project(left_keep, plan.left)
        right = Project(right_keep, plan.right)
        return Union(
            _prune(left, {a.expr_id for a in left_keep}),
            _prune(right, {a.expr_id for a in right_keep}),
        )
    if isinstance(plan, Relation):
        return _restrict(plan, required)
    if plan.children:
        return plan.with_new_children(
            [_prune(c, {a.expr_id for a in c.output()}) for c in plan.children]
        )
    return plan


def remove_redundant_projects(plan: LogicalPlan) -> LogicalPlan:
    """Drop Projects that merely repeat their child's full output."""

    def remove(node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, Project):
            child_out = node.child.output()
            if len(node.project_list) == len(child_out) and all(
                isinstance(e, Attribute) and e.expr_id == c.expr_id
                for e, c in zip(node.project_list, child_out)
            ):
                return node.child
        return node

    return plan.transform_up(remove)


# ----------------------------------------------------------------------
# Rule executor
# ----------------------------------------------------------------------


class Batch:
    """A named group of rules run repeatedly until the plan stabilizes."""

    def __init__(self, name: str, rules: Sequence[Rule], max_iterations: int = 10):
        self.name = name
        self.rules = list(rules)
        self.max_iterations = max_iterations

    def execute(self, plan: LogicalPlan) -> LogicalPlan:
        for _ in range(self.max_iterations):
            before = plan
            for rule in self.rules:
                plan = rule(plan)
            # Rules preserve object identity when they change nothing,
            # so reaching a fixed point is a pointer comparison.
            if plan is before:
                break
        return plan


class Optimizer:
    """Runs the standard batches plus any injected extra rules.

    ``extra_rules`` run in their own batch *after* the standard ones —
    the hook :mod:`repro.core.rules` uses to make plans index-aware.
    """

    def __init__(self, extra_rules: Sequence[Rule] | None = None):
        #: Standard (value-independent-cacheable) batches; the
        #: extensions batch is held separately so the plan cache can
        #: memoize standard output while index-aware rewrites — which
        #: bake literal values and MVCC versions — always run fresh.
        self.batches = [
            Batch("finish analysis", [eliminate_subquery_aliases], max_iterations=1),
            Batch(
                "operator optimization",
                [
                    constant_folding,
                    simplify_null_checks,
                    boolean_simplification,
                    simplify_in_lists,
                    prune_filters,
                    combine_filters,
                    push_down_predicates,
                    combine_limits,
                    collapse_projects,
                    remove_redundant_projects,
                ],
            ),
            # prune_columns rebuilds the tree wholesale (no identity
            # preservation), so this batch runs exactly once.
            Batch("column pruning", [prune_columns, collapse_projects,
                                     remove_redundant_projects], max_iterations=1),
        ]
        self.extension_batch = (
            Batch("extensions", list(extra_rules)) if extra_rules else None
        )

    def optimize_standard(self, plan: LogicalPlan) -> LogicalPlan:
        """Run only the standard batches (the cacheable prefix)."""
        for batch in self.batches:
            plan = batch.execute(plan)
        return plan

    def run_extensions(self, plan: LogicalPlan) -> LogicalPlan:
        """Run only the injected extension rules (never cached)."""
        if self.extension_batch is not None:
            plan = self.extension_batch.execute(plan)
        return plan

    def optimize(self, plan: LogicalPlan) -> LogicalPlan:
        return self.run_extensions(self.optimize_standard(plan))
