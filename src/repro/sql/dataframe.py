"""The DataFrame API.

A DataFrame is an immutable handle on a logical plan plus the session
that can execute it. Transformations build new plans lazily; actions
run the full pipeline (analyze → optimize → plan → execute on RDDs).

``cache()`` materializes the result into a **columnar** in-memory
relation — exactly what Spark's DataFrame cache does, and the baseline
the Indexed DataFrame is measured against in Figure 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import AnalysisError
from repro.sql.column import Column
from repro.sql.expressions import (
    Alias,
    And,
    Attribute,
    EqualTo,
    Expression,
    SortOrder,
    UnresolvedAttribute,
    UnresolvedStar,
)
from repro.sql.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Relation,
    Sort,
    SubqueryAlias,
    Union,
)
from repro.sql.relation import ColumnarRelation
from repro.sql.types import Row, StructType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.session import Session


def _to_expr(item: str | Column) -> Expression:
    if isinstance(item, Column):
        return item.expr
    if isinstance(item, str):
        if item == "*":
            return UnresolvedStar()
        if item.endswith(".*"):
            return UnresolvedStar(item[:-2])
        if "." in item:
            qualifier, _, name = item.partition(".")
            return UnresolvedAttribute(name, qualifier)
        return UnresolvedAttribute(item)
    raise TypeError(f"expected column name or Column, got {item!r}")


class DataFrame:
    """A lazily evaluated, schema-carrying relational dataset."""

    def __init__(self, session: "Session", plan: LogicalPlan):
        self.session = session
        self.plan = plan
        self._analyzed: LogicalPlan | None = None
        self._cached_relation: ColumnarRelation | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def analyzed_plan(self) -> LogicalPlan:
        if self._analyzed is None:
            resolved = self.session.resolve_tables(self.plan)
            self._analyzed = self.session.analyzer.analyze(resolved)
        return self._analyzed

    @property
    def schema(self) -> StructType:
        return self.analyzed_plan().schema

    @property
    def columns(self) -> list[str]:
        return self.schema.names

    def col(self, name: str) -> Column:
        """A column bound to *this* DataFrame's output (disambiguates
        self-joins, like ``df["name"]`` in Spark)."""
        for attr in self.analyzed_plan().output():
            if attr.name == name:
                return Column(attr)
        raise AnalysisError(f"no column {name!r} in {self.columns}")

    def __getitem__(self, name: str) -> Column:
        return self.col(name)

    def explain(self, cost: bool = False) -> str:
        """Logical, optimized, and physical plans as text.

        With ``cost=True`` each optimized node is annotated with the
        planner's row estimate (the numbers broadcast decisions use).
        """
        analyzed = self.analyzed_plan()
        optimized = self.session.optimize_plan(analyzed)
        physical = self.session.planner.plan(optimized)
        if cost:
            from repro.sql.planner import estimate_rows

            def annotate(plan: LogicalPlan, indent: int = 0) -> str:
                estimate = estimate_rows(plan)
                shown = "?" if estimate is None else str(estimate)
                line = "  " * indent + f"{plan.describe()}  [rows≈{shown}]"
                return "\n".join(
                    [line] + [annotate(c, indent + 1) for c in plan.children]
                )

            optimized_text = annotate(optimized)
        else:
            optimized_text = optimized.pretty()
        return (
            f"== Analyzed ==\n{analyzed.pretty()}\n"
            f"== Optimized ==\n{optimized_text}\n"
            f"== Physical ==\n{physical.pretty()}"
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def _with_plan(self, plan: LogicalPlan) -> "DataFrame":
        return DataFrame(self.session, plan)

    def select(self, *cols: str | Column) -> "DataFrame":
        if not cols:
            cols = ("*",)
        return self._with_plan(Project([_to_expr(c) for c in cols], self.plan))

    def filter(self, condition: Column | str) -> "DataFrame":
        if isinstance(condition, str):
            condition_expr = self.session.parse_expression(condition)
        else:
            condition_expr = condition.expr
        return self._with_plan(Filter(condition_expr, self.plan))

    where = filter

    def join(
        self,
        other: "DataFrame",
        on: Column | str | Sequence[str] | None = None,
        how: str = "inner",
    ) -> "DataFrame":
        """Join with another DataFrame.

        ``on`` may be a Column condition, a column name, or a list of
        names present on both sides.
        """
        if isinstance(on, Column):
            condition = on.expr
        elif on is None:
            condition = None
            how = "cross" if how == "inner" else how
        else:
            names = [on] if isinstance(on, str) else list(on)
            condition = None
            for name in names:
                left = self.col(name).expr
                right = other.col(name).expr
                eq = EqualTo(left, right)
                condition = eq if condition is None else And(condition, eq)
        return self._with_plan(Join(self.plan, other.plan, how, condition))

    def group_by(self, *cols: str | Column) -> "GroupedData":
        return GroupedData(self, [_to_expr(c) for c in cols])

    groupBy = group_by

    def agg(self, *cols: Column) -> "DataFrame":
        """Global aggregation without grouping."""
        return GroupedData(self, []).agg(*cols)

    def order_by(self, *cols: str | Column) -> "DataFrame":
        orders = []
        for item in cols:
            expr = _to_expr(item)
            if not isinstance(expr, SortOrder):
                expr = SortOrder(expr, ascending=True)
            orders.append(expr)
        return self._with_plan(Sort(orders, self.plan))

    sort = order_by

    def limit(self, n: int) -> "DataFrame":
        return self._with_plan(Limit(n, self.plan))

    def union(self, other: "DataFrame") -> "DataFrame":
        return self._with_plan(Union(self.plan, other.plan))

    def distinct(self) -> "DataFrame":
        return self._with_plan(Distinct(self.plan))

    def with_column(self, name: str, column: Column) -> "DataFrame":
        exprs: list[Expression] = []
        replaced = False
        for attr in self.analyzed_plan().output():
            if attr.name == name:
                exprs.append(Alias(column.expr, name))
                replaced = True
            else:
                exprs.append(attr)
        if not replaced:
            exprs.append(Alias(column.expr, name))
        return self._with_plan(Project(exprs, self.plan))

    def with_column_renamed(self, old: str, new: str) -> "DataFrame":
        exprs: list[Expression] = []
        for attr in self.analyzed_plan().output():
            exprs.append(Alias(attr, new) if attr.name == old else attr)
        return self._with_plan(Project(exprs, self.plan))

    def drop(self, *names: str) -> "DataFrame":
        doomed = set(names)
        keep = [a for a in self.analyzed_plan().output() if a.name not in doomed]
        return self._with_plan(Project(list(keep), self.plan))

    def alias(self, name: str) -> "DataFrame":
        return self._with_plan(SubqueryAlias(name, self.plan))

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def _execute(self):
        analyzed = self.analyzed_plan()
        optimized = self.session.optimize_plan(analyzed)
        physical = self.session.planner.plan(optimized)
        # Retained so runtime-adaptive markers (join decisions, pruning
        # counters) are inspectable after the action completes.
        self._last_physical = physical
        return physical.execute()

    def last_execution_plan(self) -> str | None:
        """The physical plan of the most recent action, including
        markers only known at runtime (e.g. ``AdaptiveJoin`` decisions);
        ``None`` before the first action."""
        physical = getattr(self, "_last_physical", None)
        return None if physical is None else physical.pretty()

    def collect(self) -> list[Row]:
        schema = self.schema
        return [Row(t, schema) for t in self._execute().collect()]

    def collect_tuples(self) -> list[tuple]:
        """Collect raw tuples (cheaper than Row wrapping; used by
        benchmarks and internal machinery)."""
        return self._execute().collect()

    def count(self) -> int:
        return self._execute().count()

    def take(self, n: int) -> list[Row]:
        schema = self.schema
        return [Row(t, schema) for t in self._execute().take(n)]

    def first(self) -> Row | None:
        rows = self.take(1)
        return rows[0] if rows else None

    def show(self, n: int = 20) -> None:
        """Print up to ``n`` rows as an ASCII table."""
        rows = self.take(n)
        names = self.columns
        widths = [len(c) for c in names]
        cells = []
        for row in rows:
            rendered = ["NULL" if v is None else str(v) for v in row]
            cells.append(rendered)
            widths = [max(w, len(s)) for w, s in zip(widths, rendered)]
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        print(sep)
        print("|" + "|".join(f" {c:<{w}} " for c, w in zip(names, widths)) + "|")
        print(sep)
        for rendered in cells:
            print("|" + "|".join(f" {s:<{w}} " for s, w in zip(rendered, widths)) + "|")
        print(sep)

    # ------------------------------------------------------------------
    # Caching
    # ------------------------------------------------------------------

    def cache(self) -> "DataFrame":
        """Materialize into a columnar in-memory relation.

        Returns a DataFrame scanning the cached data; the output
        attributes keep their ids, so existing references remain valid.
        Any append-style update requires re-caching from scratch — the
        vanilla-Spark weakness the Indexed DataFrame removes.
        """
        analyzed = self.analyzed_plan()
        rdd = self._execute()
        partitions = rdd.context.run_job(rdd, lambda it: list(it))
        relation = ColumnarRelation.from_row_partitions(analyzed.schema, partitions)
        cached = DataFrame(
            self.session, Relation(relation, attributes=analyzed.output())
        )
        cached._cached_relation = relation
        return cached

    @property
    def is_cached(self) -> bool:
        return self._cached_relation is not None

    def cached_bytes(self) -> int:
        if self._cached_relation is None:
            return 0
        return self._cached_relation.memory_bytes()

    # ------------------------------------------------------------------

    def create_or_replace_temp_view(self, name: str) -> None:
        self.session.catalog.register(name, self.plan)

    def __repr__(self) -> str:
        try:
            cols = ", ".join(
                f"{f.name}: {f.dtype.name}" for f in self.schema
            )
        except AnalysisError:
            cols = "<unresolved>"
        return f"DataFrame[{cols}]"


class GroupedData:
    """Result of ``DataFrame.group_by``: terminal aggregation methods."""

    def __init__(self, df: DataFrame, grouping: list[Expression]):
        self._df = df
        self._grouping = grouping

    def agg(self, *cols: Column) -> DataFrame:
        if not cols:
            raise AnalysisError("agg() requires at least one aggregate column")
        aggregate_list: list[Expression] = list(self._grouping)
        aggregate_list.extend(c.expr for c in cols)
        return self._df._with_plan(
            Aggregate(self._grouping, aggregate_list, self._df.plan)
        )

    def count(self) -> DataFrame:
        from repro.sql.functions import count as count_fn

        return self.agg(count_fn().alias("count"))

    def sum(self, column: str) -> DataFrame:
        from repro.sql.functions import sum_

        return self.agg(sum_(column).alias(f"sum({column})"))

    def avg(self, column: str) -> DataFrame:
        from repro.sql.functions import avg

        return self.agg(avg(column).alias(f"avg({column})"))

    def min(self, column: str) -> DataFrame:
        from repro.sql.functions import min_

        return self.agg(min_(column).alias(f"min({column})"))

    def max(self, column: str) -> DataFrame:
        from repro.sql.functions import max_

        return self.agg(max_(column).alias(f"max({column})"))
