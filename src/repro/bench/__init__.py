"""Benchmark support: timing harness and workload builders.

Shared by the ``benchmarks/`` suite so each table/figure script stays
a thin driver: :mod:`repro.bench.harness` measures and formats,
:mod:`repro.bench.workloads` builds the datasets/sessions each
experiment runs against.
"""

from repro.bench.harness import BenchResult, Timer, compare_table, median_ms, time_fn
from repro.bench.workloads import (
    figure2_session,
    figure3_contexts,
    operator_workload,
)

__all__ = [
    "BenchResult",
    "Timer",
    "median_ms",
    "time_fn",
    "compare_table",
    "figure2_session",
    "figure3_contexts",
    "operator_workload",
]
