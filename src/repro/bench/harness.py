"""Timing harness: repeated measurement, medians, comparison tables.

The paper reports wall-clock times per operator/query for IndexedDF vs
vanilla Spark (Figures 2 and 3). :func:`time_fn` measures a callable
with warmup + repeats and returns the median; :func:`compare_table`
prints the two-system table the benchmark scripts emit, including the
headline "up to NX speedup" line matching the paper's §5 claim.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


class Timer:
    """Context-manager stopwatch in milliseconds."""

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed_ms = (time.perf_counter() - self.start) * 1000.0


def time_fn(
    fn: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
) -> list[float]:
    """Run ``fn`` ``warmup + repeats`` times; return per-run ms timings
    (warmup excluded)."""
    for _ in range(warmup):
        fn()
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append((time.perf_counter() - start) * 1000.0)
    return timings


def median_ms(fn: Callable[[], Any], repeats: int = 5, warmup: int = 1) -> float:
    return statistics.median(time_fn(fn, repeats, warmup))


@dataclass
class BenchResult:
    """One labelled measurement pair (the two bars of a figure group)."""

    label: str
    indexed_ms: float
    vanilla_ms: float
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.indexed_ms <= 0:
            return float("inf")
        return self.vanilla_ms / self.indexed_ms


def compare_table(
    title: str,
    results: Sequence[BenchResult],
    indexed_name: str = "IndexedDF",
    vanilla_name: str = "Spark",
) -> str:
    """Format results as the textual equivalent of a paper figure."""
    label_width = max(12, max((len(r.label) for r in results), default=12))
    lines = [
        title,
        "=" * len(title),
        f"{'':{label_width}}  {indexed_name:>12}  {vanilla_name:>12}  {'speedup':>8}",
    ]
    for r in results:
        lines.append(
            f"{r.label:{label_width}}  {r.indexed_ms:>10.1f}ms  "
            f"{r.vanilla_ms:>10.1f}ms  {r.speedup:>7.2f}x"
        )
    best = max(results, key=lambda r: r.speedup, default=None)
    if best is not None:
        lines.append(
            f"max speedup: {best.speedup:.1f}x on {best.label} "
            f"(paper reports up to 8x)"
        )
    return "\n".join(lines)
