"""Workload builders for the paper's experiments.

* :func:`figure2_session` + :func:`operator_workload` — the SQL
  operator microbenchmark of Figure 2 (join, filter, equality filter,
  aggregation, projection, scan over cached ``person_knows_person``,
  joined against ``person``);
* :func:`figure3_contexts` — the SNB short-read setup of Figure 3.

Every workload returns *callables per system*, so the benchmark
scripts measure identical logical work on the indexed and vanilla
paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.core.indexed_df import IndexedDataFrame
from repro.snb import SNBContext, generate, load_indexed, load_vanilla
from repro.snb.datagen import SNBDataset
from repro.sql import Session
from repro.sql.dataframe import DataFrame
from repro.sql.functions import col, count
from repro.snb.datagen import EPOCH_START_MS


def _session(
    threads: int, shuffle_partitions: int, broadcast_threshold: int = 200
) -> Session:
    # A low broadcast threshold mirrors the paper's cluster setting:
    # at SF300 neither SNB side fits in a broadcast, so vanilla joins
    # shuffle. (Leave the default 10k and small probes broadcast in
    # both systems instead.)
    session = Session(
        Config(
            executor_threads=threads,
            shuffle_partitions=shuffle_partitions,
            default_parallelism=shuffle_partitions,
            batch_size_bytes=1024 * 1024,
            broadcast_threshold=broadcast_threshold,
        )
    )
    enable_indexing(session)
    return session


@dataclass
class Figure2Setup:
    """Everything the operator microbenchmark needs."""

    session: Session
    dataset: SNBDataset
    knows_vanilla: DataFrame
    person_vanilla: DataFrame
    knows_indexed: IndexedDataFrame
    person_indexed: IndexedDataFrame
    probe_person_id: int


def figure2_session(
    scale_factor: float = 1.0, threads: int = 4, shuffle_partitions: int = 8
) -> Figure2Setup:
    """Build the cached/indexed ``knows`` + ``person`` tables.

    ``knows`` is indexed on ``person1_id`` (the equality-filter and
    join key), ``person`` on ``id`` — the layout paper §3 implies.
    """
    session = _session(threads, shuffle_partitions)
    dataset = generate(scale_factor=scale_factor)

    from repro.snb import schema as snb_schema

    person_df = session.create_dataframe(
        dataset.persons, snb_schema.PERSON_SCHEMA, validate=False
    )
    knows_df = session.create_dataframe(
        dataset.knows, snb_schema.KNOWS_SCHEMA, validate=False
    )

    return Figure2Setup(
        session=session,
        dataset=dataset,
        knows_vanilla=knows_df.cache(),
        person_vanilla=person_df.cache(),
        knows_indexed=create_index(knows_df, "person1_id"),
        person_indexed=create_index(person_df, "id"),
        probe_person_id=dataset.person_ids()[len(dataset.persons) // 2],
    )


def operator_workload(setup: Figure2Setup) -> dict[str, tuple[Callable, Callable]]:
    """Figure 2's six operators as ``name → (indexed_fn, vanilla_fn)``.

    Each callable runs the complete query (plan + execute) and forces
    full materialization, mirroring an action on a cached DataFrame.
    """
    pid = setup.probe_person_id
    cutoff = EPOCH_START_MS + 180 * 24 * 3600 * 1000

    knows_ix = setup.knows_indexed.to_df()
    knows_v = setup.knows_vanilla
    person_ix = setup.person_indexed
    person_v = setup.person_vanilla

    knows_idx_handle = setup.knows_indexed

    def join_indexed() -> int:
        # knows (big, indexed on person1_id) is the pre-built build
        # side; the regular person DataFrame is the probe (Listing 1:
        # indexedDF.join(regularDF, ...)).
        return knows_idx_handle.join(
            person_v, on=knows_idx_handle.col("person1_id") == person_v.col("id")
        ).count()

    def join_vanilla() -> int:
        return knows_v.join(
            person_v, on=knows_v.col("person1_id") == person_v.col("id")
        ).count()

    def filter_indexed() -> int:  # non-equality: index cannot help
        return knows_ix.filter(col("creation_date") > cutoff).count()

    def filter_vanilla() -> int:
        return knows_v.filter(col("creation_date") > cutoff).count()

    def eq_filter_indexed() -> int:  # equality on the indexed key
        return knows_ix.filter(col("person1_id") == pid).count()

    def eq_filter_vanilla() -> int:
        return knows_v.filter(col("person1_id") == pid).count()

    def agg_indexed() -> int:
        return knows_ix.group_by("person1_id").agg(count().alias("n")).count()

    def agg_vanilla() -> int:
        return knows_v.group_by("person1_id").agg(count().alias("n")).count()

    def project_indexed() -> int:  # row store must decode every row
        return knows_ix.select("person2_id").count()

    def project_vanilla() -> int:  # columnar cache reads one vector
        return knows_v.select("person2_id").count()

    def scan_indexed() -> int:
        return knows_ix.count()

    def scan_vanilla() -> int:
        return knows_v.count()

    return {
        "Join": (join_indexed, join_vanilla),
        "Filter": (filter_indexed, filter_vanilla),
        "Equality Filter": (eq_filter_indexed, eq_filter_vanilla),
        "Aggregation": (agg_indexed, agg_vanilla),
        "Projection": (project_indexed, project_vanilla),
        "Scan": (scan_indexed, scan_vanilla),
    }


@dataclass
class Figure3Setup:
    session: Session
    dataset: SNBDataset
    vanilla: SNBContext
    indexed: SNBContext
    person_param: int
    message_param: int


def figure3_contexts(
    scale_factor: float = 1.0, threads: int = 4, shuffle_partitions: int = 8
) -> Figure3Setup:
    """Load the SNB dataset twice: cached vanilla and indexed.

    Unlike the Figure-2 session, the broadcast threshold stays high:
    real Spark broadcasts small filtered sides in both systems, so the
    short-read speedups must come from index lookups alone, not from
    join-mode asymmetry.
    """
    session = _session(threads, shuffle_partitions, broadcast_threshold=10_000)
    dataset = generate(scale_factor=scale_factor)
    vanilla = load_vanilla(session, dataset)
    indexed = load_indexed(session, dataset)
    person_ids = dataset.person_ids()
    message_ids = dataset.message_ids()
    return Figure3Setup(
        session=session,
        dataset=dataset,
        vanilla=vanilla,
        indexed=indexed,
        person_param=person_ids[len(person_ids) // 2],
        message_param=message_ids[len(message_ids) // 2],
    )
