"""Reproduce the paper's evaluation figures as terminal tables.

Runs both experiments from §3 at a configurable scale and prints the
textual equivalents of Figure 2 (SQL operators) and Figure 3 (SNB
simple reads), including the §5 headline max-speedup line.

Run::

    python examples/snb_benchmark.py [scale_factor]
"""

from __future__ import annotations

import sys

from repro.bench import (
    BenchResult,
    compare_table,
    figure2_session,
    figure3_contexts,
    median_ms,
    operator_workload,
)
from repro.snb import ALL_QUERIES, run_query


def figure2(scale: float) -> None:
    print(f"building Figure 2 workload at SF {scale}...")
    setup = figure2_session(scale_factor=scale)
    try:
        results = []
        for name, (indexed_fn, vanilla_fn) in operator_workload(setup).items():
            assert indexed_fn() == vanilla_fn(), f"{name} results diverge"
            results.append(
                BenchResult(
                    name,
                    median_ms(indexed_fn, repeats=5),
                    median_ms(vanilla_fn, repeats=5),
                )
            )
        print()
        print(compare_table("Figure 2: SQL operators on person_knows_person", results))
    finally:
        setup.session.stop()


def figure3(scale: float) -> None:
    print(f"\nbuilding Figure 3 workload at SF {scale}...")
    setup = figure3_contexts(scale_factor=scale)
    try:
        results = []
        for name, (_fn, kind) in ALL_QUERIES.items():
            param = setup.person_param if kind == "person" else setup.message_param
            vanilla_rows = sorted(map(tuple, run_query(setup.vanilla, name, param)))
            indexed_rows = sorted(map(tuple, run_query(setup.indexed, name, param)))
            assert vanilla_rows == indexed_rows, f"{name} results diverge"
            results.append(
                BenchResult(
                    name,
                    median_ms(lambda: run_query(setup.indexed, name, param), repeats=5),
                    median_ms(lambda: run_query(setup.vanilla, name, param), repeats=5),
                )
            )
        print()
        print(compare_table("Figure 3: SNB simple reads SQ1..SQ7", results))
        print(
            "\n(expected shape: SQ1-SQ4 and SQ7 sped up; SQ5/SQ6 cannot "
            "use the index — paper §3)"
        )
    finally:
        setup.session.stop()


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    figure2(scale)
    figure3(scale)


if __name__ == "__main__":
    main()
