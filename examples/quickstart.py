"""Quickstart: the Indexed DataFrame API from paper Listing 1.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Config, Session, enable_indexing
from repro.sql.functions import col


def main() -> None:
    # A session is the SparkSession analogue; enable_indexing injects
    # the index-aware optimizer rule + planner strategy and adds the
    # DataFrame.create_index method (the implicit-conversion analogue).
    session = Session(Config(executor_threads=4, shuffle_partitions=8))
    enable_indexing(session)

    print("== build a regular DataFrame ==")
    people = session.create_dataframe(
        [(i, f"user{i}", 20 + i % 50) for i in range(10_000)],
        [("id", "long"), ("name", "string"), ("age", "long")],
    )
    people.show(3)

    print("== create the index (Listing 1: regularDF.createIndex(colNo)) ==")
    indexed = people.create_index("id").cache()
    print(indexed)

    print("== point lookup (indexedDF.getRows(key)) ==")
    indexed.get_rows(1234).show()
    print("physical plan:")
    print(indexed.get_rows(1234).explain().split("== Physical ==")[1])

    print("== appends do NOT invalidate the cache (appendRows) ==")
    updates = session.create_dataframe(
        [(1234, "user1234-moved", 99)], [("id", "long"), ("name", "string"), ("age", "long")]
    )
    v2 = indexed.append_rows(updates)
    print(f"old version rows for 1234: {indexed.get_rows_local(1234)}")
    print(f"new version rows for 1234: {v2.get_rows_local(1234)}  (newest first)")

    print("== index-powered join (indexedDF.join(regularDF, ...)) ==")
    purchases = session.create_dataframe(
        [(i, i % 10_000, float(i % 97)) for i in range(2_000)],
        [("order_id", "long"), ("user_id", "long"), ("amount", "double")],
    )
    joined = v2.join(purchases, on=v2.col("id") == purchases.col("user_id"))
    print("physical plan:")
    print(joined.explain().split("== Physical ==")[1])
    print(f"joined rows: {joined.count()}")

    print("== plain SQL over the indexed view ==")
    v2.create_or_replace_temp_view("people")
    session.sql(
        "SELECT name, age FROM people WHERE id IN (1, 2, 3) ORDER BY id"
    ).show()

    print("== everything else falls back to regular execution ==")
    by_age = (
        v2.to_df()
        .filter(col("age") > 60)
        .group_by("age")
        .count()
        .order_by(col("age").asc())
    )
    by_age.show(5)

    session.stop()
    print("quickstart done.")


if __name__ == "__main__":
    main()
