"""Threat detection and response — the paper's second motivating use
case (Brezinski & Armbrust, Spark Summit '18, cited as [4]).

A stream of network flow events lands continuously in an Indexed
DataFrame keyed by source IP. Analysts ask two kinds of questions:

* **triage lookups** — "show me everything this IP did", which must be
  sub-second even while events keep arriving (cTrie point lookups);
* **IOC sweeps** — join the event table against a threat-intel feed of
  indicators of compromise (index-powered join, indexed side = build).

Run::

    python examples/threat_detection.py
"""

from __future__ import annotations

import random
import time

from repro import Config, Session, create_index, enable_indexing
from repro.sql.functions import col, count, max_
from repro.streaming import Broker, IndexedIngest, Producer

EVENT_SCHEMA = [
    ("src_ip", "string"),
    ("dst_ip", "string"),
    ("dst_port", "long"),
    ("bytes_out", "long"),
    ("timestamp", "long"),
]

IOC_SCHEMA = [("indicator", "string"), ("campaign", "string"), ("severity", "long")]


def random_ip(rng: random.Random, hot: list[str]) -> str:
    if rng.random() < 0.05:
        return rng.choice(hot)
    return f"10.{rng.randint(0, 30)}.{rng.randint(0, 255)}.{rng.randint(1, 254)}"


def main() -> None:
    session = Session(Config(executor_threads=4, shuffle_partitions=8))
    enable_indexing(session)
    rng = random.Random(7)

    hot_ips = [f"185.220.{i}.{i * 3 + 1}" for i in range(8)]  # the bad guys

    print("bootstrapping 50k historical flow events, indexed by src_ip...")
    now = 1_700_000_000_000
    events = [
        (
            random_ip(rng, hot_ips),
            f"172.16.{rng.randint(0, 3)}.{rng.randint(1, 254)}",
            rng.choice((22, 53, 80, 443, 445, 3389)),
            rng.randint(64, 1 << 20),
            now + i,
        )
        for i in range(50_000)
    ]
    flows = create_index(
        session.create_dataframe(events, EVENT_SCHEMA, validate=False), "src_ip"
    ).cache()

    print("wiring the live event stream through the broker...")
    broker = Broker()
    broker.create_topic("flows", partitions=4)
    producer = Producer(broker, "flows")
    ingest = IndexedIngest(broker, "flows", flows, batch_size=500)
    ingest.start(poll_interval=0.002)

    # Threat-intel feed: some indicators overlap our hot IPs.
    intel = session.create_dataframe(
        [(ip, f"campaign-{i % 3}", 7 + i % 3) for i, ip in enumerate(hot_ips)]
        + [("203.0.113.99", "campaign-x", 9)],
        IOC_SCHEMA,
    )

    try:
        for wave in range(3):
            burst = [
                (
                    random_ip(rng, hot_ips),
                    f"172.16.0.{rng.randint(1, 254)}",
                    443,
                    rng.randint(64, 1 << 22),
                    now + 100_000 + wave * 1000 + i,
                )
                for i in range(2_000)
            ]
            producer.send_all(burst, key_fn=lambda e: e[0])
            time.sleep(0.15)  # let ingestion drain

            live = ingest.current  # a stable MVCC version
            print(
                f"\n-- wave {wave}: table at version {live.version_id}, "
                f"{live.count()} events --"
            )

            # Triage: point lookup on one suspicious source.
            suspect = hot_ips[wave % len(hot_ips)]
            start = time.perf_counter()
            history = live.get_rows_local(suspect)
            lookup_ms = (time.perf_counter() - start) * 1000
            print(
                f"triage {suspect}: {len(history)} flows "
                f"({lookup_ms:.2f} ms point lookup)"
            )

            # IOC sweep: indexed join against the intel feed.
            start = time.perf_counter()
            hits = (
                live.join(intel, on=live.col("src_ip") == intel.col("indicator"))
                .group_by("campaign")
                .agg(
                    count().alias("events"),
                    max_("bytes_out").alias("max_exfil_bytes"),
                )
                .order_by(col("events").desc())
            )
            rows = hits.collect()
            sweep_ms = (time.perf_counter() - start) * 1000
            print(f"IOC sweep ({sweep_ms:.1f} ms, index-powered join):")
            for row in rows:
                print(
                    f"  {row['campaign']}: {row['events']} events, "
                    f"max exfil {row['max_exfil_bytes']} bytes"
                )
    finally:
        ingest.stop()
        session.stop()
    print("\nthreat-detection demo done.")


if __name__ == "__main__":
    main()
