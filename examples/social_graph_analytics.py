"""Graph analytics on a growing social network.

The workload the paper cites as motivation [5]: run graph algorithms
(influencer ranking, community structure, reachability) over stable
MVCC snapshots of a social graph that keeps receiving updates, then
persist the dataset for the next session.

Run::

    python examples/social_graph_analytics.py
"""

from __future__ import annotations

import tempfile

from repro import Config, Session, create_index, enable_indexing
from repro.graph import Graph, connected_components, pagerank, triangle_count
from repro.io import load_dataset, save_dataset
from repro.snb import generate, update_stream
from repro.snb.schema import KNOWS_SCHEMA, PERSON_SCHEMA


def main() -> None:
    session = Session(Config(executor_threads=4, shuffle_partitions=8))
    enable_indexing(session)

    print("generating + persisting the SNB dataset...")
    dataset = generate(scale_factor=0.5, seed=99)
    with tempfile.TemporaryDirectory() as directory:
        save_dataset(dataset, directory)
        dataset = load_dataset(directory)  # round-trip, as a later session would
    print(f"  {dataset}")

    person_df = session.create_dataframe(dataset.persons, PERSON_SCHEMA, validate=False)
    knows_df = session.create_dataframe(dataset.knows, KNOWS_SCHEMA, validate=False)
    knows_idx = create_index(knows_df, "person1_id")
    person_idx = create_index(person_df, "id")

    def analyze(version_label: str, knows_handle) -> None:
        graph = Graph.from_dataframes(
            person_idx.to_df(),
            knows_handle.to_df(),
            vertex_id="id",
            src="person1_id",
            dst="person2_id",
        ).cache()
        ranks = pagerank(graph, iterations=10)
        top = sorted(ranks.items(), key=lambda kv: -kv[1])[:5]
        components = connected_components(graph)
        sizes: dict = {}
        for label in components.values():
            sizes[label] = sizes.get(label, 0) + 1
        triangles = triangle_count(graph)
        print(f"\n-- {version_label}: {graph.num_vertices()} people, "
              f"{graph.num_edges()} knows edges --")
        print(f"communities: {len(sizes)} (largest {max(sizes.values())})")
        print(f"triangles: {triangles}")
        print("top influencers (PageRank):")
        for vid, rank in top:
            row = person_idx.lookup_latest(vid)
            name = f"{row[1]} {row[2]}" if row else "?"
            print(f"  person {vid} ({name}): {rank:.5f}")

    analyze("initial graph", knows_idx)

    print("\napplying 5 update batches (graph keeps growing)...")
    current = knows_idx
    for batch in update_stream(dataset, 5, rows_per_batch=300, knows_fraction=0.9,
                               person_fraction=0.0):
        if batch.knows:
            current = current.append_rows(batch.knows)

    analyze(f"after updates (version {current.version_id})", current)
    # The first snapshot is still intact for comparison dashboards:
    print(f"\noriginal version still serves {knows_idx.count()} edges; "
          f"new version serves {current.count()}")
    session.stop()


if __name__ == "__main__":
    main()
