"""Tests for packed 64-bit pointers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pointers import NULL_POINTER, PAPER_LAYOUT, PointerLayout
from repro.errors import CapacityError


class TestPaperLayout:
    def test_matches_paper_geometry(self):
        # Paper §2: 4 MB batches (22-bit offsets), 1 KB rows (11 bits
        # to represent 1024 inclusive), leaving 2^31 batches.
        assert PAPER_LAYOUT.offset_bits == 22
        assert PAPER_LAYOUT.size_bits == 11
        assert PAPER_LAYOUT.batch_bits == 31

    def test_addressable_data_volume(self):
        # "our setup enables 4 x 2^31 MB data per core"
        batches = PAPER_LAYOUT.max_batch + 1
        assert batches == 2**31 - 1  # one value reserved for NULL
        assert PAPER_LAYOUT.max_offset == 4 * 1024 * 1024 - 1


class TestPackUnpack:
    def test_roundtrip(self):
        pointer = PAPER_LAYOUT.pack(12345, 67890, 512)
        assert PAPER_LAYOUT.unpack(pointer) == (12345, 67890, 512)

    def test_field_accessors(self):
        pointer = PAPER_LAYOUT.pack(3, 5, 7)
        assert PAPER_LAYOUT.batch_of(pointer) == 3
        assert PAPER_LAYOUT.offset_of(pointer) == 5
        assert PAPER_LAYOUT.size_of(pointer) == 7

    def test_extremes(self):
        layout = PAPER_LAYOUT
        pointer = layout.pack(layout.max_batch, layout.max_offset, layout.max_size)
        assert layout.unpack(pointer) == (
            layout.max_batch,
            layout.max_offset,
            layout.max_size,
        )
        assert pointer != NULL_POINTER

    def test_zero(self):
        assert PAPER_LAYOUT.unpack(PAPER_LAYOUT.pack(0, 0, 0)) == (0, 0, 0)

    def test_overflow_rejected(self):
        with pytest.raises(CapacityError):
            PAPER_LAYOUT.pack(2**31, 0, 0)
        with pytest.raises(CapacityError):
            PAPER_LAYOUT.pack(0, 2**22, 0)
        with pytest.raises(CapacityError):
            PAPER_LAYOUT.pack(0, 0, 2**11)
        with pytest.raises(CapacityError):
            PAPER_LAYOUT.pack(-1, 0, 0)

    def test_null_pointer_is_never_produced(self):
        # max fields still differ from NULL (max_batch excludes top value)
        top = PAPER_LAYOUT.pack(
            PAPER_LAYOUT.max_batch, PAPER_LAYOUT.max_offset, PAPER_LAYOUT.max_size
        )
        assert top != NULL_POINTER

    def test_unpack_null_rejected(self):
        with pytest.raises(CapacityError):
            PAPER_LAYOUT.unpack(NULL_POINTER)


class TestLayoutDerivation:
    def test_for_geometry_scales(self):
        layout = PointerLayout.for_geometry(64 * 1024, 256)
        assert layout.offset_bits == 16
        assert layout.size_bits == 9
        assert layout.batch_bits == 64 - 16 - 9

    def test_rejects_unpackable_geometry(self):
        with pytest.raises(CapacityError):
            PointerLayout.for_geometry(2**40, 2**20)

    def test_rejects_zero_width_fields(self):
        with pytest.raises(CapacityError):
            PointerLayout(0, 32, 32)

    def test_rejects_over_64_bits(self):
        with pytest.raises(CapacityError):
            PointerLayout(40, 20, 20)


@given(
    batch=st.integers(0, PAPER_LAYOUT.max_batch),
    offset=st.integers(0, PAPER_LAYOUT.max_offset),
    size=st.integers(0, PAPER_LAYOUT.max_size),
)
def test_roundtrip_property(batch, offset, size):
    pointer = PAPER_LAYOUT.pack(batch, offset, size)
    assert 0 <= pointer < (1 << 64)
    assert PAPER_LAYOUT.unpack(pointer) == (batch, offset, size)


@given(
    a=st.tuples(st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000)),
    b=st.tuples(st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000)),
)
def test_packing_is_injective(a, b):
    if a != b:
        assert PAPER_LAYOUT.pack(*a) != PAPER_LAYOUT.pack(*b)
