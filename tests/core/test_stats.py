"""Zone maps and pruning predicates: correctness of the statistics layer.

The soundness contract under test: ``may_match`` may say True
spuriously, but must never say False for a zone that contains a
matching row — including under appends, MVCC snapshots, and columns
that degrade (mixed types).
"""

from __future__ import annotations

import pytest

from repro.core.partition import IndexedPartition
from repro.core.pointers import PointerLayout
from repro.sql.expressions import (
    And,
    Attribute,
    EqualTo,
    GreaterThanOrEqual,
    In,
    IsNotNull,
    IsNull,
    LessThan,
    Literal,
)
from repro.sql.types import LongType, StringType, StructField, StructType
from repro.stats import (
    ColumnStats,
    PruningMetrics,
    PruningPredicate,
    ZoneMap,
    extract_pruning_predicates,
)

SCHEMA = StructType(
    [
        StructField("key", LongType(), nullable=False),
        StructField("value", StringType()),
    ]
)


def make_partition(zone_maps: bool = True) -> IndexedPartition:
    layout = PointerLayout.for_geometry(1024, 256)
    return IndexedPartition(SCHEMA, 0, layout, 1024, 256, zone_maps=zone_maps)


class TestColumnStats:
    def test_min_max_nulls(self):
        stats = ColumnStats()
        for v in (5, None, 2, 9, None):
            stats.update(v)
        assert (stats.min, stats.max, stats.nulls) == (2, 9, 2)
        assert stats.valid

    def test_mixed_types_invalidate(self):
        stats = ColumnStats()
        stats.update(5)
        stats.update("five")
        assert not stats.valid
        assert stats.min is None and stats.max is None
        stats.update(1)  # further updates are no-ops, not crashes
        assert not stats.valid

    def test_merge_propagates_invalid(self):
        good, bad = ColumnStats(), ColumnStats()
        good.update(1)
        bad.update(2)
        bad.update("two")
        good.merge(bad)
        assert not good.valid

    def test_merge_widens_range(self):
        a, b = ColumnStats(), ColumnStats()
        a.update(5)
        b.update(1)
        b.update(9)
        a.merge(b)
        assert (a.min, a.max) == (1, 9)


class TestZoneMapMayMatch:
    def zone(self, *values):
        return ZoneMap.from_rows(1, [(v,) for v in values])

    def test_empty_zone_never_matches(self):
        assert not ZoneMap(1).may_match([PruningPredicate(0, "eq", (1,))])

    def test_range_overlap(self):
        zone = self.zone(10, 20, 30)
        assert zone.may_match([PruningPredicate(0, "eq", (20,))])
        assert zone.may_match([PruningPredicate(0, "eq", (15,))])  # spurious ok
        assert not zone.may_match([PruningPredicate(0, "eq", (31,))])
        assert not zone.may_match([PruningPredicate(0, "lt", (10,))])
        assert zone.may_match([PruningPredicate(0, "le", (10,))])
        assert not zone.may_match([PruningPredicate(0, "gt", (30,))])
        assert zone.may_match([PruningPredicate(0, "ge", (30,))])

    def test_in_list(self):
        zone = self.zone(10, 20)
        assert zone.may_match([PruningPredicate(0, "in", (1, 15))])
        assert not zone.may_match([PruningPredicate(0, "in", (1, 2))])

    def test_null_predicates(self):
        no_nulls = self.zone(1, 2)
        with_nulls = self.zone(1, None)
        only_nulls = self.zone(None, None)
        assert not no_nulls.may_match([PruningPredicate(0, "isnull")])
        assert with_nulls.may_match([PruningPredicate(0, "isnull")])
        assert with_nulls.may_match([PruningPredicate(0, "notnull")])
        assert not only_nulls.may_match([PruningPredicate(0, "notnull")])
        # Comparisons never match NULL: an all-NULL zone is skippable.
        assert not only_nulls.may_match([PruningPredicate(0, "eq", (1,))])

    def test_invalid_column_never_prunes(self):
        zone = self.zone(1, "one")
        assert zone.may_match([PruningPredicate(0, "eq", (999,))])

    def test_incomparable_literal_never_prunes(self):
        zone = self.zone(1, 2)
        assert zone.may_match([PruningPredicate(0, "eq", ("x",))])

    def test_conjunction_requires_all(self):
        zone = self.zone(10, 20)
        both = [PruningPredicate(0, "ge", (15,)), PruningPredicate(0, "le", (30,))]
        assert zone.may_match(both)
        assert not zone.may_match(
            [PruningPredicate(0, "ge", (15,)), PruningPredicate(0, "le", (5,))]
        )

    def test_out_of_range_ordinal_ignored(self):
        zone = self.zone(1)
        assert zone.may_match([PruningPredicate(3, "eq", (42,))])

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            PruningPredicate(0, "like", ("x%",))


class TestExtractPruningPredicates:
    def attrs(self):
        return [
            Attribute("a", LongType()),
            Attribute("b", StringType()),
        ]

    def test_comparisons_both_orders(self):
        a, b = self.attrs()
        condition = And(
            GreaterThanOrEqual(a, Literal(5)),  # a >= 5
            LessThan(Literal(3), a),            # 3 < a  →  a > 3
        )
        preds = extract_pruning_predicates(condition, [a, b])
        assert [(p.ordinal, p.op, p.values) for p in preds] == [
            (0, "ge", (5,)),
            (0, "gt", (3,)),
        ]

    def test_in_null_checks_and_unknowns(self):
        a, b = self.attrs()
        condition = And(
            And(In(b, [Literal("x"), Literal("y")]), IsNull(a)),
            And(IsNotNull(b), EqualTo(a, a)),  # attr = attr is not prunable
        )
        preds = extract_pruning_predicates(condition, [a, b])
        assert [(p.ordinal, p.op) for p in preds] == [
            (1, "in"),
            (0, "isnull"),
            (1, "notnull"),
        ]

    def test_null_literal_and_foreign_attr_skipped(self):
        a, b = self.attrs()
        foreign = Attribute("c", LongType())
        condition = And(EqualTo(a, Literal(None)), EqualTo(foreign, Literal(1)))
        assert extract_pruning_predicates(condition, [a, b]) == []

    def test_in_with_null_option_skipped(self):
        a, b = self.attrs()
        condition = In(a, [Literal(1), Literal(None)])
        assert extract_pruning_predicates(condition, [a, b]) == []


class TestPartitionZoneMaps:
    """Zone maps stay correct under appends and MVCC snapshots."""

    def row_key_pred(self, lo: int, hi: int) -> list[PruningPredicate]:
        return [PruningPredicate(0, "ge", (lo,)), PruningPredicate(0, "lt", (hi,))]

    def test_matching_batches_finds_every_row(self):
        partition = make_partition()
        partition.append_many([(i, f"v{i:03d}") for i in range(200)])
        snapshot = partition.snapshot()
        assert len(snapshot.batch_zones) > 1  # geometry produced several batches
        for lo, hi in ((0, 10), (95, 105), (190, 200)):
            matching = snapshot.matching_batches(self.row_key_pred(lo, hi))
            assert matching is not None
            rows = sorted(snapshot.scan(matching))
            wanted = [r for r in sorted(snapshot.scan()) if lo <= r[0] < hi]
            assert [r for r in rows if lo <= r[0] < hi] == wanted
            # and it actually skips the non-overlapping batches
            assert len(matching) < len(snapshot.batch_zones)

    def test_snapshot_isolated_from_later_appends(self):
        partition = make_partition()
        partition.append_many([(i, "old") for i in range(50)])
        old = partition.snapshot()
        old_zone_max = old.zone.columns[0].max
        partition.append_many([(i, "new") for i in range(1000, 1050)])
        new = partition.snapshot()
        # The old snapshot's zones don't see the new rows...
        assert old.zone.columns[0].max == old_zone_max == 49
        assert not old.may_match([PruningPredicate(0, "ge", (1000,))])
        # ...while the new snapshot's do.
        assert new.zone.columns[0].max == 1049
        assert new.may_match([PruningPredicate(0, "ge", (1000,))])
        # And old scans through matching_batches still return old data only.
        matching = old.matching_batches(self.row_key_pred(0, 50))
        assert sorted(snapshotted[0] for snapshotted in old.scan(matching)) == list(
            range(50)
        )

    def test_fine_grained_append_updates_active_zone(self):
        partition = make_partition()
        for i in range(10):
            partition.append((i, "x"))
        snapshot = partition.snapshot()
        assert snapshot.zone.rows == 10
        assert (snapshot.zone.columns[0].min, snapshot.zone.columns[0].max) == (0, 9)

    def test_zone_maps_disabled(self):
        partition = make_partition(zone_maps=False)
        partition.append_many([(i, "x") for i in range(20)])
        snapshot = partition.snapshot()
        assert snapshot.batch_zones is None and snapshot.zone is None
        # Without zones nothing is provable: everything may match.
        assert snapshot.may_match([PruningPredicate(0, "eq", (999,))])
        assert snapshot.matching_batches([PruningPredicate(0, "eq", (999,))]) is None

    def test_mixed_type_value_column_degrades_not_breaks(self):
        partition = make_partition()
        partition.append((1, "text"))
        partition.append((2, 42))  # value column becomes incomparable
        snapshot = partition.snapshot()
        assert not snapshot.zone.columns[1].valid
        assert snapshot.may_match([PruningPredicate(1, "eq", ("zzz",))])
        # The key column is unaffected and still prunes.
        assert not snapshot.may_match([PruningPredicate(0, "eq", (99,))])


class TestPruningMetrics:
    def test_record_and_snapshot(self):
        metrics = PruningMetrics()
        metrics.record_scan(partitions_total=4, partitions_pruned=3, routed=True)
        metrics.record_scan(
            partitions_total=4, partitions_pruned=1, batches_total=8, batches_pruned=5
        )
        metrics.record_index_rejected()
        snap = metrics.snapshot()
        assert snap == {
            "scans": 2,
            "partitions_total": 8,
            "partitions_pruned": 4,
            "partitions_routed": 3,
            "batches_total": 8,
            "batches_pruned": 5,
            "index_rejected": 1,
        }
