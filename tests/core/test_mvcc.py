"""Tests for MVCC versioning and concurrent append/query behavior."""

from __future__ import annotations

import threading

import pytest

from repro.core import create_index
from repro.core.mvcc import Version, VersionedStore
from repro.core.partition import IndexedPartition
from repro.core.pointers import PointerLayout
from repro.sql.types import LongType, StringType, StructField, StructType

SCHEMA = StructType(
    [
        StructField("k", LongType(), nullable=False),
        StructField("v", StringType()),
    ]
)


def make_store(n: int = 4) -> VersionedStore:
    layout = PointerLayout.for_geometry(4096, 512)
    return VersionedStore(
        [IndexedPartition(SCHEMA, 0, layout, 4096, 512) for _ in range(n)]
    )


class TestVersionedStore:
    def test_capture_empty(self):
        store = make_store()
        version = store.capture()
        assert version.row_count() == 0
        assert version.num_partitions == 4

    def test_versions_monotonic(self):
        store = make_store()
        v1 = store.capture()
        v2 = store.capture()
        assert v2.version_id > v1.version_id

    def test_capture_sees_prior_appends(self):
        store = make_store(2)
        store.partitions[0].append((1, "a"))
        store.partitions[1].append((2, "b"))
        assert store.capture().row_count() == 2
        assert store.total_rows() == 2

    def test_memory_stats_aggregate(self):
        store = make_store(2)
        store.partitions[0].append_many([(i, "x") for i in range(10)])
        stats = store.memory_stats()
        assert stats["rows"] == 10

    def test_requires_partitions(self):
        with pytest.raises(ValueError):
            VersionedStore([])


class TestConcurrentVersioning:
    def test_queries_against_old_versions_while_appending(self, indexed_session):
        base = indexed_session.create_dataframe(
            [(i, f"v{i}", 0) for i in range(500)],
            [("id", "long"), ("name", "string"), ("gen", "long")],
        )
        indexed = create_index(base, "id")
        versions = [indexed]
        errors = []
        done = threading.Event()

        def appender():
            try:
                current = indexed
                for generation in range(1, 11):
                    rows = [
                        (1000 * generation + i, f"g{generation}", generation)
                        for i in range(100)
                    ]
                    current = current.append_rows(rows)
                    versions.append(current)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                done.set()

        def reader():
            try:
                while not done.is_set():
                    snapshot = list(versions)
                    for version in snapshot[-3:]:
                        expected = 500 + 100 * (version.version_id - indexed.version_id)
                        # Counts are per-version constants, forever.
                        assert version.count() == version.count()
                        assert version.count() >= 500
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=appender)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Version chain is strictly growing by batch size.
        counts = [v.count() for v in versions]
        assert counts == [500 + 100 * i for i in range(11)]

    def test_lookups_stable_per_version(self, indexed_session):
        base = indexed_session.create_dataframe(
            [(1, "original", 0)],
            [("id", "long"), ("name", "string"), ("gen", "long")],
        )
        v1 = create_index(base, "id")
        handles = [v1]
        for generation in range(1, 6):
            handles.append(handles[-1].append_rows([(1, f"gen{generation}", generation)]))
        for i, handle in enumerate(handles):
            chain = handle.get_rows_local(1)
            assert len(chain) == i + 1
            if i > 0:
                assert chain[0][1] == f"gen{i}"
