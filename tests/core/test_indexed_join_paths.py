"""Both IndexedJoin dispatch paths must agree (paper §2's broadcast
fallback vs the shuffle path)."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.sql.session import Session

SCHEMA = [("id", "long"), ("grp", "long"), ("name", "string")]
PROBE_SCHEMA = [("pid", "long"), ("w", "long")]


def build_world(broadcast_threshold: int):
    session = Session(
        Config(
            executor_threads=2,
            shuffle_partitions=4,
            broadcast_threshold=broadcast_threshold,
            batch_size_bytes=64 * 1024,
        )
    )
    enable_indexing(session)
    build = session.create_dataframe(
        [(i % 60, i % 7, f"n{i}") for i in range(240)], SCHEMA  # 4 rows per key
    )
    probe = session.create_dataframe(
        [(i % 80, i) for i in range(120)], PROBE_SCHEMA
    )
    return session, create_index(build, "id"), probe


class TestDispatchAgreement:
    def test_broadcast_and_shuffle_paths_identical(self):
        results = []
        for threshold in (1, 10_000):  # force shuffle, then broadcast
            session, indexed, probe = build_world(threshold)
            try:
                joined = indexed.join(
                    probe, on=indexed.col("id") == probe.col("pid")
                )
                assert "IndexedJoin" in joined.explain()
                results.append(sorted(map(tuple, joined.collect())))
            finally:
                session.stop()
        assert results[0] == results[1]
        assert len(results[0]) > 0

    def test_duplicate_build_keys_multiply(self):
        session, indexed, _probe = build_world(10_000)
        try:
            single = session.create_dataframe([(5, 1)], PROBE_SCHEMA)
            joined = indexed.join(single, on=indexed.col("id") == single.col("pid"))
            assert joined.count() == 4  # 4 build rows share key 5
        finally:
            session.stop()

    def test_null_probe_keys_never_match(self):
        session, indexed, _probe = build_world(10_000)
        try:
            probe = session.create_dataframe(
                [(None, 1), (5, 2)], PROBE_SCHEMA
            )
            joined = indexed.join(probe, on=indexed.col("id") == probe.col("pid"))
            assert joined.count() == 4
        finally:
            session.stop()

    def test_estimates_use_chain_statistics(self):
        session, indexed, _probe = build_world(10_000)
        try:
            from repro.core.relation import IndexedRelation
            from repro.core.rules import IndexLookup

            relation = IndexedRelation(indexed, indexed.version)
            lookup = IndexLookup(relation, [1, 2, 3])
            # 240 rows over 60 distinct keys → chain length 4.
            assert lookup.estimated_rows() == 12
        finally:
            session.stop()
