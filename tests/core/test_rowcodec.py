"""Tests for the binary row codec."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rowcodec import RowCodec
from repro.errors import CapacityError, SchemaError
from repro.sql.types import (
    BinaryType,
    BooleanType,
    DoubleType,
    IntegerType,
    LongType,
    StringType,
    StructField,
    StructType,
    TimestampType,
)

MIXED = StructType(
    [
        StructField("id", LongType()),
        StructField("name", StringType()),
        StructField("score", DoubleType()),
        StructField("active", BooleanType()),
        StructField("small", IntegerType()),
        StructField("raw", BinaryType()),
        StructField("ts", TimestampType()),
    ]
)

FIXED_ONLY = StructType(
    [
        StructField("a", LongType()),
        StructField("b", LongType()),
        StructField("c", DoubleType()),
    ]
)


class TestRoundTrip:
    def test_mixed_row(self):
        codec = RowCodec(MIXED)
        row = (7, "alice", 3.5, True, 42, b"\x00\x01", 1_600_000_000_000)
        assert codec.decode(codec.encode(row)) == row

    def test_all_nulls(self):
        codec = RowCodec(MIXED)
        row = (None,) * 7
        assert codec.decode(codec.encode(row)) == row

    def test_partial_nulls(self):
        codec = RowCodec(MIXED)
        row = (1, None, None, False, None, b"", None)
        assert codec.decode(codec.encode(row)) == row

    def test_empty_string_distinct_from_null(self):
        codec = RowCodec(MIXED)
        row = (1, "", 0.0, False, 0, b"", 0)
        decoded = codec.decode(codec.encode(row))
        assert decoded[1] == "" and decoded[1] is not None

    def test_unicode_strings(self):
        codec = RowCodec(MIXED)
        row = (1, "héllo wörld — ünïcode ✓", 0.0, True, 0, b"", 0)
        assert codec.decode(codec.encode(row))[1] == row[1]

    def test_fixed_only_fast_path(self):
        codec = RowCodec(FIXED_ONLY)
        row = (1, -2, 3.5)
        encoded = codec.encode(row)
        assert len(encoded) == codec.fixed_size
        assert codec.decode(encoded) == row

    def test_fixed_only_with_nulls_falls_back(self):
        codec = RowCodec(FIXED_ONLY)
        row = (1, None, 3.5)
        assert codec.decode(codec.encode(row)) == row

    def test_negative_and_extreme_values(self):
        codec = RowCodec(FIXED_ONLY)
        row = (-(2**63), 2**63 - 1, float("inf"))
        assert codec.decode(codec.encode(row)) == row

    def test_decode_at_offset(self):
        codec = RowCodec(FIXED_ONLY)
        encoded = codec.encode((1, 2, 3.0))
        padded = b"\xff" * 13 + encoded
        assert codec.decode(padded, base=13) == (1, 2, 3.0)

    def test_decode_from_memoryview(self):
        codec = RowCodec(MIXED)
        row = (9, "view", 1.0, False, 3, b"xy", 5)
        buf = memoryview(bytearray(codec.encode(row)))
        assert codec.decode(buf) == row


class TestDecodeField:
    def test_single_field_access(self):
        codec = RowCodec(MIXED)
        row = (7, "alice", 3.5, True, 42, b"z", 99)
        encoded = codec.encode(row)
        for i, expected in enumerate(row):
            assert codec.decode_field(encoded, 0, i) == expected

    def test_null_field(self):
        codec = RowCodec(MIXED)
        encoded = codec.encode((None, "x", None, None, None, None, None))
        assert codec.decode_field(encoded, 0, 0) is None
        assert codec.decode_field(encoded, 0, 1) == "x"


class TestErrors:
    def test_arity_mismatch(self):
        codec = RowCodec(FIXED_ONLY)
        with pytest.raises(SchemaError):
            codec.encode((1, 2))

    def test_row_too_large(self):
        codec = RowCodec(MIXED, max_row_bytes=64)
        with pytest.raises(CapacityError):
            codec.encode((1, "x" * 100, 0.0, True, 1, b"", 0))

    def test_integer_out_of_field_range(self):
        schema = StructType([StructField("i", IntegerType())])
        codec = RowCodec(schema)
        with pytest.raises(SchemaError):
            codec.encode((2**40,))

    def test_long_out_of_range_on_fast_path(self):
        codec = RowCodec(FIXED_ONLY)
        with pytest.raises(SchemaError):
            codec.encode((2**70, 0, 0.0))


values = st.tuples(
    st.one_of(st.none(), st.integers(-(2**63), 2**63 - 1)),
    st.one_of(st.none(), st.text(max_size=40)),
    st.one_of(st.none(), st.floats(allow_nan=False)),
    st.one_of(st.none(), st.booleans()),
    st.one_of(st.none(), st.integers(-(2**31), 2**31 - 1)),
    st.one_of(st.none(), st.binary(max_size=40)),
    st.one_of(st.none(), st.integers(0, 2**40)),
)


@given(values)
def test_roundtrip_property(row):
    codec = RowCodec(MIXED)
    assert codec.decode(codec.encode(row)) == row


@given(values, values)
def test_rows_decode_independently(row_a, row_b):
    codec = RowCodec(MIXED)
    buffer = codec.encode(row_a) + codec.encode(row_b)
    assert codec.decode(buffer, 0) == row_a
    assert codec.decode(buffer, len(codec.encode(row_a))) == row_b
