"""Tests for the row-batch manager (append-only binary buffers)."""

from __future__ import annotations

import pytest

from repro.core.pointers import NULL_POINTER, PointerLayout
from repro.core.rowbatch import HEADER_SIZE, BatchManager
from repro.errors import CapacityError

LAYOUT = PointerLayout.for_geometry(1024, 256)


def make_manager(batch_size: int = 1024) -> BatchManager:
    return BatchManager(PointerLayout.for_geometry(batch_size, 256), batch_size)


class TestAppendRead:
    def test_roundtrip(self):
        manager = make_manager()
        pointer = manager.append(b"hello")
        prev, payload = manager.read(pointer)
        assert prev == NULL_POINTER
        assert bytes(payload) == b"hello"

    def test_prev_pointer_stored(self):
        manager = make_manager()
        first = manager.append(b"v1")
        second = manager.append(b"v2", prev_pointer=first)
        prev, payload = manager.read(second)
        assert prev == first
        assert bytes(payload) == b"v2"

    def test_batch_rollover(self):
        manager = make_manager(batch_size=1024)
        payload = b"x" * 100
        pointers = [manager.append(payload) for _ in range(30)]
        assert manager.num_batches > 1
        for pointer in pointers:
            assert bytes(manager.read(pointer)[1]) == payload

    def test_record_too_big(self):
        manager = make_manager(batch_size=1024)
        # payload limit is the pointer size field (511 for this layout)
        with pytest.raises(CapacityError):
            manager.append(b"x" * 600)

    def test_record_exceeds_batch(self):
        layout = PointerLayout.for_geometry(4 * 1024 * 1024, 1024 * 1024)
        manager = BatchManager(layout, 128)
        with pytest.raises(CapacityError):
            manager.append(b"x" * 200)

    def test_empty_payload(self):
        manager = make_manager()
        pointer = manager.append(b"")
        assert bytes(manager.read(pointer)[1]) == b""

    def test_used_and_allocated_bytes(self):
        manager = make_manager(batch_size=1024)
        manager.append(b"abc")
        assert manager.used_bytes() == HEADER_SIZE + 3
        assert manager.allocated_bytes() == 1024


class TestChain:
    def test_walk_newest_first(self):
        manager = make_manager()
        head = NULL_POINTER
        for i in range(5):
            head = manager.append(f"v{i}".encode(), prev_pointer=head)
        chain = [bytes(p) for p in manager.chain(head)]
        assert chain == [b"v4", b"v3", b"v2", b"v1", b"v0"]

    def test_chain_across_batches(self):
        manager = make_manager(batch_size=1024)
        head = NULL_POINTER
        for i in range(50):
            head = manager.append(b"p" * 50, prev_pointer=head)
        assert manager.num_batches > 1
        assert sum(1 for _ in manager.chain(head)) == 50

    def test_null_chain_is_empty(self):
        manager = make_manager()
        assert list(manager.chain(NULL_POINTER)) == []


class TestScanAndWatermark:
    def test_scan_in_append_order(self):
        manager = make_manager()
        for i in range(10):
            manager.append(f"row{i}".encode())
        assert [bytes(p) for p in manager.scan()] == [
            f"row{i}".encode() for i in range(10)
        ]

    def test_watermark_bounds_scan(self):
        manager = make_manager()
        manager.append(b"before1")
        manager.append(b"before2")
        watermark = manager.watermark()
        manager.append(b"after")
        assert [bytes(p) for p in manager.scan(watermark)] == [b"before1", b"before2"]
        assert len(list(manager.scan())) == 3

    def test_watermark_across_batches(self):
        manager = make_manager(batch_size=1024)
        for i in range(20):
            manager.append(b"z" * 90)
        watermark = manager.watermark()
        for i in range(20):
            manager.append(b"z" * 90)
        assert sum(1 for _ in manager.scan(watermark)) == 20

    def test_scan_while_appending_is_safe(self):
        # memoryviews over preallocated buffers must survive appends.
        manager = make_manager(batch_size=1024)
        manager.append(b"first")
        views = list(manager.scan())
        manager.append(b"second")  # must not raise BufferError
        assert bytes(views[0]) == b"first"

    def test_empty_scan(self):
        assert list(make_manager().scan()) == []
