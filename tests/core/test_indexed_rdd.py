"""Tests for the Indexed Row-Batch RDD and lookup RDD."""

from __future__ import annotations

import pytest

from repro.core import create_index
from repro.core.indexed_rdd import IndexedRowBatchRDD, IndexLookupRDD
from repro.engine.partitioner import HashPartitioner

SCHEMA = [("id", "long"), ("name", "string"), ("score", "double")]


@pytest.fixture()
def snapshots(indexed_session):
    df = indexed_session.create_dataframe(
        [(i, f"row{i}", float(i)) for i in range(100)], SCHEMA
    )
    indexed = create_index(df, "id")
    return indexed_session.ctx, indexed.version.snapshots


class TestIndexedRowBatchRDD:
    def test_full_scan(self, snapshots):
        ctx, snaps = snapshots
        rdd = IndexedRowBatchRDD(ctx, snaps)
        rows = rdd.collect()
        assert sorted(r[0] for r in rows) == list(range(100))
        assert rdd.num_partitions == len(snaps)

    def test_reports_hash_partitioner(self, snapshots):
        ctx, snaps = snapshots
        rdd = IndexedRowBatchRDD(ctx, snaps)
        assert rdd.partitioner == HashPartitioner(len(snaps))

    def test_column_pruned_decode(self, snapshots):
        ctx, snaps = snapshots
        rdd = IndexedRowBatchRDD(ctx, snaps, columns=[1])
        names = sorted(r[0] for r in rdd.collect())
        assert names[0] == "row0" and len(names) == 100

    def test_column_order_respected(self, snapshots):
        ctx, snaps = snapshots
        rdd = IndexedRowBatchRDD(ctx, snaps, columns=[2, 0])
        row = sorted(rdd.collect())[0]
        assert row == (0.0, 0)

    def test_engine_ops_compose(self, snapshots):
        ctx, snaps = snapshots
        rdd = IndexedRowBatchRDD(ctx, snaps)
        total = rdd.map(lambda r: r[2]).sum()
        assert total == sum(float(i) for i in range(100))


class TestIndexLookupRDD:
    def test_routes_keys_to_partitions(self, snapshots):
        ctx, snaps = snapshots
        rdd = IndexLookupRDD(ctx, snaps, keys=[5, 50, 99])
        rows = sorted(rdd.collect())
        assert [r[0] for r in rows] == [5, 50, 99]

    def test_missing_keys_yield_nothing(self, snapshots):
        ctx, snaps = snapshots
        assert IndexLookupRDD(ctx, snaps, keys=[12345]).collect() == []

    def test_null_and_duplicate_keys_skipped(self, snapshots):
        ctx, snaps = snapshots
        rdd = IndexLookupRDD(ctx, snaps, keys=[None, 7, 7, 7])
        assert [r[0] for r in rdd.collect()] == [7]

    def test_empty_key_list(self, snapshots):
        ctx, snaps = snapshots
        assert IndexLookupRDD(ctx, snaps, keys=[]).collect() == []
