"""SQL over indexed temp views: the full Figure-1 pipeline end to end."""

from __future__ import annotations

import pytest

from repro.core import create_index


@pytest.fixture()
def db(indexed_session):
    users = indexed_session.create_dataframe(
        [(i, f"user{i}", i % 5) for i in range(300)],
        [("uid", "long"), ("uname", "string"), ("region", "long")],
    )
    events = indexed_session.create_dataframe(
        [(i, i % 300, i % 11, float(i)) for i in range(900)],
        [("eid", "long"), ("euser", "long"), ("etype", "long"), ("weight", "double")],
    )
    create_index(users, "uid").create_or_replace_temp_view("users")
    create_index(events, "euser").create_or_replace_temp_view("events")
    users.cache().create_or_replace_temp_view("users_plain")
    events.cache().create_or_replace_temp_view("events_plain")
    return indexed_session


def q(db, text):
    return sorted(tuple(r) for r in db.sql(text).collect())


class TestIndexedSQL:
    def test_point_lookup_sql(self, db):
        rows = q(db, "SELECT uname FROM users WHERE uid = 17")
        assert rows == [("user17",)]

    def test_lookup_plus_residual(self, db):
        rows = q(db, "SELECT eid FROM events WHERE euser = 5 AND weight > 300")
        assert rows == [(305,), (605,)]

    def test_join_of_two_indexed_views(self, db):
        text = (
            "SELECT u.uname, e.eid FROM users u JOIN events e ON u.uid = e.euser "
            "WHERE u.uid = 42"
        )
        rows = q(db, text)
        assert rows == [("user42", 42), ("user42", 342), ("user42", 642)]

    def test_sql_matches_plain_tables(self, db):
        for text in (
            "SELECT region, count(*) AS n FROM {} GROUP BY region",
            "SELECT uname FROM {} WHERE uid IN (1, 2, 3)",
        ):
            indexed = q(db, text.format("users"))
            plain = q(db, text.format("users_plain"))
            assert indexed == plain

    def test_join_matches_plain(self, db):
        indexed = q(
            db,
            "SELECT u.uid, sum(e.weight) AS w FROM users u "
            "JOIN events e ON u.uid = e.euser GROUP BY u.uid",
        )
        plain = q(
            db,
            "SELECT u.uid, sum(e.weight) AS w FROM users_plain u "
            "JOIN events_plain e ON u.uid = e.euser GROUP BY u.uid",
        )
        assert indexed == plain

    def test_indexed_self_join(self, db):
        rows = q(
            db,
            "SELECT a.uid FROM users a JOIN users b ON a.uid = b.uid WHERE a.uid = 9",
        )
        assert rows == [(9,)]

    def test_order_by_limit_over_index(self, db):
        rows = db.sql(
            "SELECT eid FROM events WHERE euser = 7 ORDER BY weight DESC LIMIT 2"
        ).collect()
        assert [r["eid"] for r in rows] == [607, 307]

    def test_union_of_indexed_and_plain(self, db):
        rows = q(
            db,
            "SELECT uid FROM users WHERE uid = 1 "
            "UNION ALL SELECT uid FROM users_plain WHERE uid = 1",
        )
        assert rows == [(1,), (1,)]

    def test_view_pins_version(self, db):
        # The temp view was registered at version N; appending via a new
        # handle must not change what the view serves.
        before = q(db, "SELECT count(*) AS n FROM users")[0][0]
        handle = create_index(
            db.table("users_plain"), "uid"
        )  # unrelated index, just exercising appends elsewhere
        handle.append_rows([(9999, "ghost", 0)])
        after = q(db, "SELECT count(*) AS n FROM users")[0][0]
        assert before == after == 300
