"""Direct unit tests for the indexed physical operators."""

from __future__ import annotations

import pytest

from repro.core import create_index
from repro.core.physical import IndexedScanExec, IndexLookupExec
from repro.core.relation import IndexedRelation

SCHEMA = [("id", "long"), ("tag", "string")]


@pytest.fixture()
def world(indexed_session):
    df = indexed_session.create_dataframe(
        [(i, f"t{i % 3}") for i in range(60)], SCHEMA
    )
    indexed = create_index(df, "id")
    relation = IndexedRelation(indexed, indexed.version)
    return indexed_session, indexed, relation


class TestIndexedScanExec:
    def test_full_scan(self, world):
        session, indexed, relation = world
        scan = IndexedScanExec(session.ctx, indexed.version, relation.output())
        rows = scan.execute().collect()
        assert sorted(r[0] for r in rows) == list(range(60))

    def test_pruned_scan(self, world):
        session, indexed, relation = world
        scan = IndexedScanExec(
            session.ctx, indexed.version, [relation.output()[1]], columns=[1]
        )
        assert set(scan.execute().collect()) == {("t0",), ("t1",), ("t2",)}

    def test_describe_mentions_version(self, world):
        session, indexed, relation = world
        scan = IndexedScanExec(session.ctx, indexed.version, relation.output())
        assert f"version={indexed.version_id}" in scan.describe()

    def test_scan_pinned_to_version(self, world):
        session, indexed, relation = world
        scan = IndexedScanExec(session.ctx, indexed.version, relation.output())
        indexed.append_rows([(999, "late")])
        assert len(scan.execute().collect()) == 60  # does not see the append


class TestIndexLookupExec:
    def test_lookup_keys(self, world):
        session, indexed, relation = world
        lookup = IndexLookupExec(
            session.ctx, indexed.version, [3, 7, 99999], relation.output()
        )
        assert sorted(r[0] for r in lookup.execute().collect()) == [3, 7]

    def test_describe_shows_keys(self, world):
        session, indexed, relation = world
        lookup = IndexLookupExec(session.ctx, indexed.version, [5], relation.output())
        assert "[5]" in lookup.describe()

    def test_multi_version_chains_returned(self, indexed_session):
        df = indexed_session.create_dataframe([(1, "old")], SCHEMA)
        indexed = create_index(df, "id").append_rows([(1, "new")])
        relation = IndexedRelation(indexed, indexed.version)
        lookup = IndexLookupExec(
            indexed_session.ctx, indexed.version, [1], relation.output()
        )
        rows = lookup.execute().collect()
        assert [r[1] for r in rows] == ["new", "old"]
