"""Tests for the IndexedDataFrame public API (paper Listing 1)."""

from __future__ import annotations

import pytest

from repro.core import create_index
from repro.errors import IndexError_, SchemaError
from repro.sql.functions import col

SCHEMA = [("id", "long"), ("name", "string"), ("age", "long")]


@pytest.fixture()
def base_df(indexed_session):
    return indexed_session.create_dataframe(
        [(i, f"name{i}", 20 + i % 5) for i in range(100)], SCHEMA
    )


@pytest.fixture()
def indexed(base_df):
    return create_index(base_df, "id")


class TestCreateIndex:
    def test_by_name_and_ordinal(self, base_df):
        assert create_index(base_df, "id").key_column == "id"
        assert create_index(base_df, 0).key_column == "id"
        assert create_index(base_df, 2).key_column == "age"

    def test_bad_column(self, base_df):
        with pytest.raises(SchemaError):
            create_index(base_df, "missing")
        with pytest.raises(IndexError_):
            create_index(base_df, 17)

    def test_loads_all_rows(self, indexed):
        assert indexed.count() == 100
        assert sorted(r[0] for r in indexed.scan_tuples()) == list(range(100))

    def test_hash_partitioned_on_key(self, indexed):
        from repro.engine.partitioner import HashPartitioner

        partitioner = HashPartitioner(indexed.num_partitions)
        for p, snapshot in enumerate(indexed.version.snapshots):
            for key in snapshot.keys():
                assert partitioner.partition(key) == p

    def test_monkeypatched_method(self, base_df):
        # enable_indexing adds DataFrame.create_index (implicit-conversion
        # analogue of the paper's Scala API).
        indexed = base_df.create_index("id")
        assert indexed.count() == 100

    def test_cache_is_identity(self, indexed):
        assert indexed.cache() is indexed


class TestGetRows:
    def test_planner_path(self, indexed):
        rows = indexed.get_rows(42).collect()
        assert len(rows) == 1 and rows[0]["name"] == "name42"

    def test_planner_path_uses_index(self, indexed):
        assert "IndexLookup" in indexed.get_rows(42).explain()

    def test_local_path(self, indexed):
        assert indexed.get_rows_local(42) == [(42, "name42", 22)]
        assert indexed.get_rows_local(-1) == []
        assert indexed.get_rows_local(None) == []

    def test_lookup_latest(self, indexed):
        assert indexed.lookup_latest(10) == (10, "name10", 20)
        assert indexed.lookup_latest(12345) is None

    def test_duplicate_keys_all_returned(self, indexed_session):
        df = indexed_session.create_dataframe(
            [(1, "a", 1), (1, "b", 2), (2, "c", 3)], SCHEMA
        )
        indexed = create_index(df, "id")
        rows = indexed.get_rows(1).collect()
        assert sorted(r["name"] for r in rows) == ["a", "b"]


class TestAppendRows:
    def test_append_dataframe(self, indexed, indexed_session):
        more = indexed_session.create_dataframe([(100, "new", 50)], SCHEMA)
        v2 = indexed.append_rows(more)
        assert v2.count() == 101
        assert v2.lookup_latest(100) == (100, "new", 50)

    def test_append_tuples_fine_grained(self, indexed):
        v2 = indexed.append_rows([(200, "tuple", 1)])
        assert v2.lookup_latest(200) == (200, "tuple", 1)

    def test_mvcc_old_version_stable(self, indexed):
        v2 = indexed.append_rows([(42, "updated", 99)])
        # New version sees both rows for key 42, newest first.
        assert [r[1] for r in v2.get_rows_local(42)] == ["updated", "name42"]
        # The old handle still sees exactly the original row.
        assert [r[1] for r in indexed.get_rows_local(42)] == ["name42"]
        assert indexed.count() == 100 and v2.count() == 101

    def test_version_ids_increase(self, indexed):
        v2 = indexed.append_rows([(300, "x", 1)])
        v3 = v2.append_rows([(301, "y", 1)])
        assert indexed.version_id < v2.version_id < v3.version_id

    def test_schema_mismatch_rejected(self, indexed, indexed_session):
        wrong = indexed_session.create_dataframe([(1.5,)], [("x", "double")])
        with pytest.raises(SchemaError):
            indexed.append_rows(wrong)

    def test_invalid_tuple_rejected(self, indexed):
        with pytest.raises(SchemaError):
            indexed.append_rows([("not-an-id", "x", 1)])

    def test_appends_shared_across_handles(self, indexed):
        # Two appends from different handles both land in shared storage.
        v2 = indexed.append_rows([(500, "a", 1)])
        v3 = indexed.append_rows([(501, "b", 1)])  # from the OLD handle
        assert v3.lookup_latest(500) == (500, "a", 1)
        assert v3.lookup_latest(501) == (501, "b", 1)


class TestDataFrameInterop:
    def test_to_df_composes(self, indexed):
        result = (
            indexed.to_df()
            .filter(col("age") == 22)
            .select("name")
            .order_by("name")
            .collect()
        )
        assert len(result) == 20

    def test_collect_and_take(self, indexed):
        assert len(indexed.collect()) == 100
        assert len(indexed.take(5)) == 5

    def test_temp_view_sql(self, indexed, indexed_session):
        indexed.create_or_replace_temp_view("idx")
        row = indexed_session.sql("SELECT name FROM idx WHERE id = 7").collect()[0]
        assert row["name"] == "name7"

    def test_keys_iterates_distinct(self, indexed):
        assert sorted(indexed.keys()) == list(range(100))

    def test_memory_stats_aggregate(self, indexed):
        stats = indexed.memory_stats()
        assert stats["rows"] == 100
        assert stats["index_entries"] == 100

    def test_show_runs(self, indexed, capsys):
        indexed.show(3)
        assert "name" in capsys.readouterr().out

    def test_repr(self, indexed):
        text = repr(indexed)
        assert "key=id" in text and "rows=100" in text
