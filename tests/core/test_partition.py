"""Tests for IndexedPartition: append, lookup, snapshots, concurrency."""

from __future__ import annotations

import threading

import pytest

from repro.core.partition import IndexedPartition
from repro.core.pointers import PointerLayout
from repro.sql.types import LongType, StringType, StructField, StructType

SCHEMA = StructType(
    [
        StructField("key", LongType(), nullable=False),
        StructField("value", StringType()),
    ]
)


@pytest.fixture()
def partition() -> IndexedPartition:
    layout = PointerLayout.for_geometry(4096, 512)
    return IndexedPartition(SCHEMA, 0, layout, 4096, 512)


class TestAppendLookup:
    def test_single_row(self, partition):
        partition.append((1, "hello"))
        assert list(partition.lookup(1)) == [(1, "hello")]
        assert partition.row_count == 1

    def test_missing_key(self, partition):
        partition.append((1, "x"))
        assert list(partition.lookup(2)) == []

    def test_multi_version_newest_first(self, partition):
        for i in range(5):
            partition.append((7, f"v{i}"))
        assert [v for _k, v in partition.lookup(7)] == ["v4", "v3", "v2", "v1", "v0"]

    def test_distinct_keys_chain_separately(self, partition):
        partition.append((1, "a"))
        partition.append((2, "b"))
        partition.append((1, "c"))
        assert [v for _k, v in partition.lookup(1)] == ["c", "a"]
        assert [v for _k, v in partition.lookup(2)] == ["b"]
        assert partition.key_count() == 2

    def test_append_many(self, partition):
        rows = [(i % 10, f"row{i}") for i in range(100)]
        assert partition.append_many(rows) == 100
        assert partition.row_count == 100
        assert len(list(partition.lookup(3))) == 10

    def test_null_key_storable(self, partition):
        partition.append((None, "nothing"))  # type: ignore[arg-type]
        assert list(partition.lookup(None)) == [(None, "nothing")]

    def test_scan_in_append_order(self, partition):
        rows = [(i, f"r{i}") for i in range(20)]
        partition.append_many(rows)
        assert list(partition.scan()) == rows


class TestSnapshots:
    def test_snapshot_is_frozen(self, partition):
        partition.append((1, "old"))
        snapshot = partition.snapshot()
        partition.append((1, "new"))
        partition.append((2, "other"))
        assert [v for _k, v in snapshot.lookup(1)] == ["old"]
        assert not snapshot.contains(2)
        assert len(snapshot) == 1
        assert list(snapshot.scan()) == [(1, "old")]

    def test_lookup_head(self, partition):
        partition.append((1, "first"))
        partition.append((1, "second"))
        snapshot = partition.snapshot()
        assert snapshot.lookup_head(1) == (1, "second")
        assert snapshot.lookup_head(9) is None

    def test_snapshot_keys(self, partition):
        partition.append_many([(i, "x") for i in range(10)])
        snapshot = partition.snapshot()
        assert sorted(snapshot.keys()) == list(range(10))

    def test_version_chain(self, partition):
        snapshots = []
        for i in range(5):
            partition.append((1, f"v{i}"))
            snapshots.append(partition.snapshot())
        for i, snap in enumerate(snapshots):
            assert snap.lookup_head(1) == (1, f"v{i}")
            assert len(snap) == i + 1


class TestConcurrency:
    def test_appends_race_snapshots(self, partition):
        errors = []
        stop = threading.Event()

        def appender():
            try:
                for i in range(2000):
                    partition.append((i % 50, f"value{i}"))
            finally:
                stop.set()

        def snapshotter():
            try:
                while not stop.is_set():
                    snap = partition.snapshot()
                    rows = list(snap.scan())
                    assert len(rows) == len(snap)
                    for key, value in rows:
                        assert value.startswith("value")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=appender)] + [
            threading.Thread(target=snapshotter) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert partition.row_count == 2000

    def test_concurrent_appenders_serialize(self, partition):
        def appender(base):
            partition.append_many([(base + i, "x") for i in range(500)])

        threads = [
            threading.Thread(target=appender, args=(b * 10_000,)) for b in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert partition.row_count == 2000
        assert len(list(partition.scan())) == 2000


class TestAccounting:
    def test_memory_stats(self, partition):
        partition.append_many([(i % 10, "payload") for i in range(100)])
        stats = partition.memory_stats()
        assert stats["rows"] == 100
        assert stats["index_entries"] == 10
        assert stats["data_bytes"] > 0
        assert stats["header_bytes"] == 100 * 10  # 10-byte headers
        assert stats["allocated_bytes"] >= stats["data_bytes"]
