"""Tests for the Catalyst integration: rules, strategy, fallbacks."""

from __future__ import annotations

import pytest

from repro.core import create_index
from repro.core.physical import IndexedJoinExec, IndexedScanExec, IndexLookupExec
from repro.core.relation import IndexedRelation
from repro.core.rules import IndexLookup, index_lookup_rewrite
from repro.sql.expressions import And, EqualTo, GreaterThan, In, Literal
from repro.sql.functions import col
from repro.sql.logical import Filter

SCHEMA = [("id", "long"), ("grp", "long"), ("name", "string")]


@pytest.fixture()
def indexed(indexed_session):
    df = indexed_session.create_dataframe(
        [(i, i % 7, f"n{i}") for i in range(200)], SCHEMA
    )
    return create_index(df, "id")


def physical_of(df) -> str:
    return df.explain().split("== Physical ==")[1]


class TestLookupRewrite:
    def test_equality_becomes_lookup(self, indexed):
        relation = IndexedRelation(indexed, indexed.version)
        plan = Filter(EqualTo(relation.key_attribute, Literal(5)), relation)
        rewritten = index_lookup_rewrite(plan)
        assert isinstance(rewritten, IndexLookup)
        assert rewritten.keys == [5]

    def test_reversed_equality(self, indexed):
        relation = IndexedRelation(indexed, indexed.version)
        plan = Filter(EqualTo(Literal(5), relation.key_attribute), relation)
        assert isinstance(index_lookup_rewrite(plan), IndexLookup)

    def test_in_list_becomes_multi_lookup(self, indexed):
        relation = IndexedRelation(indexed, indexed.version)
        plan = Filter(
            In(relation.key_attribute, [Literal(1), Literal(2)]), relation
        )
        rewritten = index_lookup_rewrite(plan)
        assert isinstance(rewritten, IndexLookup)
        assert rewritten.keys == [1, 2]

    def test_residual_filter_kept(self, indexed):
        relation = IndexedRelation(indexed, indexed.version)
        grp = relation.output()[1]
        condition = And(
            EqualTo(relation.key_attribute, Literal(5)),
            GreaterThan(grp, Literal(0)),
        )
        plan = Filter(condition, relation)
        rewritten = index_lookup_rewrite(plan)
        assert isinstance(rewritten, Filter)
        assert isinstance(rewritten.child, IndexLookup)

    def test_non_key_filter_untouched(self, indexed):
        relation = IndexedRelation(indexed, indexed.version)
        grp = relation.output()[1]
        plan = Filter(EqualTo(grp, Literal(3)), relation)
        assert index_lookup_rewrite(plan) is plan

    def test_null_key_dropped(self, indexed):
        relation = IndexedRelation(indexed, indexed.version)
        plan = Filter(EqualTo(relation.key_attribute, Literal(None)), relation)
        rewritten = index_lookup_rewrite(plan)
        assert isinstance(rewritten, IndexLookup)
        assert rewritten.keys == []


class TestPlannedOperators:
    def test_key_filter_plans_lookup(self, indexed):
        df = indexed.to_df().filter(col("id") == 3)
        assert "IndexLookup" in physical_of(df)
        assert df.collect()[0]["name"] == "n3"

    def test_non_key_filter_plans_scan(self, indexed):
        df = indexed.to_df().filter(col("grp") == 3)
        text = physical_of(df)
        assert "IndexedScan" in text and "IndexLookup" not in text
        assert df.count() == len([i for i in range(200) if i % 7 == 3])

    def test_projection_prunes_scan_columns(self, indexed):
        df = indexed.to_df().select("name")
        assert "columns=[2]" in physical_of(df)

    def test_join_on_key_plans_indexed_join(self, indexed, indexed_session):
        probe = indexed_session.create_dataframe(
            [(i, i * 10) for i in range(0, 200, 5)], [("pid", "long"), ("w", "long")]
        )
        df = indexed.join(probe, on=indexed.col("id") == probe.col("pid"))
        assert "IndexedJoin" in physical_of(df)
        assert df.count() == 40

    def test_join_on_non_key_falls_back(self, indexed, indexed_session):
        probe = indexed_session.create_dataframe(
            [(g,) for g in range(7)], [("g", "long")]
        )
        df = indexed.to_df().join(probe, on=indexed.col("grp") == probe.col("g"))
        text = physical_of(df)
        assert "IndexedJoin" not in text
        assert df.count() == 200

    def test_outer_join_falls_back(self, indexed, indexed_session):
        probe = indexed_session.create_dataframe(
            [(1, 1)], [("pid", "long"), ("w", "long")]
        )
        df = indexed.join(probe, on=indexed.col("id") == probe.col("pid"), how="left")
        text = physical_of(df)
        assert "IndexedJoin" not in text
        assert df.count() == 200  # left join keeps all indexed rows

    def test_indexed_join_with_extra_condition(self, indexed, indexed_session):
        probe = indexed_session.create_dataframe(
            [(i, i) for i in range(200)], [("pid", "long"), ("w", "long")]
        )
        condition = (indexed.col("id") == probe.col("pid")) & (
            probe.col("w") > 100
        )
        df = indexed.join(probe, on=condition)
        assert "IndexedJoin" in physical_of(df)
        assert df.count() == 99

    def test_probe_side_can_be_left(self, indexed, indexed_session):
        probe = indexed_session.create_dataframe(
            [(3, 30)], [("pid", "long"), ("w", "long")]
        )
        df = probe.join(indexed.to_df(), on=probe.col("pid") == indexed.col("id"))
        assert "IndexedJoin" in physical_of(df)
        row = df.collect()[0]
        assert row["pid"] == 3 and row["name"] == "n3"
        # column order must match the logical join (probe side first)
        assert df.columns[:2] == ["pid", "w"]


class TestFallbackWithoutExtension:
    def test_vanilla_session_still_correct(self, session):
        """An IndexedDataFrame queried in a session WITHOUT the injected
        rules falls back to plain scans and stays correct (Figure 1's
        regular execution path)."""
        df = session.create_dataframe([(i, i % 7, f"n{i}") for i in range(50)], SCHEMA)
        indexed = create_index(df, "id")
        lookup = indexed.get_rows(9)
        text = lookup.explain()
        assert "IndexLookup" not in text  # no rules injected here
        assert lookup.collect()[0]["name"] == "n9"


class TestEquivalence:
    """Every indexed plan must return exactly the vanilla answer."""

    def test_filter_equivalence(self, indexed, indexed_session):
        vanilla = indexed_session.create_dataframe(
            [(i, i % 7, f"n{i}") for i in range(200)], SCHEMA
        ).cache()
        for key in (0, 42, 199, -5):
            a = sorted(map(tuple, indexed.to_df().filter(col("id") == key).collect()))
            b = sorted(map(tuple, vanilla.filter(col("id") == key).collect()))
            assert a == b

    def test_join_equivalence(self, indexed, indexed_session):
        vanilla = indexed_session.create_dataframe(
            [(i, i % 7, f"n{i}") for i in range(200)], SCHEMA
        ).cache()
        probe = indexed_session.create_dataframe(
            [(i * 3, i) for i in range(80)], [("pid", "long"), ("w", "long")]
        )
        a = sorted(
            map(tuple, indexed.join(probe, on=indexed.col("id") == probe.col("pid")).collect())
        )
        b = sorted(
            map(tuple, vanilla.join(probe, on=vanilla.col("id") == probe.col("pid")).collect())
        )
        assert a == b

    def test_aggregation_over_indexed_scan(self, indexed, indexed_session):
        from repro.sql.functions import count

        by_group = dict(
            (r["grp"], r["n"])
            for r in indexed.to_df().group_by("grp").agg(count().alias("n")).collect()
        )
        expected = {}
        for i in range(200):
            expected[i % 7] = expected.get(i % 7, 0) + 1
        assert by_group == expected
