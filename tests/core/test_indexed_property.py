"""Property-based tests: indexed results must equal vanilla results."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.sql.functions import col
from repro.sql.session import Session

slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
)

rows_strategy = st.lists(
    st.tuples(st.integers(0, 30), st.text(max_size=6), st.integers(-5, 5)),
    max_size=60,
)


@pytest.fixture(scope="module")
def shared_session():
    s = Session(
        Config(
            executor_threads=2,
            shuffle_partitions=3,
            default_parallelism=2,
            batch_size_bytes=16 * 1024,
            broadcast_threshold=10,
        )
    )
    enable_indexing(s)
    yield s
    s.stop()


SCHEMA = [("k", "long"), ("s", "string"), ("v", "long")]


@slow
@given(rows=rows_strategy, key=st.integers(0, 30))
def test_get_rows_matches_filter(shared_session, rows, key):
    df = shared_session.create_dataframe(rows, SCHEMA)
    indexed = create_index(df, "k")
    via_index = sorted(map(tuple, indexed.get_rows(key).collect()))
    via_scan = sorted(map(tuple, df.filter(col("k") == key).collect()))
    assert via_index == via_scan
    assert sorted(indexed.get_rows_local(key)) == via_scan


@slow
@given(rows=rows_strategy)
def test_scan_preserves_multiset(shared_session, rows):
    df = shared_session.create_dataframe(rows, SCHEMA)
    indexed = create_index(df, "k")
    assert sorted(indexed.scan_tuples()) == sorted(map(tuple, rows))
    assert indexed.count() == len(rows)


@slow
@given(base=rows_strategy, extra=rows_strategy)
def test_append_equals_union(shared_session, base, extra):
    df = shared_session.create_dataframe(base, SCHEMA)
    indexed = create_index(df, "k")
    appended = indexed.append_rows([tuple(r) for r in extra])
    assert sorted(appended.scan_tuples()) == sorted(map(tuple, base + extra))
    # the original version is untouched
    assert sorted(indexed.scan_tuples()) == sorted(map(tuple, base))


@slow
@given(build=rows_strategy, probe_keys=st.lists(st.integers(0, 30), max_size=20))
def test_indexed_join_matches_vanilla(shared_session, build, probe_keys):
    build_df = shared_session.create_dataframe(build, SCHEMA)
    probe_df = shared_session.create_dataframe(
        [(k, i) for i, k in enumerate(probe_keys)], [("pk", "long"), ("seq", "long")]
    )
    indexed = create_index(build_df, "k")
    via_index = sorted(
        map(tuple, indexed.join(probe_df, on=indexed.col("k") == probe_df.col("pk")).collect()),
        key=repr,
    )
    via_vanilla = sorted(
        map(tuple, build_df.join(probe_df, on=build_df.col("k") == probe_df.col("pk")).collect()),
        key=repr,
    )
    assert via_index == via_vanilla


@slow
@given(rows=rows_strategy, keys=st.lists(st.integers(0, 30), min_size=1, max_size=5))
def test_in_lookup_matches_vanilla(shared_session, rows, keys):
    df = shared_session.create_dataframe(rows, SCHEMA)
    indexed = create_index(df, "k")
    via_index = sorted(
        map(tuple, indexed.to_df().filter(col("k").isin(keys)).collect())
    )
    expected = sorted(tuple(r) for r in rows if r[0] in keys)
    assert via_index == expected
