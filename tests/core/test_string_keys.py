"""Indexes on non-integer key columns (paper: "the index supports any
type of column", recommending primitives for performance)."""

from __future__ import annotations

import pytest

from repro.core import create_index
from repro.sql.functions import col


class TestStringKeyedIndex:
    @pytest.fixture()
    def indexed(self, indexed_session):
        df = indexed_session.create_dataframe(
            [(f"10.0.0.{i}", i, f"host{i % 7}") for i in range(200)],
            [("ip", "string"), ("hits", "long"), ("host", "string")],
        )
        return create_index(df, "ip")

    def test_lookup(self, indexed):
        assert indexed.get_rows_local("10.0.0.77") == [("10.0.0.77", 77, "host0")]
        assert indexed.get_rows_local("192.168.0.1") == []

    def test_sql_lookup(self, indexed, indexed_session):
        indexed.create_or_replace_temp_view("flows")
        rows = indexed_session.sql(
            "SELECT hits FROM flows WHERE ip = '10.0.0.9'"
        ).collect()
        assert rows[0]["hits"] == 9

    def test_join_on_string_key(self, indexed, indexed_session):
        intel = indexed_session.create_dataframe(
            [("10.0.0.5", "bad"), ("8.8.8.8", "dns")],
            [("indicator", "string"), ("tag", "string")],
        )
        joined = indexed.join(intel, on=indexed.col("ip") == intel.col("indicator"))
        assert "IndexedJoin" in joined.explain()
        assert [tuple(r) for r in joined.collect()] == [
            ("10.0.0.5", 5, "host5", "10.0.0.5", "bad")
        ]

    def test_append_string_keys(self, indexed):
        v2 = indexed.append_rows([("10.0.0.5", 999, "hostX")])
        chain = v2.get_rows_local("10.0.0.5")
        assert [r[1] for r in chain] == [999, 5]


class TestBooleanAndTimestampKeys:
    def test_boolean_key(self, indexed_session):
        df = indexed_session.create_dataframe(
            [(True, 1), (False, 2), (True, 3)], [("flag", "boolean"), ("v", "long")]
        )
        indexed = create_index(df, "flag")
        assert sorted(r[1] for r in indexed.get_rows_local(True)) == [1, 3]

    def test_timestamp_key(self, indexed_session):
        from repro.sql.types import LongType, StructField, StructType, TimestampType

        schema = StructType(
            [StructField("ts", TimestampType()), StructField("v", LongType())]
        )
        df = indexed_session.create_dataframe(
            [(1_600_000_000_000 + i, i) for i in range(50)], schema
        )
        indexed = create_index(df, "ts")
        assert indexed.get_rows_local(1_600_000_000_007) == [(1_600_000_000_007, 7)]

    def test_double_key(self, indexed_session):
        df = indexed_session.create_dataframe(
            [(1.5, "a"), (2.5, "b")], [("k", "double"), ("v", "string")]
        )
        indexed = create_index(df, "k")
        assert indexed.get_rows_local(2.5) == [(2.5, "b")]

    def test_lookup_with_filter_composition(self, indexed_session):
        df = indexed_session.create_dataframe(
            [(f"k{i}", i) for i in range(100)], [("k", "string"), ("v", "long")]
        )
        indexed = create_index(df, "k")
        rows = indexed.to_df().filter((col("k") == "k42") & (col("v") > 0)).collect()
        assert [tuple(r) for r in rows] == [("k42", 42)]
