"""Integration: SQL queries racing streaming appends (the demo's core)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import create_index
from repro.streaming import Broker, IndexedIngest, Producer

SCHEMA = [("id", "long"), ("device", "string"), ("reading", "double")]


@pytest.fixture()
def live(indexed_session):
    base = indexed_session.create_dataframe(
        [(i, f"dev{i % 20}", float(i)) for i in range(1_000)], SCHEMA
    )
    indexed = create_index(base, "id")
    broker = Broker()
    broker.create_topic("readings", partitions=2)
    return indexed_session, indexed, broker


class TestQueriesDuringIngestion:
    def test_sql_answers_stay_version_consistent(self, live):
        session, indexed, broker = live
        producer = Producer(broker, "readings")
        ingest = IndexedIngest(broker, "readings", indexed, batch_size=50)
        errors: list[BaseException] = []
        stop = threading.Event()

        def feed():
            try:
                for i in range(1_000, 3_000):
                    producer.send((i, f"dev{i % 20}", float(i)), key=i)
            finally:
                stop.set()

        def query():
            try:
                while not stop.is_set() or ingest.consumer.lag() > 0:
                    version = ingest.current
                    version.create_or_replace_temp_view("readings")
                    total = session.sql(
                        "SELECT count(*) AS n FROM readings"
                    ).collect()[0]["n"]
                    # A version's count equals its handle's count, always.
                    assert total == version.count()
                    assert total >= 1_000
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        ingest.start(poll_interval=0.001)
        threads = [threading.Thread(target=feed), threading.Thread(target=query)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            deadline = time.time() + 10
            while ingest.current.count() < 3_000 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            ingest.stop()
        assert not errors
        assert ingest.current.count() == 3_000

    def test_point_lookups_never_see_torn_rows(self, live):
        _session, indexed, broker = live
        producer = Producer(broker, "readings")
        ingest = IndexedIngest(broker, "readings", indexed, batch_size=25)
        errors: list[BaseException] = []
        stop = threading.Event()

        def feed():
            try:
                for generation in range(40):
                    for key in range(50):
                        producer.send(
                            (key, f"gen{generation}", float(generation)), key=key
                        )
            finally:
                stop.set()

        def probe():
            try:
                while not stop.is_set() or ingest.consumer.lag() > 0:
                    version = ingest.current
                    for key in (0, 25, 49):
                        chain = version.get_rows_local(key)
                        # Every visible row is complete; generations in a
                        # chain are newest-first and internally consistent.
                        for row in chain:
                            assert row[1].startswith(("dev", "gen"))
                            assert row[2] is not None
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        ingest.start(poll_interval=0.001)
        threads = [threading.Thread(target=feed)] + [
            threading.Thread(target=probe) for _ in range(2)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            ingest.drain()
        finally:
            ingest.stop()
        assert not errors
        final = ingest.current.get_rows_local(25)
        assert len(final) == 41  # 1 base row + 40 generations
