"""Tests for Indexed DataFrame compaction (space reclamation)."""

from __future__ import annotations

import pytest

from repro.core import create_index

SCHEMA = [("id", "long"), ("v", "string")]


@pytest.fixture()
def versioned(indexed_session):
    df = indexed_session.create_dataframe(
        [(i, "v0") for i in range(100)], SCHEMA
    )
    indexed = create_index(df, "id")
    for generation in range(1, 4):
        indexed = indexed.append_rows(
            [(i, f"v{generation}") for i in range(100)]
        )
    return indexed  # 4 versions of every key


class TestCompactLatestOnly:
    def test_keeps_one_row_per_key(self, versioned):
        compacted = versioned.compact()
        assert compacted.count() == 100
        assert versioned.count() == 400

    def test_latest_values_survive(self, versioned):
        compacted = versioned.compact()
        for key in (0, 50, 99):
            assert compacted.get_rows_local(key) == [(key, "v3")]

    def test_space_reclaimed(self, versioned):
        before = versioned.memory_stats()["data_bytes"]
        after = versioned.compact().memory_stats()["data_bytes"]
        assert after < before / 3

    def test_old_handle_unaffected(self, versioned):
        versioned.compact()
        assert versioned.count() == 400
        assert len(versioned.get_rows_local(5)) == 4

    def test_compacted_is_queryable_and_appendable(self, versioned):
        compacted = versioned.compact()
        grown = compacted.append_rows([(5, "v4")])
        assert [r[1] for r in grown.get_rows_local(5)] == ["v4", "v3"]
        assert "IndexLookup" in compacted.get_rows(5).explain()


class TestCompactKeepHistory:
    def test_keeps_all_versions(self, versioned):
        compacted = versioned.compact(keep_history=True)
        assert compacted.count() == 400
        chain = compacted.get_rows_local(7)
        assert [r[1] for r in chain] == ["v3", "v2", "v1", "v0"]

    def test_drops_rows_after_this_version(self, versioned):
        later = versioned.append_rows([(7, "future")])
        compacted = versioned.compact(keep_history=True)
        assert all(r[1] != "future" for r in compacted.get_rows_local(7))
        assert later.count() == 401


class TestCompactEdgeCases:
    def test_compact_empty(self, indexed_session):
        df = indexed_session.create_dataframe([], SCHEMA)
        indexed = create_index(df, "id")
        compacted = indexed.compact()
        assert compacted.count() == 0

    def test_compact_no_duplicates_is_identity_content(self, indexed_session):
        df = indexed_session.create_dataframe([(i, "x") for i in range(20)], SCHEMA)
        indexed = create_index(df, "id")
        compacted = indexed.compact()
        assert sorted(compacted.scan_tuples()) == sorted(indexed.scan_tuples())
