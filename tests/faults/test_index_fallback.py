"""Graceful degradation: index failures fall back to the vanilla plan."""

from __future__ import annotations

import pytest

from repro.core import create_index
from repro.errors import ReproError, RetryExhaustedError
from repro.faults import FaultProfile
from repro.sql.functions import col

SCHEMA = [("id", "long"), ("name", "string"), ("age", "long")]


def make_indexed(session, rows=60):
    df = session.create_dataframe(
        [(i, f"user{i}", 20 + i % 5) for i in range(rows)], SCHEMA
    )
    return create_index(df, "id")


class TestLookupFallback:
    def test_dead_probe_degrades_to_scan(self, make_session):
        session = make_session(
            faults=FaultProfile(seed=5, index_probe_p=1.0),
            task_max_retries=0,
        )
        indexed = make_indexed(session)
        rows = indexed.get_rows(17).collect()
        assert [tuple(r) for r in rows] == [(17, "user17", 22)]
        assert session.ctx.scheduler.metrics.index_fallbacks >= 1

    def test_fallback_disabled_surfaces_the_failure(self, make_session):
        session = make_session(
            faults=FaultProfile(seed=5, index_probe_p=1.0),
            task_max_retries=0,
            index_fallback=False,
        )
        indexed = make_indexed(session)
        with pytest.raises(RetryExhaustedError):
            indexed.get_rows(17).collect()
        assert session.ctx.scheduler.metrics.index_fallbacks == 0

    def test_transient_probe_failure_heals_by_retry_not_fallback(self, make_session):
        # One injected probe death: the task retry absorbs it before the
        # guard ever considers degrading.
        session = make_session(
            faults=FaultProfile(seed=5, index_probe_p=1.0, max_fires_per_site=1),
            task_max_retries=3,
        )
        indexed = make_indexed(session)
        rows = indexed.get_rows(17).collect()
        assert [tuple(r) for r in rows] == [(17, "user17", 22)]
        metrics = session.ctx.scheduler.metrics
        assert metrics.task_retries >= 1
        assert metrics.index_fallbacks == 0

    def test_sql_equality_filter_degrades_transparently(self, make_session):
        session = make_session(
            faults=FaultProfile(seed=5, index_probe_p=1.0),
            task_max_retries=0,
        )
        indexed = make_indexed(session)
        indexed.create_or_replace_temp_view("people")
        rows = session.sql("SELECT name FROM people WHERE id = 23").collect()
        assert [tuple(r) for r in rows] == [("user23",)]
        assert session.ctx.scheduler.metrics.index_fallbacks >= 1


class TestJoinFallback:
    def test_dead_join_probe_degrades_to_vanilla_join(self, make_session):
        session = make_session(
            faults=FaultProfile(seed=5, index_probe_p=1.0),
            task_max_retries=0,
        )
        indexed = make_indexed(session)
        orders = session.create_dataframe(
            [(100 + i, i % 60, float(i)) for i in range(30)],
            [("oid", "long"), ("uid", "long"), ("amount", "double")],
        )
        joined = indexed.join(orders, on=indexed.col("id") == orders.col("uid"))
        assert "IndexedJoin" in joined.explain()
        rows = sorted(tuple(r) for r in joined.collect())
        assert len(rows) == 30
        assert all(r[0] == r[4] for r in rows)  # id == uid on every row
        assert session.ctx.scheduler.metrics.index_fallbacks >= 1

    def test_join_results_match_unguarded_session(self, make_session):
        faulty = make_session(
            faults=FaultProfile(seed=5, index_probe_p=1.0), task_max_retries=0
        )
        clean = make_session()
        results = []
        for session in (faulty, clean):
            indexed = make_indexed(session)
            orders = session.create_dataframe(
                [(100 + i, (i * 7) % 60, float(i)) for i in range(40)],
                [("oid", "long"), ("uid", "long"), ("amount", "double")],
            )
            joined = indexed.join(orders, on=indexed.col("id") == orders.col("uid"))
            results.append(sorted(tuple(r) for r in joined.collect()))
        assert results[0] == results[1]


class TestPlannerResilience:
    def test_broken_injected_strategy_degrades_to_basic(self, make_session):
        session = make_session()

        def broken_strategy(plan, planner):
            raise RuntimeError("buggy extension")

        session.extensions.inject_planner_strategy(broken_strategy)
        session._rebuild_pipeline()
        df = session.create_dataframe([(1, "a"), (2, "b")], SCHEMA[:2])
        assert sorted(tuple(r) for r in df.filter(col("id") == 2).collect()) == [
            (2, "b")
        ]
        assert session.planner.strategy_failures > 0
        assert isinstance(session.planner.last_strategy_error, RuntimeError)

    def test_final_strategy_failures_propagate(self, make_session):
        session = make_session()
        df = session.create_dataframe([(1, "a")], SCHEMA[:2])
        joined = df.join(
            session.create_dataframe([(1, "b")], [("x", "long"), ("y", "string")]),
            on=df.col("id") < 9,  # no equi-keys
            how="left",
        )
        with pytest.raises(ReproError):
            joined.collect()
