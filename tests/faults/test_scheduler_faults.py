"""Scheduler fault tolerance: retries, lineage recomputation, deadlines,
speculation, and cancel-on-failure."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (
    InjectedFault,
    RetryExhaustedError,
    StageTimeoutError,
    TaskError,
)
from repro.faults import FaultProfile


class TestTaskRetry:
    def test_injected_crashes_are_retried_to_success(self, make_ctx):
        ctx = make_ctx(
            faults=FaultProfile(seed=0, task_crash_p=1.0, max_fires_per_site=2),
            task_max_retries=4,
        )
        assert ctx.parallelize(range(100), 4).sum() == 4950
        metrics = ctx.scheduler.metrics
        assert metrics.task_failures == 2
        assert metrics.task_retries == 2

    def test_inline_single_task_stage_retries(self, make_ctx):
        ctx = make_ctx(
            faults=FaultProfile(seed=0, task_crash_p=1.0, max_fires_per_site=1),
            task_max_retries=2,
        )
        assert ctx.parallelize([1, 2, 3], 1).collect() == [1, 2, 3]
        assert ctx.scheduler.metrics.task_retries == 1

    def test_retries_disabled_raises_retry_exhausted(self, make_ctx):
        ctx = make_ctx(
            faults=FaultProfile(seed=0, task_crash_p=1.0),
            task_max_retries=0,
        )
        with pytest.raises(RetryExhaustedError) as exc_info:
            ctx.parallelize(range(10), 2).collect()
        assert exc_info.value.attempts == 1
        assert isinstance(exc_info.value.cause, InjectedFault)

    def test_budget_exhaustion_reports_attempts(self, make_ctx):
        ctx = make_ctx(
            faults=FaultProfile(seed=0, task_crash_p=1.0),
            task_max_retries=2,
        )
        with pytest.raises(RetryExhaustedError) as exc_info:
            ctx.parallelize(range(10), 2).collect()
        assert exc_info.value.attempts == 3  # initial + 2 retries

    def test_deterministic_errors_fail_fast(self, make_ctx):
        ctx = make_ctx(task_max_retries=5)

        def boom(x):
            raise ValueError("kaput")

        with pytest.raises(TaskError):
            ctx.parallelize(range(4), 2).map(boom).collect()
        assert ctx.scheduler.metrics.task_retries == 0

    def test_retry_all_errors_heals_flaky_user_code(self, make_ctx):
        ctx = make_ctx(task_max_retries=5, retry_all_errors=True)
        attempts: list[int] = []

        def flaky(x):
            if len(attempts) < 2:
                attempts.append(1)
                raise ValueError("transient-looking user bug")
            return x

        assert ctx.parallelize([7], 1).map(flaky).collect() == [7]
        assert ctx.scheduler.metrics.task_retries == 2

    def test_engine_usable_after_exhaustion(self, make_ctx):
        ctx = make_ctx(
            faults=FaultProfile(seed=0, task_crash_p=1.0, max_fires_per_site=10),
            task_max_retries=0,
        )
        with pytest.raises(RetryExhaustedError):
            ctx.parallelize(range(10), 2).collect()
        # The cap heals the injector eventually; the engine must survive.
        while True:
            try:
                assert ctx.parallelize(range(10), 2).sum() == 45
                break
            except RetryExhaustedError:
                continue


class TestLineageRecomputation:
    def test_lost_map_output_is_recomputed(self, make_ctx):
        ctx = make_ctx(
            faults=FaultProfile(seed=0, shuffle_loss_p=1.0, max_fires_per_site=1),
            task_max_retries=4,
        )
        pairs = ctx.parallelize([(i % 5, 1) for i in range(100)], 4)
        counts = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert counts == {k: 20 for k in range(5)}
        metrics = ctx.scheduler.metrics
        assert metrics.fetch_failures >= 1
        assert metrics.recomputed_map_stages >= 1
        assert ctx.shuffle_manager.lost_map_outputs == 1

    def test_fetch_failures_do_not_burn_crash_budget(self, make_ctx):
        # A coalesced reduce task reads many map buckets, so a single
        # attempt makes many fetch draws. Those losses are repaired by
        # recomputation and draw on their own budget (4x); charging
        # them against task_max_retries would exhaust a small crash
        # budget in proportion to the coalesce width.
        ctx = make_ctx(
            faults=FaultProfile(seed=3, shuffle_loss_p=1.0, max_fires_per_site=6),
            task_max_retries=2,
            shuffle_partitions=16,
            adaptive_enabled=True,
        )
        pairs = ctx.parallelize([(i % 4, 1) for i in range(200)], 4)
        counts = dict(
            pairs.reduce_by_key(lambda a, b: a + b, num_partitions=16).collect()
        )
        assert counts == {k: 50 for k in range(4)}
        metrics = ctx.scheduler.metrics
        assert metrics.fetch_failures > ctx.config.task_max_retries
        assert metrics.coalesced_shuffles >= 1

    def test_repeated_loss_within_budget(self, make_ctx):
        ctx = make_ctx(
            faults=FaultProfile(seed=2, shuffle_loss_p=1.0, max_fires_per_site=3),
            task_max_retries=8,
        )
        pairs = ctx.parallelize([(i % 3, i) for i in range(60)], 4)
        grouped = sorted(
            (k, sorted(vs)) for k, vs in pairs.group_by_key().collect()
        )
        assert [k for k, _ in grouped] == [0, 1, 2]
        assert sum(len(vs) for _, vs in grouped) == 60
        assert ctx.scheduler.metrics.recomputed_map_stages >= 1


class TestStageDeadline:
    def test_pooled_stage_times_out(self, make_ctx):
        ctx = make_ctx(stage_timeout_s=0.1)

        def slow(x):
            time.sleep(0.5)
            return x

        with pytest.raises(StageTimeoutError, match="stage"):
            ctx.parallelize(range(4), 4).map(slow).collect()
        assert ctx.scheduler.metrics.stage_timeouts == 1

    def test_fast_stage_within_deadline(self, make_ctx):
        ctx = make_ctx(stage_timeout_s=30.0)
        assert ctx.parallelize(range(10), 4).sum() == 45
        assert ctx.scheduler.metrics.stage_timeouts == 0


class TestSpeculation:
    def test_straggler_gets_speculative_copy_that_wins(self, make_ctx):
        ctx = make_ctx(
            executor_threads=4,
            speculation=True,
            speculation_multiplier=2.0,
            speculation_quantile=0.5,
        )
        first_attempt_started = threading.Event()

        def work(x):
            # The first attempt at partition-0's marker value stalls;
            # its speculative copy (and everything else) is instant.
            if x == 0 and not first_attempt_started.is_set():
                first_attempt_started.set()
                time.sleep(0.75)
            return x * 2

        result = sorted(ctx.parallelize(range(4), 4).map(work).collect())
        assert result == [0, 2, 4, 6]
        metrics = ctx.scheduler.metrics
        assert metrics.speculative_tasks >= 1
        assert metrics.speculative_wins >= 1

    def test_no_speculation_when_disabled(self, make_ctx):
        ctx = make_ctx(speculation=False)
        ctx.parallelize(range(8), 4).sum()
        assert ctx.scheduler.metrics.speculative_tasks == 0


class TestCancelOnFailure:
    def test_doomed_stage_cancels_queued_tasks(self, make_ctx):
        ctx = make_ctx(executor_threads=2)
        started: set[int] = set()
        lock = threading.Lock()

        def task(x):
            with lock:
                started.add(x)
            if x == 0:
                raise ValueError("fail fast")
            time.sleep(0.3)
            return x

        with pytest.raises(TaskError):
            ctx.parallelize(range(12), 12).map(task).collect()
        # With 2 executor threads and an immediate failure, most of the
        # 12 queued tasks must have been cancelled, not drained.
        assert len(started) < 12

    def test_engine_usable_after_cancellation(self, make_ctx):
        ctx = make_ctx(executor_threads=2)

        def task(x):
            if x == 0:
                raise ValueError("fail fast")
            time.sleep(0.05)
            return x

        with pytest.raises(TaskError):
            ctx.parallelize(range(8), 8).map(task).collect()
        assert ctx.parallelize(range(8), 4).sum() == 28
