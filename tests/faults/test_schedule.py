"""FaultSchedule: keyed-hash draws must replay bit-identically."""

from __future__ import annotations

import pytest

from repro.faults import (
    SCHEDULE_SITES,
    FaultInjector,
    FaultSchedule,
    gray_failure_schedule,
    keyed_uniform,
)


class TestKeyedUniform:
    def test_deterministic(self):
        a = keyed_uniform(7, "cluster.hang", 3, 0)
        b = keyed_uniform(7, "cluster.hang", 3, 0)
        assert a == b

    def test_in_unit_interval(self):
        for split in range(50):
            u = keyed_uniform(1, "cluster.drop", split, 0)
            assert 0.0 <= u < 1.0

    def test_keys_independent(self):
        draws = {
            keyed_uniform(seed, site, split, attempt)
            for seed in (1, 2)
            for site in ("cluster.hang", "cluster.delay")
            for split in (0, 1)
            for attempt in (0, 1)
        }
        # 16 distinct keys: a collision would mean the hash ignores a
        # component and two logical events share a draw.
        assert len(draws) == 16


class TestFaultSchedule:
    def test_probability_one_fires_on_first_attempt(self):
        schedule = FaultSchedule(seed=1, hang_p=1.0)
        assert schedule.should_fire("cluster.hang", 0, 0)

    def test_probability_zero_never_fires(self):
        schedule = FaultSchedule(seed=1)
        assert not any(
            schedule.should_fire(site, split, 0)
            for site in SCHEDULE_SITES
            for split in range(20)
        )

    def test_attempt_cap_guarantees_retry_progress(self):
        """Retries past the cap never draw: a fenced attempt's redo runs
        clean, so every schedule terminates."""
        schedule = FaultSchedule(seed=1, hang_p=1.0, drop_p=1.0, attempt_cap=1)
        assert schedule.should_fire("cluster.hang", 5, 0)
        assert not schedule.should_fire("cluster.hang", 5, 1)
        assert not schedule.should_fire("cluster.drop", 5, 7)

    def test_seed_changes_schedule(self):
        fire = lambda seed: [
            schedule.should_fire("cluster.delay", split, 0)
            for schedule in (FaultSchedule(seed=seed, delay_p=0.5),)
            for split in range(64)
        ]
        assert fire(1) != fire(2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hang_p": -0.1},
            {"drop_p": 1.5},
            {"delay_s": -1.0},
            {"attempt_cap": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSchedule(seed=1, **kwargs)

    def test_gray_failure_preset_covers_all_sites(self):
        schedule = gray_failure_schedule()
        for site in SCHEDULE_SITES:
            assert schedule.probability(site) > 0


class TestInjectorScheduleSurface:
    def test_no_schedule_never_fires(self):
        injector = FaultInjector(None)
        assert not injector.should_fire_at("cluster.hang", 0, 0)
        assert injector.schedule_trace() == []

    def test_trace_records_fired_draws(self):
        injector = FaultInjector(None, FaultSchedule(seed=3, drop_p=1.0))
        assert injector.should_fire_at("cluster.drop", 2, 0)
        assert injector.should_fire_at("cluster.drop", 1, 0)
        assert not injector.should_fire_at("cluster.drop", 1, 1)
        # Sorted on read: recording order (thread interleaving) must not
        # change what two runs compare.
        assert injector.schedule_trace() == [
            ("cluster.drop", 1, 0),
            ("cluster.drop", 2, 0),
        ]
        assert injector.stats()["cluster.drop"] == 2

    def test_enabled_with_schedule_only(self):
        assert FaultInjector(None, FaultSchedule(seed=1)).enabled
        assert not FaultInjector(None).enabled
