"""End-to-end chaos acceptance: the full ingest + query pipeline under
the standard fault mix must produce results identical to a fault-free
run — the paper's demo workload, made crash-tolerant."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.errors import RetryExhaustedError
from repro.faults import chaos_profile
from repro.sql.session import Session
from repro.streaming import Broker, IndexedIngest, Producer

PEOPLE_SCHEMA = [("id", "long"), ("name", "string"), ("age", "long")]
ORDER_SCHEMA = [("oid", "long"), ("uid", "long"), ("amount", "double")]


def run_pipeline(faults=None, task_max_retries=8, ingest_max_retries=8):
    """Build an indexed table, stream updates into it through a broker
    sharing the session's fault injector, then query it every way the
    demo does. Returns (results, injector fire stats)."""
    config = Config(
        executor_threads=1,  # deterministic task interleaving
        shuffle_partitions=4,
        default_parallelism=2,
        broadcast_threshold=50,
        task_max_retries=task_max_retries,
        ingest_max_retries=ingest_max_retries,
        retry_backoff_s=0.0005,
        ingest_backoff_s=0.0005,
        faults=faults,
    )
    session = Session(config)
    enable_indexing(session)
    try:
        injector = session.ctx.fault_injector
        broker = Broker(injector)
        broker.create_topic("updates", partitions=3)

        people = session.create_dataframe(
            [(i, f"user{i}", 20 + i % 7) for i in range(200)], PEOPLE_SCHEMA
        )
        indexed = create_index(people, "id")

        Producer(broker, "updates").send_all(
            [(1000 + i, f"new{i}", 30 + i % 5) for i in range(120)],
            key_fn=lambda row: row[0],
        )
        ingest = IndexedIngest(broker, "updates", indexed, batch_size=25)
        ingested = ingest.drain()
        current = ingest.current

        results = {
            "ingested": ingested,
            "count": current.count(),
            "lookups": [
                [tuple(r) for r in current.get_rows(key).collect()]
                for key in (3, 42, 1005, 1119, 99999)
            ],
        }
        orders = session.create_dataframe(
            [(500 + i, (i * 13) % 1300, float(i % 17)) for i in range(80)],
            ORDER_SCHEMA,
        )
        joined = current.join(orders, on=current.col("id") == orders.col("uid"))
        results["join"] = sorted(tuple(r) for r in joined.collect())

        current.create_or_replace_temp_view("people")
        results["sql"] = sorted(
            tuple(r)
            for r in session.sql(
                "SELECT age, COUNT(*) FROM people GROUP BY age"
            ).collect()
        )
        return results, injector.stats()
    finally:
        session.stop()


class TestChaosInvariant:
    def test_chaotic_run_equals_fault_free_run(self):
        clean, clean_stats = run_pipeline(faults=None)
        chaotic, chaos_stats = run_pipeline(faults=chaos_profile(seed=1337))
        assert clean_stats == {}
        assert chaos_stats, "chaos profile never injected a fault"
        assert chaotic == clean

    def test_fault_free_run_is_sane(self):
        results, _ = run_pipeline(faults=None)
        assert results["ingested"] == 120
        assert results["count"] == 320
        assert results["lookups"][0] == [(3, "user3", 23)]
        assert results["lookups"][2] == [(1005, "new5", 30)]
        assert results["lookups"][4] == []  # absent key
        # uid = 13*i hits stored ids (0..199, 1000..1119) for
        # i in 0..15 and i in 77..79 → 19 matches.
        assert len(results["join"]) == 19
        assert sum(n for _, n in results["sql"]) == 320

    def test_chaos_with_retries_disabled_fails_loudly(self):
        with pytest.raises(RetryExhaustedError):
            run_pipeline(
                faults=chaos_profile(seed=1337),
                task_max_retries=0,
                ingest_max_retries=0,
            )
