"""Determinism and independence properties of the fault injector."""

from __future__ import annotations

import time

import pytest

from repro.errors import InjectedFault
from repro.faults import NULL_INJECTOR, SITES, FaultInjector, FaultProfile, chaos_profile


def draws(injector: FaultInjector, site: str, n: int = 200) -> list[bool]:
    return [injector.should_fire(site) for _ in range(n)]


class TestDeterminism:
    def test_same_profile_same_sequence(self):
        profile = FaultProfile(seed=11, task_crash_p=0.3, shuffle_loss_p=0.3)
        a = FaultInjector(profile)
        b = FaultInjector(profile)
        for site in ("task", "shuffle.fetch"):
            assert draws(a, site) == draws(b, site)

    def test_different_seeds_diverge(self):
        a = FaultInjector(FaultProfile(seed=1, task_crash_p=0.5))
        b = FaultInjector(FaultProfile(seed=2, task_crash_p=0.5))
        assert draws(a, "task") != draws(b, "task")

    def test_sites_are_independent_streams(self):
        # Enabling (and drawing from) a second site must not perturb the
        # first site's fire pattern.
        both = FaultInjector(FaultProfile(seed=7, task_crash_p=0.4, shuffle_loss_p=0.9))
        only = FaultInjector(FaultProfile(seed=7, task_crash_p=0.4))
        interleaved = []
        for _ in range(200):
            both.should_fire("shuffle.fetch")
            interleaved.append(both.should_fire("task"))
        assert interleaved == draws(only, "task")

    def test_choose_is_deterministic(self):
        profile = FaultProfile(seed=3, shuffle_loss_p=1.0)
        a = FaultInjector(profile)
        b = FaultInjector(profile)
        options = list(range(10))
        assert [a.choose("shuffle.fetch", options) for _ in range(50)] == [
            b.choose("shuffle.fetch", options) for _ in range(50)
        ]


class TestFiring:
    def test_max_fires_caps_exactly(self):
        injector = FaultInjector(FaultProfile(seed=0, task_crash_p=1.0, max_fires_per_site=3))
        assert draws(injector, "task", 10) == [True] * 3 + [False] * 7
        assert injector.stats() == {"task": 3}

    def test_maybe_fail_raises_with_site(self):
        injector = FaultInjector(FaultProfile(seed=0, broker_read_p=1.0))
        with pytest.raises(InjectedFault, match="broker.read"):
            injector.maybe_fail("broker.read")

    def test_zero_probability_never_fires(self):
        injector = FaultInjector(FaultProfile(seed=0, task_crash_p=1.0))
        assert not any(draws(injector, "shuffle.fetch"))
        assert not any(draws(injector, "unknown.site"))

    def test_maybe_delay_sleeps(self):
        injector = FaultInjector(
            FaultProfile(seed=0, task_slow_p=1.0, slow_delay_s=0.02, max_fires_per_site=1)
        )
        start = time.monotonic()
        injector.maybe_delay()
        assert time.monotonic() - start >= 0.015
        # Capped: the second call must not sleep.
        start = time.monotonic()
        injector.maybe_delay()
        assert time.monotonic() - start < 0.015

    def test_approximate_rate(self):
        injector = FaultInjector(FaultProfile(seed=5, task_crash_p=0.25))
        fired = sum(draws(injector, "task", 2000))
        assert 350 < fired < 650  # ~500 expected


class TestDisabled:
    def test_null_injector_is_inert(self):
        assert not NULL_INJECTOR.enabled
        assert not NULL_INJECTOR.should_fire("task")
        NULL_INJECTOR.maybe_fail("task")  # no raise
        NULL_INJECTOR.maybe_delay()
        assert NULL_INJECTOR.stats() == {}

    def test_chaos_profile_mix(self):
        profile = chaos_profile(seed=1337)
        assert profile.task_crash_p == pytest.approx(0.2)
        assert profile.shuffle_loss_p == pytest.approx(0.1)
        assert profile.broker_read_p == pytest.approx(0.1)
        assert profile.broker_commit_p == pytest.approx(0.1)
        for site in SITES:
            assert profile.probability(site) >= 0.0
