"""At-least-once ingestion under broker faults: retries, dedup,
supervised restarts, and MVCC snapshot integrity."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import create_index
from repro.errors import RetryExhaustedError
from repro.faults import FaultInjector, FaultProfile
from repro.streaming import Broker, IndexedIngest, Producer

SCHEMA = [("id", "long"), ("payload", "string")]
BASE_ROWS = 50


def make_world(session, profile=None, partitions=3):
    broker = Broker(FaultInjector(profile) if profile is not None else None)
    broker.create_topic("rows", partitions=partitions)
    base = session.create_dataframe(
        [(i, f"base{i}") for i in range(BASE_ROWS)], SCHEMA
    )
    return broker, create_index(base, "id")


class TestPollRetry:
    def test_drain_heals_broker_read_faults(self, make_session):
        session = make_session()
        profile = FaultProfile(seed=3, broker_read_p=1.0, max_fires_per_site=3)
        broker, indexed = make_world(session, profile)
        Producer(broker, "rows").send_all(
            [(100 + i, "x") for i in range(40)], key_fn=lambda r: r[0]
        )
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=10, max_retries=5)
        assert ingest.drain() == 40
        assert ingest.current.count() == BASE_ROWS + 40
        assert ingest.poll_failures == 3

    def test_poll_retries_exhaust(self, make_session):
        session = make_session()
        profile = FaultProfile(seed=3, broker_read_p=1.0)
        broker, indexed = make_world(session, profile)
        Producer(broker, "rows").send_all([(100, "x")])
        ingest = IndexedIngest(
            broker, "rows", indexed, max_retries=2, backoff_s=0.0005
        )
        with pytest.raises(RetryExhaustedError) as exc_info:
            ingest.step()
        assert exc_info.value.attempts == 3


class TestCommitFailureAndDedup:
    def test_commit_failure_is_tolerated(self, make_session):
        session = make_session()
        profile = FaultProfile(seed=1, broker_commit_p=1.0, max_fires_per_site=1)
        broker, indexed = make_world(session, profile)
        Producer(broker, "rows").send_all(
            [(200 + i, "x") for i in range(10)], key_fn=lambda r: r[0]
        )
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=20)
        assert ingest.step() == 10
        assert ingest.commit_failures == 1
        assert ingest.current.count() == BASE_ROWS + 10

    def test_replay_after_lost_commit_is_deduplicated(self, make_session):
        session = make_session()
        profile = FaultProfile(seed=1, broker_commit_p=1.0, max_fires_per_site=1)
        broker, indexed = make_world(session, profile)
        Producer(broker, "rows").send_all(
            [(200 + i, "x") for i in range(10)], key_fn=lambda r: r[0]
        )
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=20)
        assert ingest.step() == 10  # applied, but the commit was lost
        # Simulate a crash-and-restart of the consumer: it rewinds to
        # the committed offsets (none) and re-polls the same batch.
        ingest.consumer.rollback_to_committed()
        assert ingest.step() == 0
        assert ingest.duplicates_skipped == 10
        assert ingest.current.count() == BASE_ROWS + 10  # no double-apply
        # The healed commit persisted: a fresh consumer resumes past it.
        assert sum(broker.committed_offsets("ingest", "rows").values()) == 10

    def test_fresh_ingest_resumes_from_commit_after_apply(self, make_session):
        session = make_session()
        broker, indexed = make_world(session)
        Producer(broker, "rows").send_all(
            [(300 + i, "x") for i in range(12)], key_fn=lambda r: r[0]
        )
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=20)
        ingest.drain()
        # A second ingest in the same group starts at the committed
        # offsets — nothing to replay, nothing lost.
        resumed = IndexedIngest(broker, "rows", ingest.current, batch_size=20)
        assert resumed.drain() == 0
        assert resumed.current.count() == BASE_ROWS + 12


class TestApplyAtomicity:
    def test_apply_failure_rewinds_and_replays(self, make_session):
        session = make_session()
        broker, indexed = make_world(session)
        Producer(broker, "rows").send_all(
            [(400 + i, "x") for i in range(8)], key_fn=lambda r: r[0]
        )
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=20)
        real_append = indexed.append_rows
        failed_once = []

        def flaky_append(rows):
            if not failed_once:
                failed_once.append(True)
                raise RuntimeError("store write failed")
            return real_append(rows)

        indexed.append_rows = flaky_append  # instance-level shadow
        with pytest.raises(RuntimeError, match="store write failed"):
            ingest.step()
        # Nothing applied, nothing committed: the batch replays whole.
        assert ingest.current.count() == BASE_ROWS
        assert ingest.step() == 8
        assert ingest.current.count() == BASE_ROWS + 8
        assert ingest.duplicates_skipped == 0


class TestSupervisedLoop:
    def test_loop_restarts_after_poll_exhaustion(self, make_session):
        session = make_session()
        profile = FaultProfile(seed=9, broker_read_p=1.0, max_fires_per_site=3)
        broker, indexed = make_world(session, profile)
        Producer(broker, "rows").send_all(
            [(500 + i, "bg") for i in range(30)], key_fn=lambda r: r[0]
        )
        # max_retries=0: every injected read kills the loop body, so
        # recovery happens purely through supervision.
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=10, max_retries=0)
        ingest.start(poll_interval=0.002)
        try:
            deadline = time.time() + 5.0
            while ingest.current.count() < BASE_ROWS + 30 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            ingest.stop()
        assert ingest.current.count() == BASE_ROWS + 30
        assert ingest.loop_restarts >= 1
        assert ingest.rows_applied == 30
        assert isinstance(ingest.last_error, RetryExhaustedError)


class TestMVCCUnderFaults:
    def test_snapshots_stay_fully_readable_during_chaotic_ingest(self, make_session):
        session = make_session()
        profile = FaultProfile(seed=21, broker_read_p=0.2, broker_commit_p=0.2)
        broker, indexed = make_world(session, profile)
        producer = Producer(broker, "rows")
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=16, max_retries=8)
        total_sent = 240
        stop_readers = threading.Event()
        reader_errors: list[BaseException] = []

        def reader():
            last = 0
            while not stop_readers.is_set():
                try:
                    snapshot = ingest.current
                    count = snapshot.count()
                    rows = snapshot.collect()
                    # Monotonic growth and a fully readable version.
                    assert count >= last, "version count went backwards"
                    assert len(rows) == count, "partially visible version"
                    last = count
                except BaseException as exc:  # noqa: BLE001 - report to main thread
                    reader_errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        ingest.start(poll_interval=0.001)
        try:
            producer.send_all(
                [(1000 + i, f"r{i}") for i in range(total_sent)],
                key_fn=lambda r: r[0],
            )
            deadline = time.time() + 10.0
            while (
                ingest.current.count() < BASE_ROWS + total_sent
                and time.time() < deadline
            ):
                time.sleep(0.01)
        finally:
            ingest.stop()
            stop_readers.set()
            for t in threads:
                t.join(timeout=5.0)
        assert not reader_errors, reader_errors[0]
        # Exactly-once application despite at-least-once delivery.
        assert ingest.current.count() == BASE_ROWS + total_sent
        assert ingest.current.lookup_latest(1000 + total_sent - 1) is not None
