"""Fixtures for the chaos suite: contexts/sessions with fault profiles."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import enable_indexing
from repro.engine.context import EngineContext
from repro.sql.session import Session


def fault_config(**overrides) -> Config:
    """Small deterministic config with fast retry backoffs."""
    base = dict(
        executor_threads=2,
        shuffle_partitions=4,
        default_parallelism=2,
        broadcast_threshold=50,
        retry_backoff_s=0.0005,
        ingest_backoff_s=0.0005,
    )
    base.update(overrides)
    return Config(**base)


@pytest.fixture()
def make_ctx():
    """Factory for engine contexts; stops them all on teardown."""
    created: list[EngineContext] = []

    def factory(**overrides) -> EngineContext:
        context = EngineContext(fault_config(**overrides))
        created.append(context)
        return context

    yield factory
    for context in created:
        context.stop()


@pytest.fixture()
def make_session():
    """Factory for sessions (indexing enabled); stops them on teardown."""
    created: list[Session] = []

    def factory(**overrides) -> Session:
        session = Session(fault_config(**overrides))
        enable_indexing(session)
        created.append(session)
        return session

    yield factory
    for session in created:
        session.stop()
