"""The fault-site registry is the single source of truth (FS001/FS002).

The circuit-breaker guard labels predated their registration: the
labels worked, but nothing cross-checked them, so a typo'd label would
have silently split breaker state. They are registered now, and the
static analyzer (``repro.analysis`` FS rules) keeps every site literal
in the tree honest against this tuple.
"""

from repro.faults.injector import SITES


def test_breaker_guard_labels_are_registered():
    assert "index.fallback" in SITES
    assert "wal.fsync" in SITES
    assert "shuffle.fetch" in SITES  # shared: fetch faults + breaker guard


def test_sites_are_unique():
    assert len(SITES) == len(set(SITES))


def test_injector_seeds_one_stream_per_registered_site():
    from repro.faults.injector import FaultInjector, FaultProfile

    injector = FaultInjector(FaultProfile(seed=7))
    assert set(injector._rngs) == set(SITES)
