"""Chaos suite with runtime sanitizers armed.

The fault-tolerance machinery retries tasks, recomputes lineage, and
replays ingest batches. None of that may ever mutate sealed MVCC state:
a retry that re-appended into a sealed batch or folded rows into a
snapshot-shared zone map would corrupt every snapshot taken before the
fault. With ``sanitizers_enabled=True`` such a write raises
``SanitizerError`` (which is deliberately *not* a ``ReproError``, so no
retry/fallback layer can absorb it) — a run that completes with correct
results therefore proves recovery never touched sealed state.
"""

from __future__ import annotations

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.faults import chaos_profile
from repro.sql.session import Session
from repro.streaming import Broker, IndexedIngest, Producer

SCHEMA = [("id", "long"), ("name", "string"), ("age", "long")]


def run_sanitized_pipeline(faults):
    config = Config(
        executor_threads=1,
        shuffle_partitions=4,
        default_parallelism=2,
        broadcast_threshold=50,
        task_max_retries=8,
        ingest_max_retries=8,
        retry_backoff_s=0.0005,
        ingest_backoff_s=0.0005,
        batch_size_bytes=2048,  # small batches: many seal boundaries
        max_row_bytes=256,
        sanitizers_enabled=True,
        faults=faults,
    )
    session = Session(config)
    enable_indexing(session)
    try:
        injector = session.ctx.fault_injector
        broker = Broker(injector)
        broker.create_topic("updates", partitions=3)

        people = session.create_dataframe(
            [(i, f"user{i}", 20 + i % 7) for i in range(200)], SCHEMA
        )
        indexed = create_index(people, "id")
        snapshots = [indexed]

        Producer(broker, "updates").send_all(
            [(1000 + i, f"new{i}", 30 + i % 5) for i in range(120)],
            key_fn=lambda row: row[0],
        )
        ingest = IndexedIngest(
            broker, "updates", indexed, batch_size=25,
            on_batch=lambda df, _rows: snapshots.append(df),
        )
        ingested = ingest.drain()
        current = ingest.current

        results = {
            "ingested": ingested,
            "count": current.count(),
            "lookups": [
                [tuple(r) for r in current.get_rows(key).collect()]
                for key in (3, 42, 1005, 1119, 99999)
            ],
            # Old versions must still read clean after every retry storm.
            "first_version_count": snapshots[0].count(),
        }

        # Every partition's seals must still verify.
        for store_version in current.store.partitions:
            store_version.batches.verify_seals()
        return results, injector.stats()
    finally:
        session.stop()


def test_chaos_run_with_sanitizers_matches_clean_run():
    clean, clean_stats = run_sanitized_pipeline(faults=None)
    chaotic, chaos_stats = run_sanitized_pipeline(faults=chaos_profile(seed=1337))
    assert clean_stats == {}
    assert chaos_stats, "chaos profile never injected a fault"
    # No SanitizerError surfaced (the runs completed) and results match.
    assert chaotic == clean
    assert clean["ingested"] == 120
    assert clean["count"] == 320
    assert clean["first_version_count"] == 200
