"""Smoke tests: the shipped examples must run end to end."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "quickstart done." in out
    assert "IndexLookup" in out
    assert "IndexedJoin" in out


@pytest.mark.slow
def test_snb_benchmark_runs_small():
    out = run_example("snb_benchmark.py", "0.2", timeout=400)
    assert "Figure 2" in out and "Figure 3" in out
    assert "max speedup" in out


@pytest.mark.slow
def test_examples_exist_and_compile():
    for name in (
        "quickstart.py",
        "graph_monitoring.py",
        "threat_detection.py",
        "snb_benchmark.py",
        "social_graph_analytics.py",
    ):
        path = os.path.join(EXAMPLES, name)
        assert os.path.exists(path)
        source = open(path).read()
        compile(source, path, "exec")  # syntax check, no execution
