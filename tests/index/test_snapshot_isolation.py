"""Snapshot visibility: bitmap readers never see (or block on) writers.

A handle captured at MVCC version v answers bitmap queries from the
first ``row_count(v)`` bit positions only — appends land at higher
positions and stay invisible until a new version is captured.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import create_index
from repro.sql.functions import col

SCHEMA = [("id", "long"), ("city", "string"), ("age", "long")]


CITIES = ["nl", "de", "us", "fr", "uk", "jp"]


def make_rows(start: int, n: int, city: str | None = None) -> list[tuple]:
    """Cities interleave (selective predicates, no zone pruning) unless
    a batch is pinned to one city."""
    return [
        (
            start + i,
            city if city is not None else CITIES[(start + i) % len(CITIES)],
            20 + (start + i) % 5,
        )
        for i in range(n)
    ]


@pytest.fixture()
def indexed(make_bitmap_session):
    session = make_bitmap_session()
    df = session.create_dataframe(make_rows(0, 120), SCHEMA)
    return create_index(df, "id").create_index("city").create_index("age")


def city_rows(handle, city: str) -> list[tuple]:
    return sorted(handle.to_df().filter(col("city") == city).collect_tuples())


class TestVersionedReads:
    def test_old_handle_pinned_while_appends_land(self, indexed):
        before = city_rows(indexed, "nl")
        assert len(before) == 20
        newer = indexed.append_rows(make_rows(1000, 40, city="nl"))
        # The old handle replans against its pinned version: same rows,
        # still through the bitmap path.
        assert city_rows(indexed, "nl") == before
        assert "bitmap_chosen=True" in (
            indexed.to_df().filter(col("city") == "nl").explain()
        )
        assert len(city_rows(newer, "nl")) == 60

    def test_selective_predicate_sees_exactly_its_version(self, indexed):
        newer = indexed.append_rows(make_rows(2000, 10, city="xx"))
        assert city_rows(indexed, "xx") == []
        assert len(city_rows(newer, "xx")) == 10


class TestConcurrentAppender:
    def test_reader_stable_under_live_appends(self, indexed):
        """Readers on a captured version repeat their exact answer while
        an appender mutates the store — no blocking, no phantom rows."""
        reference = city_rows(indexed, "nl")
        errors: list[BaseException] = []
        handle_box = [indexed]

        def appender() -> None:
            try:
                for batch in range(30):
                    handle_box[0] = handle_box[0].append_rows(
                        make_rows(10_000 + batch * 100, 25, city="nl")
                    )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=appender)
        thread.start()
        try:
            for _ in range(10):
                assert city_rows(indexed, "nl") == reference
        finally:
            thread.join(timeout=30.0)
        assert not errors
        assert not thread.is_alive()
        # A fresh capture after the appender finishes sees everything.
        final = handle_box[0]
        assert len(city_rows(final, "nl")) == 20 + 25 * 30

    def test_bitmap_and_under_live_appends(self, indexed):
        reference = sorted(
            indexed.to_df()
            .filter((col("city") == "nl") & (col("age") == 21))
            .collect_tuples()
        )
        assert reference
        done = threading.Event()
        errors: list[BaseException] = []

        def appender() -> None:
            try:
                handle = indexed
                for batch in range(20):
                    handle = handle.append_rows(
                        make_rows(50_000 + batch * 100, 30, city="nl")
                    )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=appender)
        thread.start()
        try:
            while not done.is_set():
                got = sorted(
                    indexed.to_df()
                    .filter((col("city") == "nl") & (col("age") == 21))
                    .collect_tuples()
                )
                assert got == reference
        finally:
            thread.join(timeout=30.0)
        assert not errors
