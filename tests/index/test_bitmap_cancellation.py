"""Cancelled queries stop bitmap fetches instead of materialising them.

The bitmap fetch loop walks every set bit of a selection without
crossing a chunk boundary; it now polls the query context every 1024
rows, so a cancelled or deadline-expired query unwinds mid-fetch.
"""

import pytest

from repro.core import create_index
from repro.errors import QueryCancelledError
from repro.serving.context import QueryContext, active
from repro.sql.functions import col

SCHEMA = [("id", "long"), ("city", "string"), ("age", "long")]


def make_indexed(session):
    rows = [(i, "ab"[i % 2], 20 + i % 5) for i in range(200)]
    df = session.create_dataframe(rows, SCHEMA)
    return create_index(df, "id").create_index("age")


def test_cancelled_query_aborts_bitmap_scan(make_bitmap_session):
    session = make_bitmap_session()
    indexed = make_indexed(session)
    query = QueryContext.create()
    query.cancel("user abort")
    with active(query):
        with pytest.raises(QueryCancelledError):
            indexed.to_df().filter(col("age") == 21).collect_tuples()


def test_live_query_scans_normally(make_bitmap_session):
    session = make_bitmap_session()
    indexed = make_indexed(session)
    query = QueryContext.create()
    with active(query):
        rows = indexed.to_df().filter(col("age") == 21).collect_tuples()
    assert rows and all(age == 21 for _id, _city, age in rows)
