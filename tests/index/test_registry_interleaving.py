"""Deterministic-interleaving smoke test: build-once under contention.

Two sessions race ``create_index`` on the same column while the
interleaver parks them at every instrumented cTrie atomic (the build's
snapshot reads) and releases them in a seeded order. Whatever the
schedule, the registry must build the arrangement exactly once and
hand the loser the winner's copy — the PR 8 build-once contract, here
exercised under schedules wall-clock scheduling almost never produces.
"""

import pytest

from repro.analysis.interleave import DeterministicInterleaver
from repro.core import create_index
from repro.index.registry import bitmap_registry

SCHEMA = [("id", "long"), ("city", "string"), ("age", "long")]


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_concurrent_create_index_builds_once(make_bitmap_session, seed):
    session = make_bitmap_session()
    rows = [(i, "abc"[i % 3], 20 + i % 7) for i in range(120)]
    indexed = create_index(session.create_dataframe(rows, SCHEMA), "id")
    handles = [None, None]

    def caller(slot):
        def thunk():
            handles[slot] = indexed.create_index("city")

        return thunk

    interleaver = DeterministicInterleaver(seed=seed)
    interleaver.run(caller(0), caller(1))

    assert handles[0] is not None and handles[1] is not None
    assert handles[0].store is handles[1].store
    snap = bitmap_registry().snapshot()
    assert (snap["builds"], snap["shares"], snap["arrangements"]) == (1, 1, 1)
    assert interleaver.steps > 0  # the two callers actually contended
