"""Bitmap state survives checkpoint + WAL recovery (PR 5 machinery)."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.sql.functions import col
from repro.sql.session import Session

SCHEMA = [("id", "long"), ("city", "string"), ("age", "long")]
CITIES = ["nl", "de", "us", "fr", "uk", "jp"]


def make_rows(start: int, n: int) -> list[tuple]:
    return [
        (start + i, CITIES[(start + i) % len(CITIES)], 20 + (start + i) % 5)
        for i in range(n)
    ]


def durable_session(state_dir) -> Session:
    session = Session(
        Config(
            executor_threads=1,
            shuffle_partitions=4,
            default_parallelism=1,
            batch_size_bytes=64 * 1024,
            durability_enabled=True,
            durability_dir=str(state_dir),
        )
    )
    enable_indexing(session)
    return session


@pytest.fixture()
def reference_rows(tmp_path):
    """Build a durable bitmap-indexed store: 120 checkpointed rows plus
    a 30-row WAL-only tail. Returns the expected city='de' rows."""
    session = durable_session(tmp_path)
    try:
        df = session.create_dataframe(make_rows(0, 120), SCHEMA)
        indexed = create_index(df, "id", durable_name="people", kind="bitmap")
        indexed = indexed.create_index("city")
        session.durability.store("people").checkpoint()
        indexed = indexed.append_rows(make_rows(1000, 30))
        expected = sorted(
            indexed.to_df().filter(col("city") == "de").collect_tuples()
        )
    finally:
        session.stop()
    assert expected
    return expected


class TestRecovery:
    def test_checkpoint_restores_attached_bitmaps(self, tmp_path, reference_rows):
        session = durable_session(tmp_path)
        try:
            empty = session.create_dataframe([], SCHEMA)
            recovered = create_index(
                empty, "id", durable_name="people", kind="bitmap"
            )
            city_ordinal = 1
            # The checkpoint image carried the per-partition bitmap
            # state: the indexes are attached before any re-acquire.
            assert any(
                partition.bitmap_index(city_ordinal) is not None
                for partition in recovered.store.partitions
            )
            handle = recovered.create_index("city")
            query = handle.to_df().filter(col("city") == "de")
            assert "bitmap_chosen=True" in query.explain()
            assert sorted(query.collect_tuples()) == reference_rows
        finally:
            session.stop()

    def test_wal_tail_rows_are_indexed_after_replay(self, tmp_path, reference_rows):
        session = durable_session(tmp_path)
        try:
            empty = session.create_dataframe([], SCHEMA)
            recovered = create_index(
                empty, "id", durable_name="people", kind="bitmap"
            ).create_index("city")
            # Rows appended after the checkpoint (replayed from the
            # WAL) must be visible through the bitmap path too.
            tail = sorted(
                recovered.to_df()
                .filter(col("city") == CITIES[1004 % len(CITIES)])
                .collect_tuples()
            )
            assert any(row[0] >= 1000 for row in tail)
            # And appends after recovery keep indexing.
            grown = recovered.append_rows([(5000, "de", 33)])
            rows = sorted(
                grown.to_df().filter(col("city") == "de").collect_tuples()
            )
            assert (5000, "de", 33) in rows
            assert len(rows) == len(reference_rows) + 1
        finally:
            session.stop()
