"""Chaos: the bitmap fetch path shares the ``index.probe`` fault site.

Across 20 seeds, injected probe deaths either retry away or degrade
through GuardedIndexExec to the vanilla scan — and whatever path runs,
the rows are exactly the fault-free answer.
"""

from __future__ import annotations

import pytest

from repro.core import create_index
from repro.faults import FaultProfile
from repro.sql.functions import col
from repro.sql.session import Session
from tests.conftest import small_config

SCHEMA = [("id", "long"), ("city", "string"), ("age", "long")]
CITIES = ["nl", "de", "us", "fr", "uk", "jp"]
SEEDS = range(20)


def make_rows(n: int = 120) -> list[tuple]:
    return [(i, CITIES[i % len(CITIES)], 20 + i % 5) for i in range(n)]


def load(session: Session):
    df = session.create_dataframe(make_rows(), SCHEMA)
    return create_index(df, "id").create_index("city").create_index("age")


def query_rows(indexed) -> list[list[tuple]]:
    base = indexed.to_df()
    queries = (
        base.filter(col("city") == "de"),
        base.filter((col("city") == "de") & (col("age") == 21)),
        base.filter((col("city") == "de") | (col("city") == "jp")),
    )
    return [sorted(q.collect_tuples()) for q in queries]


@pytest.fixture(scope="module")
def reference(request):
    from repro.core import enable_indexing

    session = Session(small_config())
    enable_indexing(session)
    request.addfinalizer(session.stop)
    return query_rows(load(session))


class TestSeededProbeChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_chaotic_run_equals_fault_free_run(
        self, make_bitmap_session, reference, seed
    ):
        session = make_bitmap_session(
            faults=FaultProfile(seed=seed, index_probe_p=0.25),
            task_max_retries=2,
            retry_backoff_s=0.0005,
        )
        assert query_rows(load(session)) == reference


class TestGuaranteedFallback:
    def test_dead_probe_degrades_to_scan(self, make_bitmap_session, reference):
        session = make_bitmap_session(
            faults=FaultProfile(seed=5, index_probe_p=1.0),
            task_max_retries=0,
        )
        indexed = load(session)
        # The planner still chooses the bitmap plan (planning does not
        # probe); execution dies and the guard swaps in the scan.
        assert "bitmap_chosen=True" in (
            indexed.to_df().filter(col("city") == "de").explain()
        )
        assert query_rows(indexed) == reference
        # The OR query is cost-rejected (1/3 of the rows), so exactly
        # the two chosen bitmap plans degrade.
        assert session.ctx.scheduler.metrics.index_fallbacks >= 2

    def test_fallback_disabled_surfaces_the_failure(self, make_bitmap_session):
        from repro.errors import RetryExhaustedError

        session = make_bitmap_session(
            faults=FaultProfile(seed=5, index_probe_p=1.0),
            task_max_retries=0,
            index_fallback=False,
        )
        indexed = load(session)
        with pytest.raises(RetryExhaustedError):
            indexed.to_df().filter(col("city") == "de").collect_tuples()
