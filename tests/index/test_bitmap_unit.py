"""PartitionBitmapIndex / BitmapColumnView semantics in isolation."""

from __future__ import annotations

from array import array

from repro.index.bitmap import (
    BitmapColumnView,
    PartitionBitmapIndex,
    evaluate_program,
    iter_bits,
    program_ordinals,
)
from repro.stats import PruningPredicate


def indexed_rows(values, ordinal=0, **kwargs) -> PartitionBitmapIndex:
    index = PartitionBitmapIndex(ordinal, **kwargs)
    for position, value in enumerate(values):
        row = ("pad",) * ordinal + (value,)
        index.record(row, pointer=1000 + position)
    return index


def positions(bits) -> list[int]:
    return list(iter_bits(bits))


class TestIterBits:
    def test_ascending_append_order(self):
        assert positions(0b1011001) == [0, 3, 4, 6]

    def test_empty(self):
        assert positions(0) == []


class TestRecordAndMerge:
    def test_view_sees_rows_still_in_the_delta(self):
        # Threshold far above the row count: nothing auto-merged, the
        # snapshot-forced merge must still cover every row.
        index = indexed_rows(["a", "b", "a"], merge_threshold=512)
        view = index.snapshot_view()
        assert positions(view.eval_atom(PruningPredicate(0, "eq", ("a",)))) == [0, 2]
        assert positions(view.eval_atom(PruningPredicate(0, "eq", ("b",)))) == [1]

    def test_threshold_folds_delta_incrementally(self):
        index = indexed_rows(list("abab") * 5, merge_threshold=4)
        stats = index.memory_stats()
        assert stats["rows"] == 20
        assert stats["distinct_values"] == 2
        view = index.snapshot_view()
        assert view.eval_atom(PruningPredicate(0, "eq", ("a",))).bit_count() == 10

    def test_pointers_follow_append_order(self):
        index = indexed_rows(["x", "y", "x"])
        view = index.snapshot_view()
        assert [view.pointer_at(p) for p in range(3)] == [1000, 1001, 1002]


class TestSnapshotVisibility:
    def test_later_appends_invisible_to_captured_view(self):
        index = indexed_rows(["a", "b", "a"])
        view = index.snapshot_view()
        assert view.row_count == 3
        # Writer keeps appending "a" rows; the captured view must not
        # grow, even though it shares the pointers array by reference.
        for position in range(3, 40):
            index.record(("a",), pointer=1000 + position)
        assert index.rows == 40
        assert view.row_count == 3
        assert positions(view.eval_atom(PruningPredicate(0, "eq", ("a",)))) == [0, 2]
        assert view.eval_atom(PruningPredicate(0, "notnull")) == 0b111

    def test_fresh_view_sees_the_appends(self):
        index = indexed_rows(["a"])
        old = index.snapshot_view()
        index.record(("a",), pointer=1001)
        new = index.snapshot_view()
        assert (old.row_count, new.row_count) == (1, 2)
        assert new.eval_atom(PruningPredicate(0, "eq", ("a",))).bit_count() == 2


class TestEvalAtom:
    def view(self, values):
        return indexed_rows(values).snapshot_view()

    def test_eq_in_and_nulls(self):
        view = self.view(["a", None, "b", "a"])
        assert positions(view.eval_atom(PruningPredicate(0, "eq", ("a",)))) == [0, 3]
        assert positions(
            view.eval_atom(PruningPredicate(0, "in", ("a", "b")))
        ) == [0, 2, 3]
        assert positions(view.eval_atom(PruningPredicate(0, "isnull"))) == [1]
        assert positions(view.eval_atom(PruningPredicate(0, "notnull"))) == [0, 2, 3]

    def test_missing_value_is_empty_not_none(self):
        view = self.view(["a"])
        assert view.eval_atom(PruningPredicate(0, "eq", ("zzz",))) == 0

    def test_ranges_skip_nulls(self):
        view = self.view([10, None, 20, 30])
        assert positions(view.eval_atom(PruningPredicate(0, "lt", (25,)))) == [0, 2]
        assert positions(view.eval_atom(PruningPredicate(0, "le", (20,)))) == [0, 2]
        assert positions(view.eval_atom(PruningPredicate(0, "gt", (10,)))) == [2, 3]
        assert positions(view.eval_atom(PruningPredicate(0, "ge", (30,)))) == [3]

    def test_uncomparable_literal_returns_none(self):
        # A string literal against long storage: the atom must refuse
        # (None) so the planner rejects the whole bitmap plan instead
        # of silently dropping rows.
        view = self.view([10, 20])
        assert view.eval_atom(PruningPredicate(0, "lt", ("x",))) is None


class TestEvaluateProgram:
    def make_views(self):
        city = indexed_rows(["nl", "de", "nl", "us"], ordinal=1)
        age = indexed_rows([30, 30, 40, 30], ordinal=2)
        return {1: city.snapshot_view(), 2: age.snapshot_view()}

    def test_and_or_composition(self):
        views = self.make_views()
        program = (
            "and",
            [
                (
                    "or",
                    [
                        ("pred", PruningPredicate(1, "eq", ("nl",))),
                        ("pred", PruningPredicate(1, "eq", ("us",))),
                    ],
                ),
                ("pred", PruningPredicate(2, "eq", (30,))),
            ],
        )
        assert positions(evaluate_program(program, views)) == [0, 3]
        assert program_ordinals(program) == frozenset((1, 2))

    def test_missing_view_poisons_the_whole_program(self):
        views = self.make_views()
        program = (
            "and",
            [
                ("pred", PruningPredicate(1, "eq", ("nl",))),
                ("pred", PruningPredicate(9, "eq", (1,))),
            ],
        )
        assert evaluate_program(program, views) is None

    def test_unsupported_atom_poisons_the_whole_program(self):
        views = self.make_views()
        program = (
            "or",
            [
                ("pred", PruningPredicate(1, "eq", ("nl",))),
                ("pred", PruningPredicate(2, "lt", ("not-a-number",))),
            ],
        )
        assert evaluate_program(program, views) is None


class TestDurabilityState:
    def test_export_import_round_trip(self):
        index = indexed_rows(["a", "b", None, "a"], ordinal=3)
        restored = PartitionBitmapIndex.from_state(index.export_state())
        view, original = restored.snapshot_view(), index.snapshot_view()
        assert view.row_count == original.row_count
        assert view.values == original.values
        assert array("Q", view.pointers) == array("Q", original.pointers)
        # The restored index keeps indexing appended rows.
        restored.record(("ignored", "ignored", "ignored", "b"), pointer=2000)
        assert positions(
            restored.snapshot_view().eval_atom(PruningPredicate(3, "eq", ("b",)))
        ) == [1, 4]
