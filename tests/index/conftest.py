"""Fixtures for the bitmap-index suite.

The sharing registry is process-wide by design (that is the sharing),
so every test starts from cleared counters to keep builds/shares
assertions deterministic regardless of test order.
"""

from __future__ import annotations

import pytest

from repro.core import enable_indexing
from repro.index.registry import bitmap_registry
from repro.sql.session import Session
from tests.conftest import small_config


@pytest.fixture(autouse=True)
def clean_registry():
    bitmap_registry().clear()
    yield
    bitmap_registry().clear()


@pytest.fixture()
def make_bitmap_session():
    """Factory for sessions (indexing enabled); stops them on teardown."""
    created: list[Session] = []

    def factory(**overrides) -> Session:
        session = Session(small_config(**overrides))
        enable_indexing(session)
        created.append(session)
        return session

    yield factory
    for session in created:
        session.stop()
