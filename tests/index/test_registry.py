"""The shared-arrangement registry: build once, share by reference."""

from __future__ import annotations

import threading

from repro.core import create_index
from repro.index.registry import bitmap_registry
from repro.sql.functions import col

SCHEMA = [("id", "long"), ("city", "string"), ("age", "long")]


class TestAcquire:
    def test_first_builds_then_shares(self):
        registry = bitmap_registry()
        store = object()
        built: list[int] = []

        def builder():
            built.append(1)
            return ["arrangement"]

        first = registry.acquire(store, 1, builder)
        second = registry.acquire(store, 1, builder)
        assert first is second
        assert built == [1]
        snap = registry.snapshot()
        assert (snap["builds"], snap["shares"], snap["arrangements"]) == (1, 1, 1)

    def test_distinct_columns_are_distinct_arrangements(self):
        registry = bitmap_registry()
        store = object()
        registry.acquire(store, 1, lambda: ["a"])
        registry.acquire(store, 2, lambda: ["b"])
        snap = registry.snapshot()
        assert (snap["builds"], snap["arrangements"]) == (2, 2)

    def test_release_forgets_the_store(self):
        registry = bitmap_registry()
        store = object()
        registry.acquire(store, 1, lambda: ["a"])
        registry.release(store)
        assert registry.snapshot()["arrangements"] == 0
        registry.acquire(store, 1, lambda: ["rebuilt"])
        assert registry.snapshot()["builds"] == 2

    def test_concurrent_acquires_build_exactly_once(self):
        registry = bitmap_registry()
        store = object()
        consumers = 8
        barrier = threading.Barrier(consumers)
        built: list[int] = []
        results: list = [None] * consumers

        def consumer(slot: int) -> None:
            barrier.wait()
            results[slot] = registry.acquire(
                store, 3, lambda: built.append(1) or ["arr"]
            )

        threads = [
            threading.Thread(target=consumer, args=(slot,))
            for slot in range(consumers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert built == [1]
        assert all(r is results[0] for r in results)
        snap = registry.snapshot()
        assert (snap["builds"], snap["shares"]) == (1, consumers - 1)


class TestEngineIntegration:
    def make_indexed(self, session):
        rows = [(i, "ab"[i % 2], 20 + i % 5) for i in range(80)]
        df = session.create_dataframe(rows, SCHEMA)
        return create_index(df, "id")

    def test_create_index_twice_shares_one_arrangement(self, make_bitmap_session):
        session = make_bitmap_session()
        indexed = self.make_indexed(session)
        indexed.create_index("city")
        indexed.create_index("city")
        snap = bitmap_registry().snapshot()
        assert (snap["builds"], snap["shares"]) == (1, 1)

    def test_two_handles_of_one_store_share(self, make_bitmap_session):
        session = make_bitmap_session()
        indexed = self.make_indexed(session)
        h1 = indexed.create_index("age")
        h2 = indexed.create_index("age")
        assert h1.store is h2.store
        snap = bitmap_registry().snapshot()
        assert (snap["builds"], snap["shares"]) == (1, 1)

    def test_planner_decisions_count_as_hits(self, make_bitmap_session):
        session = make_bitmap_session()
        indexed = self.make_indexed(session).create_index("age")
        before = bitmap_registry().snapshot()["hits"]
        rows = indexed.to_df().filter(col("age") == 21).collect_tuples()
        assert rows
        assert bitmap_registry().snapshot()["hits"] > before

    def test_distinct_stores_do_not_alias(self, make_bitmap_session):
        session = make_bitmap_session()
        a = self.make_indexed(session)
        b = self.make_indexed(session)
        a.create_index("city")
        b.create_index("city")
        snap = bitmap_registry().snapshot()
        assert (snap["builds"], snap["shares"], snap["arrangements"]) == (2, 0, 2)
