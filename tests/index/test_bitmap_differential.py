"""Bitmap-vs-scan differential: bit-identical results, visible decisions.

The same SNB person table is loaded into a bitmap-enabled and a
bitmap-disabled session; seeded random AND/OR predicates over the
indexed columns (plus uncovered residuals) must return exactly the same
rows on both, and every planner decision must leave its EXPLAIN marker.
"""

from __future__ import annotations

import random

import pytest

from repro.core import create_index
from repro.snb import generate
from repro.snb.schema import PERSON_SCHEMA
from repro.sql.functions import col

#: (kind, column) atom specs realized against either session's frame.
ATOM_KINDS = ("gender_eq", "browser_eq", "city_eq", "city_le", "city_ge", "city_in")
SEEDS = range(20)


@pytest.fixture(scope="module")
def persons():
    return generate(scale_factor=0.05, seed=11).persons


@pytest.fixture()
def frames(make_bitmap_session, persons):
    """(bitmap-enabled DataFrame, bitmap-disabled DataFrame)."""
    on = make_bitmap_session()
    off = make_bitmap_session(bitmap_indexes_enabled=False)
    frames = []
    for session in (on, off):
        df = session.create_dataframe(persons, PERSON_SCHEMA, validate=False)
        indexed = (
            create_index(df, "id")
            .create_index("gender")
            .create_index("browser_used")
            .create_index("city_id")
        )
        frames.append(indexed.to_df())
    return tuple(frames)


def random_spec(rng: random.Random, persons) -> list:
    """A seeded predicate spec: [atom, op, atom, op, atom ...]."""
    sample = rng.choice(persons)
    city = sample[8]
    atoms = {
        "gender_eq": ("gender", "eq", sample[3]),
        "browser_eq": ("browser_used", "eq", sample[7]),
        "city_eq": ("city_id", "eq", city),
        "city_le": ("city_id", "le", city),
        "city_ge": ("city_id", "ge", city),
        "city_in": ("city_id", "in", (city, city + 1, city + 7)),
    }
    spec: list = [atoms[rng.choice(ATOM_KINDS)]]
    for _ in range(rng.randint(1, 3)):
        sample = rng.choice(persons)
        city = sample[8]
        atoms["gender_eq"] = ("gender", "eq", sample[3])
        atoms["city_eq"] = ("city_id", "eq", city)
        spec.append(rng.choice(("and", "or")))
        spec.append(atoms[rng.choice(ATOM_KINDS)])
    return spec


def realize(spec: list):
    def atom(entry):
        name, op, value = entry
        column = col(name)
        if op == "eq":
            return column == value
        if op == "le":
            return column <= value
        if op == "ge":
            return column >= value
        return column.isin(*value)

    out = atom(spec[0])
    for i in range(1, len(spec), 2):
        right = atom(spec[i + 1])
        out = (out & right) if spec[i] == "and" else (out | right)
    return out


def rows_of(df, predicate) -> list[tuple]:
    return sorted(df.filter(predicate).collect_tuples())


class TestSeededDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_and_or_predicates_bit_identical(self, frames, persons, seed):
        bitmap_df, scan_df = frames
        spec = random_spec(random.Random(seed), persons)
        assert rows_of(bitmap_df, realize(spec)) == rows_of(scan_df, realize(spec))

    def test_residual_conjunct_still_filters(self, frames, persons):
        bitmap_df, scan_df = frames
        target = persons[len(persons) // 2]
        # first_name is not indexed: it must ride as a residual filter
        # above the bitmap fetch, not be dropped.
        predicate = (col("gender") == target[3]) & (col("first_name") == target[1])
        got = rows_of(bitmap_df, predicate)
        assert got == rows_of(scan_df, predicate)
        assert all(row[1] == target[1] and row[3] == target[3] for row in got)
        assert got  # the sampled person matches itself


def rare_value(persons, ordinal):
    """The least common value of a column — selective enough that the
    cost model (selected rows x fetch cost < scan rival) always picks
    the bitmap plan on this deterministic dataset."""
    counts: dict = {}
    for row in persons:
        counts[row[ordinal]] = counts.get(row[ordinal], 0) + 1
    return min(counts, key=counts.get)


class TestExplainMarkers:
    def physical_of(self, df, predicate) -> str:
        return df.filter(predicate).explain().split("== Physical ==")[1]

    def test_single_equality_marks_bitmap_chosen(self, frames, persons):
        bitmap_df, _ = frames
        plan = self.physical_of(
            bitmap_df, col("browser_used") == rare_value(persons, 7)
        )
        assert "bitmap_chosen=True" in plan

    def test_conjunction_marks_bitmap_and(self, frames, persons):
        bitmap_df, _ = frames
        plan = self.physical_of(
            bitmap_df,
            (col("browser_used") == rare_value(persons, 7))
            & (col("city_id") == rare_value(persons, 8)),
        )
        assert "bitmap_and=True" in plan

    def test_non_selective_predicate_marks_index_rejected(self, frames):
        bitmap_df, _ = frames
        metrics = bitmap_df.session.ctx.pruning_metrics
        before = metrics.snapshot()["index_rejected"]
        # Nearly every row has a non-negative city: fetching them one
        # by one costs more than the scan, so the planner must fall
        # back — and say so in both EXPLAIN and the counters.
        plan = self.physical_of(bitmap_df, col("city_id") >= 0)
        assert "index_rejected=cost=" in plan
        assert metrics.snapshot()["index_rejected"] == before + 1

    def test_disabled_session_has_no_bitmap_markers(self, frames, persons):
        _, scan_df = frames
        plan = self.physical_of(
            scan_df,
            (col("browser_used") == rare_value(persons, 7))
            & (col("city_id") == rare_value(persons, 8)),
        )
        assert "bitmap" not in plan.lower()
        assert "index_rejected" not in plan
        assert "IndexedScan" in plan
