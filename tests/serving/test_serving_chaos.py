"""Closed-loop chaos over the serving layer: 20+ seeds, no hangs.

Each seed runs a small mixed workload (lookups, aggregations, appends)
through ``Session.serve`` from several threads while
:func:`~repro.faults.serving_chaos_profile` injects spurious admission
sheds, post-grant cancellations, failed breaker probes, task crashes,
shuffle losses, and index-probe deaths. The acceptance bar from the
issue: **no query ever hangs a worker slot** — every submission ends in
a result or a *typed* error within the join budget, and the governance
accounting drains to zero afterwards.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import create_index
from repro.errors import QueryCancelledError, ReproError
from repro.faults import serving_chaos_profile

SEEDS = range(20)
JOIN_TIMEOUT_S = 60.0

QUERIES = [
    "SELECT id, name FROM it WHERE id = 7",  # indexed lookup
    "SELECT id % 4 AS g, count(*) AS n FROM it GROUP BY id % 4",  # analytic
    "SELECT count(*) FROM it",  # scan
]


@pytest.mark.parametrize("seed", SEEDS)
def test_mixed_load_under_chaos_never_hangs(make_serving_session, seed):
    session = make_serving_session(
        indexed=True,
        faults=serving_chaos_profile(seed=seed),
        task_max_retries=2,
        serving_queue_timeout_s=0.1,
        serving_default_deadline_s=20.0,
    )
    df = session.create_dataframe(
        [(i, f"u{i}") for i in range(80)],
        [("id", "long"), ("name", "string")],
        num_partitions=4,
    )
    indexed = create_index(df, "id")
    session.create_or_replace_temp_view("it", indexed.to_df())

    unexpected: list = []
    completed = [0]
    lock = threading.Lock()

    def worker(offset: int) -> None:
        for i in range(3):
            text = QUERIES[(offset + i) % len(QUERIES)]
            try:
                result = session.serve(text, tenant=f"t{offset % 2}")
                with lock:
                    completed[0] += 1
                assert result.rows is not None
            except (ReproError, QueryCancelledError):
                pass  # typed, expected under chaos
            except BaseException as exc:  # noqa: BLE001
                with lock:
                    unexpected.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(3)]
    for t in threads:
        t.start()
    # Appends race the served queries (the paper's core scenario).
    live = indexed
    for batch in range(3):
        try:
            live = live.append_rows(
                [(1000 + batch * 10 + i, "new") for i in range(10)]
            )
        except (ReproError, QueryCancelledError):
            pass
    for t in threads:
        t.join(timeout=JOIN_TIMEOUT_S)

    hung = [t for t in threads if t.is_alive()]
    assert not hung, f"seed {seed}: {len(hung)} worker(s) hung"
    assert not unexpected, f"seed {seed}: untyped errors {unexpected!r}"

    # Governance accounting drained: no slot, queue entry, byte, or
    # active registration outlives its query.
    stats = session.serving.stats()
    assert stats["admission"]["running"] == 0
    assert stats["admission"]["queued"] == 0
    assert stats["memory"]["active_queries"] == 0
    assert stats["memory"]["total_bytes"] == 0
    assert session.serving.cancel_all() == 0
    # Metrics are conserved: every submission is accounted exactly once.
    serving = stats["serving"]
    assert serving["submitted"] == 9
    assert (
        serving["completed"]
        + serving["rejected"]
        + serving["cancelled"]
        + serving["failed"]
        == serving["submitted"]
    )
    # Breakers end in a legal state.
    for site, snap in stats["breakers"].items():
        assert snap["state"] in ("closed", "open", "half_open"), site


def test_chaos_survivor_serves_exactly_after_faults_drain(
    make_serving_session,
):
    """With a capped fire budget the chaos drains, breakers close via
    probes, and the session returns to exact serving."""
    session = make_serving_session(
        indexed=True,
        faults=serving_chaos_profile(seed=3, max_fires_per_site=2),
        task_max_retries=3,
        serving_breaker_reset_s=0.01,
        serving_queue_timeout_s=2.0,
    )
    df = session.create_dataframe(
        [(i, f"u{i}") for i in range(80)],
        [("id", "long"), ("name", "string")],
        num_partitions=4,
    )
    indexed = create_index(df, "id")
    session.create_or_replace_temp_view("it", indexed.to_df())

    import time

    deadline = time.monotonic() + 30.0
    result = None
    while time.monotonic() < deadline:
        try:
            result = session.serve("SELECT count(*) FROM it")
            break
        except (ReproError, QueryCancelledError):
            time.sleep(0.02)
    assert result is not None, "chaos never drained"
    assert result.rows == [(80,)]
