"""Graceful degradation: deadline-aware sampled scans."""

from __future__ import annotations

import pytest

from repro.core import create_index
from repro.serving.context import QueryContext


class TestScanSampling:
    def test_exact_when_no_deadline(self, serving_session):
        result = serving_session.serve("SELECT count(*) FROM rows")
        assert result.rows == [(400,)]
        assert not result.degraded
        assert result.sample_fraction is None

    def test_exact_when_plan_fits_the_deadline(self, serving_session):
        # Default throughput (2M rows/s) makes 400 rows trivially cheap.
        result = serving_session.serve("SELECT count(*) FROM rows", deadline_s=10.0)
        assert result.rows == [(400,)]
        assert not result.degraded

    def test_slow_scan_degrades_to_sample(self, make_serving_session):
        # 400 rows at 100 rows/s ≈ 4s > the 1s deadline: the planner
        # keeps budget/estimated = 100/400 = 25% of the partitions.
        session = make_serving_session(serving_scan_rows_per_s=100.0)
        df = session.create_dataframe(
            [(i, float(i)) for i in range(400)],
            [("id", "long"), ("value", "double")],
            num_partitions=8,
        )
        session.create_or_replace_temp_view("big", df)
        result = session.serve("SELECT count(*) FROM big", deadline_s=1.0)
        assert result.degraded
        # Slightly under 0.25: queueing latency eats into the remaining
        # deadline before the planner computes the budget.
        assert result.sample_fraction == pytest.approx(0.25, rel=0.05)
        # 2 of 8 partitions survive; partitions are equal-sized.
        assert result.rows == [(100,)]

    def test_degraded_marker_in_execution_plan(self, make_serving_session):
        session = make_serving_session(serving_scan_rows_per_s=100.0)
        df = session.create_dataframe(
            [(i, float(i)) for i in range(400)],
            [("id", "long"), ("value", "double")],
            num_partitions=8,
        )
        session.create_or_replace_temp_view("big", df)
        session.serve("SELECT count(*) FROM big", deadline_s=1.0)
        # The runtime records the planned physical tree on the served
        # DataFrame; the scan carries the degradation marker.
        stats = session.serving.stats()
        assert stats["serving"]["degraded"] == 1

    def test_fraction_floor_applies(self, make_serving_session):
        # An absurdly slow scan still samples at least the configured
        # minimum fraction, never zero partitions.
        session = make_serving_session(
            serving_scan_rows_per_s=0.001, serving_min_sample_fraction=0.25
        )
        df = session.create_dataframe(
            [(i,) for i in range(400)], [("id", "long")], num_partitions=8
        )
        session.create_or_replace_temp_view("big", df)
        result = session.serve("SELECT count(*) FROM big", deadline_s=0.5)
        assert result.degraded
        assert result.sample_fraction == pytest.approx(0.25)
        assert result.rows[0][0] > 0

    def test_degrade_disabled_runs_exact(self, make_serving_session):
        session = make_serving_session(
            serving_scan_rows_per_s=100.0, serving_degrade_enabled=False
        )
        df = session.create_dataframe(
            [(i,) for i in range(400)], [("id", "long")], num_partitions=8
        )
        session.create_or_replace_temp_view("big", df)
        result = session.serve("SELECT count(*) FROM big", deadline_s=5.0)
        assert not result.degraded
        assert result.rows == [(400,)]


class TestIndexedScanSampling:
    def test_indexed_scan_estimates_and_samples(self, make_serving_session):
        session = make_serving_session(indexed=True)
        df = session.create_dataframe(
            [(i, f"u{i}") for i in range(200)],
            [("id", "long"), ("name", "string")],
            num_partitions=8,
        )
        indexed = create_index(df, "id")
        attrs = indexed.to_df().analyzed_plan().output()
        from repro.core.physical import IndexedScanExec

        scan = IndexedScanExec(session.ctx, indexed.version, attrs)
        assert scan.estimated_rows() == 200
        assert scan.apply_sampling(0.5)
        assert scan.estimated_rows() < 200
        assert "degraded=True" in scan.describe()
        sampled = scan.execute().collect()
        assert 0 < len(sampled) < 200
        # Sampling a single-partition candidate set is refused.
        tiny = IndexedScanExec(session.ctx, indexed.version, attrs)
        tiny._keep = [0]
        assert not tiny.apply_sampling(0.5)


class TestDegradationContext:
    def test_remaining_budget_drives_the_fraction(self, make_serving_session):
        # Same query, tighter deadline → smaller fraction.
        session = make_serving_session(serving_scan_rows_per_s=100.0)
        df = session.create_dataframe(
            [(i,) for i in range(400)], [("id", "long")], num_partitions=8
        )
        session.create_or_replace_temp_view("big", df)
        loose = session.serve("SELECT count(*) FROM big", deadline_s=2.0)
        tight = session.serve("SELECT count(*) FROM big", deadline_s=1.0)
        assert loose.degraded and tight.degraded
        assert tight.sample_fraction < loose.sample_fraction

    def test_queries_without_deadline_skip_the_pass(self, serving_session):
        query = QueryContext.create()
        runtime = serving_session.serving
        df = serving_session.sql("SELECT count(*) FROM rows")
        _physical, degraded, fraction = runtime._plan(df, query)
        assert not degraded
        assert fraction is None
