"""Cancellation races under the deterministic interleaver.

The PR-4 interleaving driver parks registered threads at every cTrie
atomic operation. Worker A serves an aggregation whose map stage scans
an indexed (cTrie-backed) partition *inline on the driver thread*, so A
parks throughout the scan; worker B cancels the in-flight query. The
seeded schedule lands the cancel at a different atomic op each seed —
before admission, mid-scan, mid-shuffle-write, or after completion —
and every landing must leave the engine clean:

* the outcome is a result or a typed ``QueryCancelledError`` — never a
  hang, never a leaked slot;
* no incomplete shuffle state survives (a cancelled job drops its
  partially-written map outputs; complete ones may be retained);
* the session still serves correct results afterwards (no poisoned
  pool, no stuck admission accounting).
"""

from __future__ import annotations

import pytest

from repro.analysis.interleave import DeterministicInterleaver
from repro.config import Config
from repro.core import create_index
from repro.errors import QueryCancelledError, SimulatedCrash
from repro.faults import FaultProfile
from repro.sql.session import Session

from tests.serving.conftest import serving_config

QUERY = "SELECT id % 5 AS g, count(*) AS n FROM it GROUP BY id % 5"
EXPECTED = [(i, 12) for i in range(5)]


def make_race_session(make_serving_session) -> Session:
    # A single store partition makes the indexed map task run inline on
    # the serving thread, where the interleaver controls every cTrie
    # atomic read.
    session = make_serving_session(
        indexed=True, default_parallelism=1, serving_queue_timeout_s=5.0
    )
    df = session.create_dataframe(
        [(i, f"u{i}") for i in range(60)],
        [("id", "long"), ("name", "string")],
        num_partitions=1,
    )
    indexed = create_index(df, "id")
    session.create_or_replace_temp_view("it", indexed.to_df())
    return session


def assert_clean(session: Session) -> None:
    """The engine-wide hygiene invariants every interleaving must keep."""
    stats = session.serving.stats()
    assert stats["admission"]["running"] == 0
    assert stats["admission"]["queued"] == 0
    assert stats["memory"]["active_queries"] == 0
    assert stats["memory"]["total_bytes"] == 0
    manager = session.ctx.shuffle_manager
    with manager._lock:
        states = dict(manager._shuffles)
    for shuffle_id, state in states.items():
        assert state.complete(), f"shuffle {shuffle_id} left incomplete"


@pytest.mark.parametrize("seed", range(12))
def test_cancel_lands_anywhere_and_leaves_no_residue(
    make_serving_session, seed
):
    session = make_race_session(make_serving_session)
    outcomes: list = []
    done = [False]

    def serve() -> None:
        try:
            outcomes.append(session.serve(QUERY).rows)
        except QueryCancelledError as exc:
            outcomes.append(exc)
        finally:
            done[0] = True

    def cancel() -> None:
        # Wait (under driver control) until the query registers, then
        # fire the cancel. If the query already finished, cancel_all is
        # a no-op and the serve completes normally — also a valid
        # schedule.
        while not session.serving._active and not done[0]:
            pass
        session.serving.cancel_all("race")

    interleaver = DeterministicInterleaver(seed=seed, timeout_s=0.02)
    interleaver.run(serve, cancel)

    assert len(outcomes) == 1
    outcome = outcomes[0]
    if isinstance(outcome, QueryCancelledError):
        assert outcome.reason == "race"
    else:
        assert sorted(outcome) == EXPECTED
    assert_clean(session)
    # The engine is reusable: the same query now completes exactly.
    result = session.serve(QUERY)
    assert sorted(result.rows) == EXPECTED
    assert_clean(session)


def test_deadline_mid_shuffle_leaves_reusable_pool(make_serving_session):
    """A wall-clock deadline that expires mid-job: the cooperative
    polls unwind the stage, release the slot, and the pool serves the
    next query."""
    session = make_serving_session(
        indexed=True, serving_queue_timeout_s=5.0
    )
    df = session.create_dataframe(
        [(i, "x" * 200) for i in range(4000)],
        [("id", "long"), ("pad", "string")],
        num_partitions=8,
    )
    indexed = create_index(df, "id")
    session.create_or_replace_temp_view("it", indexed.to_df())
    cancelled = 0
    for _ in range(3):
        try:
            session.serve(
                "SELECT id % 7, count(*) FROM it GROUP BY id % 7",
                deadline_s=0.004,
            )
        except QueryCancelledError as exc:
            assert exc.reason == "deadline"
            cancelled += 1
    assert_clean(session)
    result = session.serve("SELECT count(*) FROM it")
    assert result.rows == [(4000,)]
    assert cancelled >= 1  # 4ms cannot scan 4000 padded rows


class TestCrashDuringServedLoad:
    def test_recovery_after_crash_with_shed_query(self, tmp_path):
        """A simulated crash lands mid-append while the serving layer is
        shedding a query; the next incarnation replays the WAL cleanly
        and serves correct results."""
        config = serving_config(
            executor_threads=1,
            default_parallelism=1,
            durability_enabled=True,
            durability_dir=str(tmp_path / "state"),
            serving_max_concurrent=1,
            serving_queue_depth=0,
            serving_queue_timeout_s=0.05,
            faults=FaultProfile(seed=4, crash_post_wal_p=1.0, max_fires_per_site=1),
        )
        from repro.core import enable_indexing

        session = Session(config)
        enable_indexing(session)
        df = session.create_dataframe([], [("id", "long"), ("name", "string")])
        indexed = create_index(df, "id", durable_name="t")

        # Occupy the only slot so the concurrent query is *shed* —
        # rejection is an error, not a hang, even as the store crashes.
        from repro.errors import QueryRejectedError
        from repro.serving.context import QueryContext

        holder = QueryContext.create()
        session.serving.admission.admit(holder)
        session.create_or_replace_temp_view("t", indexed.to_df())
        with pytest.raises(QueryRejectedError):
            session.serve("SELECT count(*) FROM t")
        session.serving.admission.release(holder)

        # The armed crash fires after the WAL write but before the
        # in-memory apply: the batch is durable but unacknowledged, the
        # canonical window WAL replay exists to close.
        with pytest.raises(SimulatedCrash):
            indexed.append_rows([(i, f"a{i}") for i in range(10)])
        # Simulated death: abandon the session without stop().

        survivor = Session(
            serving_config(
                executor_threads=1,
                default_parallelism=1,
                durability_enabled=True,
                durability_dir=str(tmp_path / "state"),
            )
        )
        enable_indexing(survivor)
        try:
            recovered = survivor.durability.recover("t")
            got = list(recovered.scan_tuples())
            # append_rows is atomic per partition, not across them: the
            # partitions WAL-written before the crash replay; nothing
            # else may appear, and nothing may duplicate.
            batch = {(i, f"a{i}") for i in range(10)}
            assert set(got) <= batch
            assert len(got) == len(set(got))
            assert recovered.count() == len(got)
            # Serving over the recovered store agrees with the scan.
            survivor.create_or_replace_temp_view("t", recovered.to_df())
            result = survivor.serve("SELECT count(*) FROM t")
            assert result.rows == [(len(got),)]
            # Life goes on: post-recovery appends are served too.
            recovered = recovered.append_rows([(100, "after")])
            survivor.create_or_replace_temp_view("t", recovered.to_df())
            again = survivor.serve("SELECT count(*) FROM t")
            assert again.rows == [(len(got) + 1,)]
        finally:
            survivor.stop()
        session.stop()
