"""Admission control: slots, queueing, shedding, tenant fairness."""

from __future__ import annotations

import threading

import pytest

from repro.errors import QueryCancelledError, QueryRejectedError
from repro.serving.admission import AdmissionController
from repro.serving.context import QueryContext

from tests.serving.conftest import serving_config


def make_controller(**overrides) -> AdmissionController:
    return AdmissionController(serving_config(**overrides))


class TestSlots:
    def test_admits_up_to_max_concurrent(self):
        ctrl = make_controller(
            serving_max_concurrent=3, serving_tenant_max_concurrent=3
        )
        queries = [QueryContext.create() for _ in range(3)]
        for q in queries:
            ctrl.admit(q)
        snap = ctrl.snapshot()
        assert snap["running"] == 3
        assert snap["admitted"] == 3

    def test_release_frees_the_slot(self):
        ctrl = make_controller(serving_max_concurrent=1)
        first = QueryContext.create()
        ctrl.admit(first)
        ctrl.release(first)
        second = QueryContext.create()
        ctrl.admit(second)  # no timeout: the slot was returned
        assert ctrl.snapshot()["running"] == 1

    def test_queued_waiter_granted_on_release(self):
        ctrl = make_controller(
            serving_max_concurrent=1, serving_queue_timeout_s=5.0
        )
        first = QueryContext.create()
        ctrl.admit(first)
        admitted = threading.Event()

        def waiter() -> None:
            ctrl.admit(QueryContext.create())
            admitted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        try:
            assert not admitted.wait(0.05)  # still queued
            ctrl.release(first)
            assert admitted.wait(2.0)
        finally:
            thread.join(timeout=2.0)
        assert ctrl.snapshot()["queued"] == 0


class TestShedding:
    def test_queue_full_rejects_immediately(self):
        ctrl = make_controller(serving_max_concurrent=1, serving_queue_depth=0)
        ctrl.admit(QueryContext.create())
        with pytest.raises(QueryRejectedError) as exc:
            ctrl.admit(QueryContext.create())
        assert "queue full" in exc.value.reason
        assert exc.value.retry_after_s > 0
        assert ctrl.snapshot()["rejected_queue_full"] == 1

    def test_wait_timeout_rejects_with_retry_after(self):
        ctrl = make_controller(
            serving_max_concurrent=1, serving_queue_timeout_s=0.05
        )
        ctrl.admit(QueryContext.create())
        with pytest.raises(QueryRejectedError) as exc:
            ctrl.admit(QueryContext.create())
        assert exc.value.retry_after_s > 0
        assert ctrl.snapshot()["rejected_timeout"] == 1
        # The timed-out waiter left the queue.
        assert ctrl.snapshot()["queued"] == 0

    def test_expired_deadline_never_waits_full_queue_timeout(self):
        # A query already past its deadline leaves the queue at the
        # first poll (cancelled, reason "deadline") instead of holding a
        # queue position for the 60s queue timeout.
        import time

        ctrl = make_controller(
            serving_max_concurrent=1, serving_queue_timeout_s=60.0
        )
        ctrl.admit(QueryContext.create())
        doomed = QueryContext.create(deadline_s=0.0)
        start = time.monotonic()
        with pytest.raises(QueryCancelledError) as exc:
            ctrl.admit(doomed)
        assert exc.value.reason == "deadline"
        assert time.monotonic() - start < 5.0
        assert ctrl.snapshot()["queued"] == 0

    def test_cancelled_waiter_leaves_the_queue(self):
        ctrl = make_controller(
            serving_max_concurrent=1, serving_queue_timeout_s=5.0
        )
        ctrl.admit(QueryContext.create())
        queued = QueryContext.create()
        errors: list[BaseException] = []

        def waiter() -> None:
            try:
                ctrl.admit(queued)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=waiter)
        thread.start()
        try:
            queued.cancel("user")
            thread.join(timeout=2.0)
        finally:
            assert not thread.is_alive()
        assert len(errors) == 1
        assert isinstance(errors[0], QueryCancelledError)
        snap = ctrl.snapshot()
        assert snap["cancelled_in_queue"] == 1
        assert snap["queued"] == 0


class TestTenants:
    def test_tenant_cap_does_not_block_other_tenants(self):
        # Tenant "a" saturates its cap; tenant "b" is admitted ahead of
        # the queued "a" waiter (no cross-tenant head-of-line blocking).
        ctrl = make_controller(
            serving_max_concurrent=4,
            serving_tenant_max_concurrent=1,
            serving_queue_timeout_s=5.0,
        )
        ctrl.admit(QueryContext.create(tenant="a"))
        blocked = threading.Event()

        def waiter() -> None:
            ctrl.admit(QueryContext.create(tenant="a"))
            blocked.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        try:
            assert not blocked.wait(0.05)
            ctrl.admit(QueryContext.create(tenant="b"))  # sails past
            assert ctrl.snapshot()["running"] == 2
        finally:
            # Unblock and drain the queued "a" waiter.
            ctrl.release(QueryContext.create(tenant="a"))
            thread.join(timeout=2.0)

    def test_higher_priority_admitted_first(self):
        ctrl = make_controller(
            serving_max_concurrent=1, serving_queue_timeout_s=5.0
        )
        holder = QueryContext.create()
        ctrl.admit(holder)
        order: list[str] = []
        started = threading.Barrier(3)

        def waiter(name: str, priority: int) -> None:
            query = QueryContext.create(priority=priority)
            started.wait()
            ctrl.admit(query)
            order.append(name)
            ctrl.release(query)

        low = threading.Thread(target=waiter, args=("low", 0))
        high = threading.Thread(target=waiter, args=("high", 5))
        low.start()
        high.start()
        started.wait()
        # Let both enqueue before the slot opens.
        import time

        deadline = time.monotonic() + 2.0
        while ctrl.snapshot()["queued"] < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        ctrl.release(holder)
        low.join(timeout=2.0)
        high.join(timeout=2.0)
        assert order[0] == "high"
