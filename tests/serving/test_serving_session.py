"""Session.serve(): the end-to-end governed query path."""

from __future__ import annotations

import threading

import pytest

from repro.config import Config
from repro.errors import (
    AnalysisError,
    QueryCancelledError,
    QueryRejectedError,
)
from repro.serving.context import QueryContext
from repro.sql.session import Session


class TestServePath:
    def test_serve_matches_sql_collect(self, serving_session):
        served = serving_session.serve(
            "SELECT bucket, count(*) AS n FROM rows GROUP BY bucket"
        )
        direct = serving_session.sql(
            "SELECT bucket, count(*) AS n FROM rows GROUP BY bucket"
        ).collect()
        assert sorted(served.rows) == sorted(tuple(r) for r in direct)
        assert not served.degraded
        assert served.elapsed_s >= 0
        assert len(served) == len(direct)

    def test_expired_deadline_cancels(self, serving_session):
        with pytest.raises(QueryCancelledError) as exc:
            serving_session.serve("SELECT count(*) FROM rows", deadline_s=0.0)
        assert exc.value.reason == "deadline"
        snap = serving_session.serving.stats()["serving"]
        assert snap["deadline_cancelled"] == 1

    def test_slot_released_after_every_outcome(self, serving_session):
        serving_session.serve("SELECT count(*) FROM rows")
        with pytest.raises(QueryCancelledError):
            serving_session.serve("SELECT count(*) FROM rows", deadline_s=0.0)
        admission = serving_session.serving.admission.snapshot()
        assert admission["running"] == 0
        assert admission["queued"] == 0

    def test_overload_sheds_with_retry_after(self, make_serving_session):
        session = make_serving_session(
            serving_max_concurrent=1,
            serving_queue_depth=0,
            serving_queue_timeout_s=0.05,
        )
        df = session.create_dataframe(
            [(i,) for i in range(10)], [("id", "long")], num_partitions=2
        )
        session.create_or_replace_temp_view("t", df)
        # Occupy the only slot, then the next serve is shed (zero-depth
        # queue: no waiting allowed).
        holder = QueryContext.create()
        session.serving.admission.admit(holder)
        try:
            with pytest.raises(QueryRejectedError) as exc:
                session.serve("SELECT count(*) FROM t")
            assert exc.value.retry_after_s > 0
        finally:
            session.serving.admission.release(holder)
        # Load drained: the same query now succeeds.
        assert session.serve("SELECT count(*) FROM t").rows == [(10,)]

    def test_concurrent_serves_all_complete(self, serving_session):
        results: list = []
        errors: list = []

        def worker() -> None:
            try:
                results.append(
                    serving_session.serve("SELECT count(*) FROM rows").rows
                )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        # Capacity (4 slots, 16 queue depth, 0.2s timeout) may shed some
        # under scheduling jitter, but whatever was admitted finished
        # correctly and nothing hung.
        assert all(r == [(400,)] for r in results)
        assert all(isinstance(e, QueryRejectedError) for e in errors)
        admission = serving_session.serving.admission.snapshot()
        assert admission["running"] == 0


class TestDisabledIsInert:
    def test_serve_raises_when_disabled(self):
        session = Session(Config(executor_threads=2))
        try:
            assert session.serving is None
            assert session.ctx.serving is None
            assert session.ctx.scheduler.serving is None
            with pytest.raises(AnalysisError, match="serving is disabled"):
                session.serve("SELECT 1 AS one FROM t")
        finally:
            session.stop()

    def test_default_config_keeps_flag_off(self):
        assert Config().serving_enabled is False


class TestStats:
    def test_stats_shape(self, serving_session):
        serving_session.serve("SELECT count(*) FROM rows")
        stats = serving_session.serving.stats()
        assert set(stats) == {
            "serving", "admission", "memory", "breakers", "index_sharing",
        }
        assert stats["serving"]["submitted"] == 1
        assert stats["serving"]["completed"] == 1
        assert stats["admission"]["admitted"] == 1
        assert stats["memory"]["active_queries"] == 0

    def test_cancel_all_cancels_in_flight(self, serving_session):
        release = threading.Event()
        entered = threading.Event()
        outcome: list = []

        # Pin a query in the running set by holding it on a thread that
        # waits inside execution (simulated by a cooperative barrier in
        # the admission queue is too early; use a long deadline and
        # cancel_all while it waits on admission of a second query).
        def worker() -> None:
            try:
                entered.set()
                outcome.append(serving_session.serve("SELECT count(*) FROM rows"))
            except BaseException as exc:  # noqa: BLE001
                outcome.append(exc)
            finally:
                release.set()

        thread = threading.Thread(target=worker)
        thread.start()
        entered.wait(2.0)
        thread.join(timeout=10.0)
        assert release.is_set()
        # cancel_all on an idle runtime is a no-op returning 0.
        assert serving_session.serving.cancel_all() == 0
