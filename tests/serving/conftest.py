"""Fixtures for the serving suite: governed sessions and fake clocks."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import enable_indexing
from repro.sql.session import Session


def serving_config(**overrides) -> Config:
    """Small deterministic config with the serving layer enabled."""
    base = dict(
        executor_threads=2,
        shuffle_partitions=4,
        default_parallelism=2,
        broadcast_threshold=50,
        retry_backoff_s=0.0005,
        serving_enabled=True,
        serving_queue_timeout_s=0.2,
    )
    base.update(overrides)
    return Config(**base)


class FakeClock:
    """A manually-advanced monotonic clock for deterministic timing."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def make_serving_session():
    """Factory for serving-enabled sessions; stops them on teardown."""
    created: list[Session] = []

    def factory(indexed: bool = False, **overrides) -> Session:
        session = Session(serving_config(**overrides))
        if indexed:
            enable_indexing(session)
        created.append(session)
        return session

    yield factory
    for session in created:
        session.stop()


@pytest.fixture()
def serving_session(make_serving_session):
    session = make_serving_session()
    df = session.create_dataframe(
        [(i, i % 10, float(i)) for i in range(400)],
        [("id", "long"), ("bucket", "long"), ("value", "double")],
        num_partitions=8,
    )
    session.create_or_replace_temp_view("rows", df)
    return session
