"""Circuit breaker state machine: trip, fast-fail, probe, close."""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError
from repro.faults import FaultInjector, FaultProfile
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def make_breaker(clock, threshold=3, reset_s=1.0, injector=None) -> CircuitBreaker:
    return CircuitBreaker(
        "test.site", threshold, reset_s, injector=injector, clock=clock
    )


class TestStateMachine:
    def test_trips_after_threshold_failures(self, clock):
        breaker = make_breaker(clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.snapshot()["trips"] == 1

    def test_success_resets_the_failure_count(self, clock):
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never reached 3 consecutive

    def test_open_fast_fails_within_reset_window(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.snapshot()["fast_fails"] == 2
        assert 0 < breaker.retry_after() <= 1.0

    def test_probe_success_closes(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # a fresh reset window started
        assert breaker.snapshot()["probes_failed"] == 1

    def test_single_probe_per_window(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        # Second caller while the probe is outstanding: fast-fail.
        assert not breaker.allow()

    def test_stale_probe_is_regranted(self, clock):
        # A probe whose caller died (outcome never recorded) must not
        # wedge the breaker in HALF_OPEN forever.
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        clock.advance(1.5)  # probe outcome never recorded
        assert breaker.allow()

    def test_guard_raises_typed_error(self, clock):
        breaker = make_breaker(clock)
        breaker.guard()  # closed: no raise
        for _ in range(3):
            breaker.record_failure()
        with pytest.raises(CircuitOpenError) as exc:
            breaker.guard()
        assert exc.value.site == "test.site"
        assert exc.value.retry_after_s > 0


class TestInjectedProbeFailure:
    def test_chaos_probe_counts_as_failure(self, clock):
        injector = FaultInjector(
            FaultProfile(seed=7, serving_breaker_probe_p=1.0)
        )
        breaker = make_breaker(clock, injector=injector)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        # The probe is granted internally but consumed by the injected
        # fault: the caller sees a fast-fail and the breaker reopens.
        assert not breaker.allow()
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["probes"] == 1
        assert snap["probes_failed"] == 1
