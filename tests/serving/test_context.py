"""QueryContext: deadlines, cancellation tokens, contextvar plumbing."""

from __future__ import annotations

import threading

import pytest

from repro.errors import QueryCancelledError
from repro.serving.context import (
    CancellationToken,
    QueryContext,
    activate,
    active,
    check_cancelled,
    current_query,
    deactivate,
)


class TestCancellationToken:
    def test_first_cancel_wins(self):
        token = CancellationToken()
        assert not token.cancelled
        assert token.cancel("deadline") is True
        assert token.cancel("memory") is False
        assert token.reason == "deadline"
        assert token.cancelled

    def test_concurrent_cancels_produce_one_winner(self):
        token = CancellationToken()
        wins = []
        barrier = threading.Barrier(4)

        def worker(reason: str) -> None:
            barrier.wait()
            if token.cancel(reason):
                wins.append(reason)

        threads = [
            threading.Thread(target=worker, args=(f"r{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert token.reason == wins[0]


class TestQueryContext:
    def test_unbounded_query_never_expires(self):
        query = QueryContext.create()
        assert query.remaining() is None
        assert not query.expired()
        query.check()  # no raise

    def test_deadline_expiry_self_cancels(self, clock):
        query = QueryContext.create(deadline_s=5.0, clock=clock)
        assert query.remaining() == pytest.approx(5.0)
        query.check()
        clock.advance(6.0)
        assert query.expired()
        with pytest.raises(QueryCancelledError) as exc:
            query.check()
        assert exc.value.reason == "deadline"
        assert exc.value.query_id == query.query_id

    def test_explicit_cancel_beats_later_deadline(self, clock):
        query = QueryContext.create(deadline_s=5.0, clock=clock)
        query.cancel("user")
        clock.advance(10.0)
        with pytest.raises(QueryCancelledError) as exc:
            query.check()
        assert exc.value.reason == "user"

    def test_query_ids_are_unique(self):
        a = QueryContext.create()
        b = QueryContext.create()
        assert a.query_id != b.query_id


class TestContextVar:
    def test_no_active_query_is_a_noop(self):
        assert current_query() is None
        check_cancelled()  # no raise

    def test_activate_deactivate(self):
        query = QueryContext.create()
        token = activate(query)
        try:
            assert current_query() is query
        finally:
            deactivate(token)
        assert current_query() is None

    def test_active_contextmanager_restores_on_error(self):
        query = QueryContext.create()
        query.cancel("user")
        with pytest.raises(QueryCancelledError):
            with active(query):
                check_cancelled()
        assert current_query() is None

    def test_pool_threads_do_not_inherit(self):
        query = QueryContext.create()
        seen = []
        token = activate(query)
        try:
            thread = threading.Thread(target=lambda: seen.append(current_query()))
            thread.start()
            thread.join()
        finally:
            deactivate(token)
        assert seen == [None]
