"""Memory governor: budgets, kill-largest policy, accounting."""

from __future__ import annotations

import pytest

from repro.errors import QueryCancelledError
from repro.serving.context import QueryContext
from repro.serving.memory import MemoryGovernor

from tests.serving.conftest import serving_config


def make_governor(**overrides) -> MemoryGovernor:
    return MemoryGovernor(serving_config(**overrides))


class TestAccounting:
    def test_charge_and_unregister_release(self):
        gov = make_governor()
        query = QueryContext.create()
        gov.register(query)
        gov.charge(query, 1000)
        gov.charge(query, 500)
        assert gov.usage(query) == 1500
        assert gov.snapshot()["total_bytes"] == 1500
        gov.unregister(query)
        assert gov.usage(query) == 0
        assert gov.snapshot()["total_bytes"] == 0
        assert gov.snapshot()["charged_bytes"] == 1500  # cumulative

    def test_unregistered_charge_is_ignored(self):
        gov = make_governor()
        query = QueryContext.create()
        gov.charge(query, 10_000_000_000)  # never registered: no effect
        assert gov.snapshot()["total_bytes"] == 0
        assert not query.token.cancelled

    def test_zero_and_negative_charges_are_noops(self):
        gov = make_governor()
        query = QueryContext.create()
        gov.register(query)
        gov.charge(query, 0)
        gov.charge(query, -5)
        assert gov.usage(query) == 0


class TestEnforcement:
    def test_per_query_breach_kills_the_charger(self):
        gov = make_governor(serving_query_memory_bytes=1000)
        query = QueryContext.create()
        gov.register(query)
        with pytest.raises(QueryCancelledError) as exc:
            gov.charge(query, 2000)
        assert exc.value.reason.startswith("memory")
        assert gov.snapshot()["per_query_breaches"] == 1
        assert gov.snapshot()["kills"] == 1

    def test_global_breach_kills_the_largest_query(self):
        gov = make_governor(
            serving_memory_budget_bytes=1000,
            serving_query_memory_bytes=900,
        )
        big = QueryContext.create()
        small = QueryContext.create()
        gov.register(big)
        gov.register(small)
        gov.charge(big, 800)
        # small's charge breaches the *global* budget; big is the
        # largest holder and is cancelled — small survives and keeps
        # its charge.
        gov.charge(small, 300)
        assert big.token.cancelled
        assert big.token.reason.startswith("memory")
        assert not small.token.cancelled
        assert gov.snapshot()["global_breaches"] == 1

    def test_victim_unwind_frees_the_budget(self):
        gov = make_governor(serving_memory_budget_bytes=1000)
        big = QueryContext.create()
        gov.register(big)
        gov.charge(big, 600)
        small = QueryContext.create()
        gov.register(small)
        gov.charge(small, 500)  # breach: big cancelled
        assert big.token.cancelled
        gov.unregister(big)  # the victim unwinds cooperatively
        assert gov.snapshot()["total_bytes"] == 500
        # Headroom restored: further charges fit again.
        gov.charge(small, 400)
        assert not small.token.cancelled
