"""Breaker wiring at the three guarded fault sites (DESIGN §12):
``index.fallback``, ``shuffle.fetch``, and ``wal.fsync``."""

from __future__ import annotations

import pytest

from repro.core import create_index
from repro.errors import CircuitOpenError, RetryExhaustedError
from repro.faults import FaultProfile
from repro.serving.breaker import OPEN
from repro.serving.context import QueryContext


class TestIndexFallbackBreaker:
    def test_persistent_index_failure_trips_and_skips_primary(
        self, make_serving_session
    ):
        session = make_serving_session(
            indexed=True,
            faults=FaultProfile(seed=5, index_probe_p=1.0),
            task_max_retries=0,
            serving_breaker_failures=2,
        )
        df = session.create_dataframe(
            [(i, f"u{i}") for i in range(60)],
            [("id", "long"), ("name", "string")],
        )
        indexed = create_index(df, "id")
        # Every probe dies: each guarded execution records a breaker
        # failure but still answers through the vanilla fallback.
        for _ in range(2):
            rows = indexed.get_rows(17).collect()
            assert [tuple(r) for r in rows] == [(17, "u17")]
        breaker = session.serving.breaker("index.fallback")
        assert breaker.state == OPEN
        fallbacks_before = session.ctx.scheduler.metrics.index_fallbacks
        # Open breaker: the guard skips the primary entirely (no wasted
        # probe work) and the fallback still serves the answer.
        rows = indexed.get_rows(23).collect()
        assert [tuple(r) for r in rows] == [(23, "u23")]
        assert session.ctx.scheduler.metrics.index_fallbacks == fallbacks_before + 1

    def test_healthy_index_closes_the_breaker(self, make_serving_session):
        session = make_serving_session(indexed=True)
        df = session.create_dataframe(
            [(i, f"u{i}") for i in range(60)],
            [("id", "long"), ("name", "string")],
        )
        indexed = create_index(df, "id")
        assert [tuple(r) for r in indexed.get_rows(3).collect()] == [(3, "u3")]
        breaker = session.serving.breaker("index.fallback")
        assert breaker.state == "closed"
        assert session.ctx.scheduler.metrics.index_fallbacks == 0


class TestShuffleFetchBreaker:
    def test_persistent_shuffle_loss_fails_fast(self, make_serving_session):
        # Every fetch loses a map output AND every recompute re-loses
        # it; with a 1-failure threshold the breaker opens on the first
        # fetch failure and the retry loop is cut short with a typed
        # CircuitOpenError cause instead of burning the whole budget.
        session = make_serving_session(
            faults=FaultProfile(seed=11, shuffle_loss_p=1.0),
            serving_breaker_failures=1,
        )
        df = session.create_dataframe(
            [(i % 5, i) for i in range(100)],
            [("k", "long"), ("v", "long")],
            num_partitions=4,
        )
        session.create_or_replace_temp_view("t", df)
        with pytest.raises(RetryExhaustedError) as exc:
            session.serve("SELECT k, count(*) FROM t GROUP BY k")
        assert isinstance(exc.value.cause, CircuitOpenError)
        assert session.serving.breaker("shuffle.fetch").state == OPEN

    def test_recovered_loss_records_success(self, make_serving_session):
        # A single injected loss: lineage recomputation heals it and the
        # breaker records the recovery, staying closed.
        session = make_serving_session(
            faults=FaultProfile(seed=11, shuffle_loss_p=1.0, max_fires_per_site=1),
            serving_breaker_failures=5,
        )
        df = session.create_dataframe(
            [(i % 5, i) for i in range(100)],
            [("k", "long"), ("v", "long")],
            num_partitions=4,
        )
        session.create_or_replace_temp_view("t", df)
        result = session.serve("SELECT k, count(*) AS n FROM t GROUP BY k")
        assert sorted(result.rows) == [(i, 20) for i in range(5)]
        assert session.serving.breaker("shuffle.fetch").state == "closed"


class TestWalFsyncBreaker:
    def test_wal_writer_fast_fails_when_open(self, tmp_path, clock):
        from repro.durability.wal import WALWriter
        from repro.serving.breaker import CircuitBreaker

        breaker = CircuitBreaker("wal.fsync", 1, 10.0, clock=clock)
        breaker.record_failure()  # tripped
        writer = WALWriter(tmp_path / "p.wal", breaker=breaker)
        try:
            with pytest.raises(CircuitOpenError) as exc:
                writer.append_rows([b"payload"])
            assert exc.value.site == "wal.fsync"
            # Fast-fail: nothing reached the file.
            assert writer.size_bytes() == 0
        finally:
            writer.close()

    def test_fsync_failures_trip_then_recover(self, tmp_path):
        from repro.durability.wal import WALWriter
        from repro.faults import FaultInjector
        from repro.serving.breaker import CircuitBreaker

        injector = FaultInjector(
            FaultProfile(seed=3, disk_fsync_p=1.0, max_fires_per_site=2)
        )
        breaker = CircuitBreaker("wal.fsync", 2, 0.0)
        writer = WALWriter(tmp_path / "p.wal", injector=injector, breaker=breaker)
        try:
            for _ in range(2):
                with pytest.raises(Exception):
                    writer.append_rows([b"x"])
            assert breaker.snapshot()["trips"] == 1
            # Budget exhausted (max_fires=2): the half-open probe write
            # succeeds (reset_s=0 grants it immediately) and closes the
            # breaker again.
            writer.append_rows([b"x"])
            assert breaker.state == "closed"
            assert writer.size_bytes() > 0
        finally:
            writer.close()

    def test_store_threads_breaker_to_writers(self, tmp_path, make_serving_session):
        session = make_serving_session(
            durability_enabled=True, durability_dir=str(tmp_path)
        )
        store = session.durability.store("events")
        assert store._breaker is session.serving.breaker("wal.fsync")


class TestMemoryGovernorWiring:
    def test_shuffle_write_charges_kill_oversized_query(
        self, make_serving_session
    ):
        # A tiny per-query budget: the shuffle map-output charge breaches
        # it and the charging query is killed cooperatively.
        session = make_serving_session(serving_query_memory_bytes=64)
        df = session.create_dataframe(
            [(i % 5, "x" * 50) for i in range(200)],
            [("k", "long"), ("pad", "string")],
            num_partitions=4,
        )
        session.create_or_replace_temp_view("t", df)
        from repro.errors import QueryCancelledError

        with pytest.raises(QueryCancelledError) as exc:
            session.serve("SELECT k, count(*) FROM t GROUP BY k")
        assert exc.value.reason.startswith("memory")
        stats = session.serving.stats()
        assert stats["serving"]["memory_cancelled"] == 1
        assert stats["memory"]["kills"] >= 1
        # The killed query released its charges and its slot.
        assert stats["memory"]["total_bytes"] == 0
        assert stats["admission"]["running"] == 0

    def test_static_path_never_charges(self, make_serving_session):
        # The same shuffle through .sql() (no QueryContext active)
        # bypasses the governor entirely.
        session = make_serving_session(serving_query_memory_bytes=64)
        df = session.create_dataframe(
            [(i % 5, "x" * 50) for i in range(200)],
            [("k", "long"), ("pad", "string")],
            num_partitions=4,
        )
        session.create_or_replace_temp_view("t", df)
        rows = session.sql("SELECT k, count(*) AS n FROM t GROUP BY k").collect()
        assert len(rows) == 5
        assert session.serving.stats()["memory"]["charged_bytes"] == 0


class TestQuerySlotHygiene:
    def test_cancelled_query_leaves_no_active_registration(
        self, make_serving_session
    ):
        session = make_serving_session()
        df = session.create_dataframe(
            [(i,) for i in range(20)], [("id", "long")], num_partitions=2
        )
        session.create_or_replace_temp_view("t", df)
        from repro.errors import QueryCancelledError

        for _ in range(3):
            with pytest.raises(QueryCancelledError):
                session.serve("SELECT count(*) FROM t", deadline_s=0.0)
        stats = session.serving.stats()
        assert stats["memory"]["active_queries"] == 0
        assert stats["admission"]["running"] == 0
        # The runtime's active-set is empty too.
        assert session.serving.cancel_all() == 0
