"""Tests for partitioners and the portable hash."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.partitioner import (
    HashPartitioner,
    RangePartitioner,
    bucket_keys,
    portable_hash,
)


class TestPortableHash:
    def test_none_hashes_to_zero(self):
        assert portable_hash(None) == 0

    def test_deterministic_for_strings(self):
        # Unlike builtin hash(), not salted per process.
        assert portable_hash("person") == portable_hash("person")
        assert portable_hash("abc") == 7430836138530658123

    def test_int_spreads_consecutive_keys(self):
        partitions = {portable_hash(i) % 8 for i in range(16)}
        assert len(partitions) > 4

    def test_bool_hashes_like_equal_int(self):
        # True == 1 and False == 0, so their hashes must agree.
        assert portable_hash(True) == portable_hash(1)
        assert portable_hash(False) == portable_hash(0)

    def test_float_integral_matches_int(self):
        assert portable_hash(4.0) == portable_hash(4)

    def test_tuple_hash_differs_by_order(self):
        assert portable_hash((1, 2)) != portable_hash((2, 1))

    @given(st.one_of(st.integers(), st.text(), st.booleans(), st.none()))
    def test_always_non_negative(self, key):
        assert portable_hash(key) >= 0

    @given(st.binary())
    def test_bytes_supported(self, key):
        assert 0 <= portable_hash(key) < (1 << 63)


class TestHashPartitioner:
    def test_range(self):
        p = HashPartitioner(8)
        for key in [0, 1, "x", None, (1, 2), 3.5]:
            assert 0 <= p.partition(key) < 8

    def test_equality_by_type_and_count(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(8)
        assert HashPartitioner(4) != RangePartitioner([1, 2, 3])

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_same_key_same_partition(self):
        p = HashPartitioner(16)
        assert all(p.partition("k") == p.partition("k") for _ in range(10))


class TestRangePartitioner:
    def test_bounds_define_partitions(self):
        p = RangePartitioner([10, 20])
        assert p.num_partitions == 3
        assert p.partition(5) == 0
        assert p.partition(10) == 0
        assert p.partition(15) == 1
        assert p.partition(25) == 2

    def test_from_sample_even_spread(self):
        p = RangePartitioner.from_sample(list(range(100)), 4)
        counts = [0] * p.num_partitions
        for key in range(100):
            counts[p.partition(key)] += 1
        assert all(c > 0 for c in counts)

    def test_from_sample_empty(self):
        p = RangePartitioner.from_sample([], 4)
        assert p.num_partitions == 1
        assert p.partition(123) == 0

    def test_from_sample_duplicates_collapse(self):
        p = RangePartitioner.from_sample([7] * 50, 4)
        assert p.num_partitions <= 2

    @given(st.lists(st.integers(), min_size=1, max_size=200), st.integers(1, 8))
    def test_partition_order_respects_key_order(self, sample, n):
        p = RangePartitioner.from_sample(sample, n)
        keys = sorted(sample)
        partitions = [p.partition(k) for k in keys]
        assert partitions == sorted(partitions)


class TestBucketKeys:
    """The shared routing helper: lookups, pruning, and appends must
    agree on which partition holds a key."""

    def test_routes_match_partitioner(self):
        p = HashPartitioner(4)
        buckets = bucket_keys(range(50), p)
        assert len(buckets) == 4
        for index, bucket in enumerate(buckets):
            for key in bucket:
                assert p.partition(key) == index
        assert sorted(k for b in buckets for k in b) == list(range(50))

    def test_dedupes_preserving_first_seen_order(self):
        p = HashPartitioner(1)
        assert bucket_keys([3, 1, 3, 2, 1], p) == [[3, 1, 2]]
        assert bucket_keys([3, 1, 3], p, dedupe=False) == [[3, 1, 3]]

    def test_none_keys_dropped_by_default(self):
        p = HashPartitioner(2)
        assert all(None not in b for b in bucket_keys([None, 1, None], p))
        kept = bucket_keys([None, 1], p, skip_none=False)
        assert sum(len(b) for b in kept) == 2

    @given(st.lists(st.one_of(st.integers(), st.text(), st.none()), max_size=100),
           st.integers(1, 8))
    def test_every_non_null_key_lands_exactly_once(self, keys, n):
        buckets = bucket_keys(keys, HashPartitioner(n))
        routed = [k for b in buckets for k in b]
        assert sorted(routed, key=repr) == sorted(
            {k for k in keys if k is not None}, key=repr
        )
