"""Tests for the EngineContext lifecycle and factories."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.engine.context import EngineContext


class TestFactories:
    def test_parallelize_default_slices(self):
        with EngineContext(Config(default_parallelism=3)) as ctx:
            assert ctx.parallelize(range(9)).num_partitions == 3

    def test_parallelize_explicit_slices(self, ctx):
        rdd = ctx.parallelize(range(10), 4)
        assert rdd.num_partitions == 4
        assert rdd.collect() == list(range(10))

    def test_parallelize_fewer_items_than_slices(self, ctx):
        rdd = ctx.parallelize([1], 8)
        assert rdd.num_partitions == 8
        assert rdd.collect() == [1]

    def test_empty_rdd(self, ctx):
        assert ctx.empty_rdd().collect() == []
        assert ctx.empty_rdd().count() == 0

    def test_broadcast_factory(self, ctx):
        assert ctx.broadcast({"a": 1}).value == {"a": 1}


class TestLifecycle:
    def test_context_manager_stops(self):
        with EngineContext(Config()) as ctx:
            pass
        with pytest.raises(RuntimeError):
            ctx.parallelize([1], 1).collect()

    def test_stop_idempotent(self):
        ctx = EngineContext(Config())
        ctx.stop()
        ctx.stop()

    def test_repr(self):
        ctx = EngineContext(Config(executor_threads=3))
        assert "threads=3" in repr(ctx)
        assert "running" in repr(ctx)
        ctx.stop()
        assert "stopped" in repr(ctx)

    def test_independent_contexts_do_not_share_cache(self):
        a = EngineContext(Config())
        b = EngineContext(Config())
        try:
            rdd = a.parallelize(range(10), 2).cache()
            rdd.count()
            assert len(a.block_manager) > 0
            assert len(b.block_manager) == 0
        finally:
            a.stop()
            b.stop()
