"""Tests for accumulators."""

from __future__ import annotations

import threading

from repro.engine import long_accumulator
from repro.engine.accumulators import Accumulator, list_accumulator


class TestAccumulator:
    def test_long_counts(self):
        acc = long_accumulator("rows")
        acc.add(3)
        acc += 4
        assert acc.value == 7
        acc.reset()
        assert acc.value == 0

    def test_list_collects(self):
        acc = list_accumulator()
        acc.add("bad-1")
        acc.add("bad-2")
        assert acc.value == ["bad-1", "bad-2"]

    def test_custom_op(self):
        acc = Accumulator(1, lambda a, b: a * b, "product")
        for i in (2, 3, 4):
            acc.add(i)
        assert acc.value == 24
        assert "product" in repr(acc)

    def test_thread_safety(self):
        acc = long_accumulator()

        def bump():
            for _ in range(10_000):
                acc.add(1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert acc.value == 40_000

    def test_tasks_update_accumulator(self, ctx):
        seen = ctx.long_accumulator("seen")

        def note(x: int) -> int:
            seen.add(1)
            return x

        ctx.parallelize(range(100), 8).map(note).count()
        assert seen.value == 100

    def test_bad_record_sampling_pattern(self, ctx):
        bad = ctx.list_accumulator("bad-records")

        def parse(x):
            if x % 10 == 0:
                bad.add(x)
                return None
            return x

        good = (
            ctx.parallelize(range(50), 4)
            .map(parse)
            .filter(lambda v: v is not None)
            .count()
        )
        assert good == 45
        assert sorted(bad.value) == [0, 10, 20, 30, 40]
