"""Tests for the block manager (cache) and size estimation."""

from __future__ import annotations

import threading

from repro.engine.cache import BlockManager, estimate_size


class TestEstimateSize:
    def test_monotone_in_length(self):
        assert estimate_size(list(range(1000))) > estimate_size(list(range(10)))

    def test_handles_nested_containers(self):
        nested = [[i] * 10 for i in range(100)]
        assert estimate_size(nested) > estimate_size([])

    def test_dict_counts_keys_and_values(self):
        d = {i: "x" * 100 for i in range(100)}
        assert estimate_size(d) > estimate_size({})

    def test_bytes_are_terminal(self):
        assert estimate_size(b"x" * 10_000) >= 10_000


class TestBlockManager:
    def test_get_miss_then_hit(self):
        bm = BlockManager(1 << 20)
        assert bm.get(("rdd", 0)) is None
        bm.put(("rdd", 0), [1, 2, 3])
        assert bm.get(("rdd", 0)) == [1, 2, 3]
        stats = bm.stats.snapshot()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_get_or_compute_computes_once(self):
        bm = BlockManager(1 << 20)
        calls = []

        def compute():
            calls.append(1)
            return [42]

        assert bm.get_or_compute("k", compute) == [42]
        assert bm.get_or_compute("k", compute) == [42]
        assert len(calls) == 1

    def test_lru_eviction_order(self):
        bm = BlockManager(estimate_size([0] * 100) * 2 + 64)
        bm.put("a", [0] * 100)
        bm.put("b", [0] * 100)
        bm.get("a")  # refresh a → b is now least recent
        bm.put("c", [0] * 100)
        assert bm.contains("a")
        assert not bm.contains("b")
        assert bm.contains("c")
        assert bm.stats.snapshot()["evictions"] >= 1

    def test_block_larger_than_capacity_not_stored(self):
        bm = BlockManager(128)
        assert bm.put("big", list(range(10_000))) is False
        assert not bm.contains("big")

    def test_put_replaces_and_accounts(self):
        bm = BlockManager(1 << 20)
        bm.put("k", [1] * 100)
        before = bm.stats.snapshot()["stored_bytes"]
        bm.put("k", [1] * 10)
        after = bm.stats.snapshot()["stored_bytes"]
        assert after < before
        assert len(bm) == 1

    def test_remove_rdd_scoped(self):
        bm = BlockManager(1 << 20)
        bm.put((1, 0), "a")
        bm.put((1, 1), "b")
        bm.put((2, 0), "c")
        assert bm.remove_rdd(1) == 2
        assert not bm.contains((1, 0))
        assert bm.contains((2, 0))

    def test_clear(self):
        bm = BlockManager(1 << 20)
        bm.put("x", [1])
        bm.clear()
        assert len(bm) == 0
        assert bm.stats.snapshot()["stored_bytes"] == 0

    def test_thread_safety_smoke(self):
        bm = BlockManager(1 << 22)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    bm.put((base, i), [i] * 10)
                    bm.get((base, i % 50))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
