"""Tests for broadcast variables."""

from __future__ import annotations

import pytest

from repro.errors import EngineError


class TestBroadcast:
    def test_value_shared_with_tasks(self, ctx):
        table = ctx.broadcast({1: "one", 2: "two"})
        rdd = ctx.parallelize([1, 2, 1], 2).map(lambda k: table.value[k])
        assert rdd.collect() == ["one", "two", "one"]

    def test_destroy_invalidates(self, ctx):
        b = ctx.broadcast([1, 2, 3])
        b.destroy()
        with pytest.raises(EngineError):
            _ = b.value

    def test_ids_unique(self, ctx):
        assert ctx.broadcast(1).broadcast_id != ctx.broadcast(1).broadcast_id

    def test_repr_reflects_state(self, ctx):
        b = ctx.broadcast("x")
        assert "valid" in repr(b)
        b.destroy()
        assert "destroyed" in repr(b)
