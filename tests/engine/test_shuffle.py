"""Tests for the shuffle manager and shuffle dependencies."""

from __future__ import annotations

import threading

import pytest

from repro.engine.partitioner import HashPartitioner
from repro.engine.shuffle import Aggregator, ShuffleDependency, ShuffleManager
from repro.errors import EngineError


def make_dep(num_partitions: int = 4, **kwargs) -> ShuffleDependency:
    return ShuffleDependency(None, HashPartitioner(num_partitions), **kwargs)


class TestShuffleManager:
    def test_write_then_fetch(self):
        manager = ShuffleManager()
        dep = make_dep(2)
        manager.register_shuffle(dep.shuffle_id, num_maps=2)
        manager.write_map_output(dep, 0, [(0, "a"), (1, "b")])
        manager.write_map_output(dep, 1, [(2, "c")])
        fetched = {
            reduce_index: sorted(manager.fetch(dep.shuffle_id, reduce_index))
            for reduce_index in range(2)
        }
        all_records = [r for rs in fetched.values() for r in rs]
        assert sorted(all_records) == [(0, "a"), (1, "b"), (2, "c")]
        # every record went to the partitioner-selected bucket
        for reduce_index, records in fetched.items():
            for key, _v in records:
                assert dep.partitioner.partition(key) == reduce_index

    def test_fetch_unregistered_raises(self):
        manager = ShuffleManager()
        with pytest.raises(EngineError):
            list(manager.fetch(12345, 0))

    def test_fetch_incomplete_raises(self):
        manager = ShuffleManager()
        dep = make_dep(2)
        manager.register_shuffle(dep.shuffle_id, num_maps=3)
        manager.write_map_output(dep, 0, [])
        with pytest.raises(EngineError, match="incomplete"):
            list(manager.fetch(dep.shuffle_id, 0))

    def test_register_idempotent(self):
        manager = ShuffleManager()
        dep = make_dep()
        manager.register_shuffle(dep.shuffle_id, 1)
        manager.write_map_output(dep, 0, [(1, 1)])
        manager.register_shuffle(dep.shuffle_id, 1)  # must not reset
        assert manager.is_complete(dep.shuffle_id)

    def test_map_side_combine(self):
        manager = ShuffleManager()
        agg = Aggregator(create=lambda v: v, merge=lambda a, b: a + b, combine=lambda a, b: a + b)
        dep = make_dep(1, aggregator=agg, map_side_combine=True)
        manager.register_shuffle(dep.shuffle_id, 1)
        manager.write_map_output(dep, 0, [("k", 1)] * 100)
        records = list(manager.fetch(dep.shuffle_id, 0))
        assert records == [("k", 100)]  # combined before the wire

    def test_map_side_combine_requires_aggregator(self):
        with pytest.raises(EngineError):
            make_dep(map_side_combine=True)

    def test_remove_shuffle(self):
        manager = ShuffleManager()
        dep = make_dep(1)
        manager.register_shuffle(dep.shuffle_id, 1)
        manager.write_map_output(dep, 0, [(1, 1)])
        manager.remove_shuffle(dep.shuffle_id)
        with pytest.raises(EngineError):
            list(manager.fetch(dep.shuffle_id, 0))

    def test_concurrent_map_writes(self):
        manager = ShuffleManager()
        dep = make_dep(4)
        num_maps = 16
        manager.register_shuffle(dep.shuffle_id, num_maps)

        def write(map_index: int) -> None:
            manager.write_map_output(
                dep, map_index, [(map_index * 10 + j, map_index) for j in range(10)]
            )

        threads = [threading.Thread(target=write, args=(i,)) for i in range(num_maps)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert manager.is_complete(dep.shuffle_id)
        total = sum(len(list(manager.fetch(dep.shuffle_id, r))) for r in range(4))
        assert total == num_maps * 10

    def test_stats(self):
        manager = ShuffleManager()
        dep = make_dep(2)
        manager.register_shuffle(dep.shuffle_id, 1)
        manager.write_map_output(dep, 0, [(i, i) for i in range(7)])
        stats = manager.stats()
        assert stats["shuffles"] == 1
        assert stats["records"] == 7

    def test_shuffle_ids_unique(self):
        ids = {make_dep().shuffle_id for _ in range(10)}
        assert len(ids) == 10
