"""Tests for RDD transformations and actions."""

from __future__ import annotations

import pytest

from repro.engine.partitioner import HashPartitioner
from repro.errors import EngineError


class TestNarrowTransformations:
    def test_map(self, ctx):
        assert ctx.parallelize([1, 2, 3], 2).map(lambda x: x * 2).collect() == [2, 4, 6]

    def test_filter(self, ctx):
        rdd = ctx.parallelize(range(10), 3).filter(lambda x: x % 2 == 0)
        assert rdd.collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self, ctx):
        rdd = ctx.parallelize([1, 2], 1).flat_map(lambda x: [x] * x)
        assert rdd.collect() == [1, 2, 2]

    def test_map_partitions_sees_whole_partition(self, ctx):
        rdd = ctx.parallelize(range(10), 2).map_partitions(lambda it: [sum(it)])
        assert sorted(rdd.collect()) == [10, 35]

    def test_map_partitions_with_index(self, ctx):
        rdd = ctx.parallelize(range(4), 2).map_partitions_with_index(
            lambda i, it: [(i, list(it))]
        )
        assert rdd.collect() == [(0, [0, 1]), (1, [2, 3])]

    def test_glom(self, ctx):
        assert ctx.parallelize([1, 2, 3, 4], 2).glom().collect() == [[1, 2], [3, 4]]

    def test_key_by(self, ctx):
        assert ctx.parallelize([1, 2], 1).key_by(lambda x: -x).collect() == [
            (-1, 1),
            (-2, 2),
        ]

    def test_union_concatenates(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize([3], 1)
        u = a.union(b)
        assert u.num_partitions == 3
        assert u.collect() == [1, 2, 3]

    def test_zip_with_index_is_global(self, ctx):
        rdd = ctx.parallelize(list("abcde"), 3).zip_with_index()
        assert rdd.collect() == [(c, i) for i, c in enumerate("abcde")]

    def test_sample_deterministic(self, ctx):
        rdd = ctx.parallelize(range(1000), 4)
        first = rdd.sample(0.1, seed=3).collect()
        second = rdd.sample(0.1, seed=3).collect()
        assert first == second
        assert 20 < len(first) < 300

    def test_sample_fraction_bounds(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 1).sample(1.5)

    def test_filter_preserves_partitioner(self, ctx):
        pairs = ctx.parallelize([(i, i) for i in range(20)], 2)
        shuffled = pairs.partition_by(HashPartitioner(4))
        filtered = shuffled.filter(lambda kv: kv[0] > 5)
        assert filtered.partitioner == HashPartitioner(4)


class TestWideTransformations:
    def test_partition_by_routes_keys(self, ctx):
        pairs = ctx.parallelize([(i, i) for i in range(40)], 4)
        shuffled = pairs.partition_by(HashPartitioner(5))
        parts = shuffled.glom().collect()
        partitioner = HashPartitioner(5)
        for index, part in enumerate(parts):
            for key, _value in part:
                assert partitioner.partition(key) == index

    def test_partition_by_noop_when_co_partitioned(self, ctx):
        pairs = ctx.parallelize([(i, i) for i in range(10)], 2)
        once = pairs.partition_by(HashPartitioner(4))
        twice = once.partition_by(HashPartitioner(4))
        assert twice is once

    def test_reduce_by_key(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(30)], 4)
        assert dict(pairs.reduce_by_key(lambda a, b: a + b).collect()) == {
            0: 10,
            1: 10,
            2: 10,
        }

    def test_group_by_key(self, ctx):
        pairs = ctx.parallelize([(1, "a"), (2, "b"), (1, "c")], 2)
        grouped = dict(pairs.group_by_key().collect())
        assert sorted(grouped[1]) == ["a", "c"]
        assert grouped[2] == ["b"]

    def test_combine_by_key_mean(self, ctx):
        pairs = ctx.parallelize([(1, 2.0), (1, 4.0), (2, 6.0)], 2)
        combined = pairs.combine_by_key(
            create=lambda v: (v, 1),
            merge=lambda acc, v: (acc[0] + v, acc[1] + 1),
            combine=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        means = {k: s / n for k, (s, n) in combined.collect()}
        assert means == {1: 3.0, 2: 6.0}

    def test_cogroup(self, ctx):
        left = ctx.parallelize([(1, "a"), (2, "b")], 2)
        right = ctx.parallelize([(1, "x"), (3, "y")], 2)
        grouped = dict(
            (k, (sorted(ls), sorted(rs)))
            for k, (ls, rs) in left.cogroup(right).collect()
        )
        assert grouped == {1: (["a"], ["x"]), 2: (["b"], []), 3: ([], ["y"])}

    def test_join_pairs_inner(self, ctx):
        left = ctx.parallelize([(1, "a"), (1, "b"), (2, "c")], 2)
        right = ctx.parallelize([(1, "x")], 1)
        assert sorted(left.join_pairs(right).collect()) == [
            (1, ("a", "x")),
            (1, ("b", "x")),
        ]

    def test_distinct(self, ctx):
        assert sorted(ctx.parallelize([1, 2, 2, 3, 3, 3], 3).distinct().collect()) == [
            1,
            2,
            3,
        ]

    def test_sort_by_ascending_and_descending(self, ctx):
        data = [5, 1, 4, 2, 3, 9, 7, 8, 6, 0]
        rdd = ctx.parallelize(data, 3)
        assert rdd.sort_by(lambda x: x).collect() == sorted(data)
        assert rdd.sort_by(lambda x: x, ascending=False).collect() == sorted(
            data, reverse=True
        )

    def test_sort_by_single_computation(self, ctx):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        ctx.parallelize(range(50), 2).map(spy).sort_by(lambda x: x).collect()
        # The upstream map must run exactly once per element (the sort
        # materializes before sampling).
        assert len(calls) == 50

    def test_count_by_key(self, ctx):
        pairs = ctx.parallelize([(1, "x"), (1, "y"), (2, "z")], 2)
        assert pairs.count_by_key() == {1: 2, 2: 1}


class TestActions:
    def test_collect_preserves_partition_order(self, ctx):
        assert ctx.parallelize(range(10), 3).collect() == list(range(10))

    def test_count(self, ctx):
        assert ctx.parallelize(range(101), 7).count() == 101

    def test_take_stops_early(self, ctx):
        seen = []

        def spy(x):
            seen.append(x)
            return x

        result = ctx.parallelize(range(100), 10).map(spy).take(3)
        assert result == [0, 1, 2]
        assert len(seen) < 100  # did not materialize everything

    def test_take_more_than_available(self, ctx):
        assert ctx.parallelize([1, 2], 2).take(10) == [1, 2]

    def test_take_zero(self, ctx):
        assert ctx.parallelize([1], 1).take(0) == []

    def test_first(self, ctx):
        assert ctx.parallelize([7, 8], 2).first() == 7

    def test_first_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.empty_rdd().first()

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(1, 5), 2).reduce(lambda a, b: a * b) == 24

    def test_reduce_with_empty_partitions(self, ctx):
        assert ctx.parallelize([5], 4).reduce(lambda a, b: a + b) == 5

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.empty_rdd().reduce(lambda a, b: a + b)

    def test_fold(self, ctx):
        assert ctx.parallelize(range(5), 2).fold(0, lambda a, b: a + b) == 10

    def test_sum(self, ctx):
        assert ctx.parallelize(range(10), 3).sum() == 45


class TestCaching:
    def test_cache_avoids_recompute(self, ctx):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(range(10), 2).map(spy).cache()
        assert rdd.count() == 10
        assert rdd.count() == 10
        assert len(calls) == 10  # second count served from cache

    def test_unpersist_recomputes(self, ctx):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(range(4), 1).map(spy).cache()
        rdd.count()
        rdd.unpersist()
        assert not rdd.is_cached
        rdd.count()
        assert len(calls) == 8

    def test_cached_shuffle_output_stable(self, ctx):
        pairs = ctx.parallelize([(i % 5, 1) for i in range(50)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b).cache()
        first = sorted(reduced.collect())
        second = sorted(reduced.collect())
        assert first == second == [(k, 10) for k in range(5)]
