"""Adaptive exchange: runtime coalescing of tiny reduce partitions.

The scheduler merges adjacent reduce buckets from recorded map-output
sizes. The tests pin down both directions of the contract: when it may
fire (internal aggregation shuffles) and when it must not (explicit
placement, index-sensitive jobs, the knob off).
"""

from __future__ import annotations

import pytest

from repro.engine.context import EngineContext
from repro.engine.partitioner import HashPartitioner
from tests.conftest import small_config


@pytest.fixture()
def adaptive_ctx():
    context = EngineContext(
        small_config(shuffle_partitions=16, adaptive_enabled=True)
    )
    yield context
    context.stop()


@pytest.fixture()
def static_ctx():
    context = EngineContext(
        small_config(shuffle_partitions=16, adaptive_enabled=False)
    )
    yield context
    context.stop()


def tiny_reduce(ctx, n_keys=4, rows=200):
    return (
        ctx.parallelize([(i % n_keys, 1) for i in range(rows)], 4)
        .reduce_by_key(lambda a, b: a + b, num_partitions=16)
    )


class TestCoalescing:
    def test_fires_and_preserves_results(self, adaptive_ctx, static_ctx):
        expected = sorted(tiny_reduce(static_ctx).collect())
        before = adaptive_ctx.scheduler.metrics.snapshot()
        got = sorted(tiny_reduce(adaptive_ctx).collect())
        after = adaptive_ctx.scheduler.metrics.snapshot()
        assert got == expected == [(k, 50) for k in range(4)]
        assert after["coalesced_shuffles"] > before["coalesced_shuffles"]
        assert after["coalesced_partitions"] > before["coalesced_partitions"]

    def test_static_never_coalesces(self, static_ctx):
        tiny_reduce(static_ctx).collect()
        assert static_ctx.scheduler.metrics.snapshot()["coalesced_shuffles"] == 0

    def test_downstream_ops_see_merged_partitions(self, adaptive_ctx):
        result = (
            tiny_reduce(adaptive_ctx)
            .map(lambda kv: (kv[0], kv[1] * 2))
            .collect()
        )
        assert sorted(result) == [(k, 100) for k in range(4)]

    def test_chained_shuffles_coalesce_independently(self, adaptive_ctx):
        rdd = (
            tiny_reduce(adaptive_ctx)
            .map(lambda kv: (kv[1], kv[0]))
            .group_by_key(num_partitions=16)
        )
        result = {k: sorted(v) for k, v in rdd.collect()}
        assert result == {50: [0, 1, 2, 3]}
        metrics = adaptive_ctx.scheduler.metrics.snapshot()
        assert metrics["coalesced_shuffles"] >= 2


class TestCoalescingExclusions:
    def test_partition_by_is_a_placement_contract(self, adaptive_ctx):
        partitioner = HashPartitioner(16)
        rdd = (
            adaptive_ctx.parallelize([(i, i) for i in range(32)], 4)
            .partition_by(partitioner)
        )
        parts = adaptive_ctx.run_job(rdd, list)
        assert len(parts) == 16
        for index, part in enumerate(parts):
            for key, _value in part:
                assert partitioner.partition(key) == index

    def test_explicit_partitions_skip_coalescing(self, adaptive_ctx):
        rdd = tiny_reduce(adaptive_ctx)
        before = adaptive_ctx.scheduler.metrics.snapshot()["coalesced_shuffles"]
        parts = adaptive_ctx.run_job(rdd, list, partitions=[0, 3, 7])
        after = adaptive_ctx.scheduler.metrics.snapshot()["coalesced_shuffles"]
        assert after == before
        assert len(parts) == 3

    def test_index_sensitive_job_skips_coalescing(self, adaptive_ctx):
        rdd = tiny_reduce(adaptive_ctx).map_partitions_with_index(
            lambda index, it: [(index, sum(1 for _ in it))]
        )
        counts = dict(rdd.collect())
        assert len(counts) == 16  # partition numbering preserved
        assert sum(counts.values()) == 4
        metrics = adaptive_ctx.scheduler.metrics.snapshot()
        assert metrics["coalesced_shuffles"] == 0


class TestShuffleSizes:
    def test_reduce_sizes_recorded(self, adaptive_ctx):
        rdd = tiny_reduce(adaptive_ctx)
        rdd.collect()
        sizes = adaptive_ctx.shuffle_manager.reduce_sizes(rdd.shuffle_dep.shuffle_id)
        assert sizes is not None and len(sizes) == 16
        # map-side combine: each of the 4 map tasks emits one combined
        # record per key, so 16 records land in the key buckets
        total_rows = sum(rows for rows, _bytes in sizes)
        assert total_rows == 16
        # only the 4 key buckets are non-empty
        assert sum(1 for rows, _ in sizes if rows) == len(
            {HashPartitioner(16).partition(k) for k in range(4)}
        )
