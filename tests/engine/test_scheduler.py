"""Tests for the DAG scheduler: stages, task failures, metrics."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.engine.context import EngineContext
from repro.errors import TaskError


class TestStagePlanning:
    def test_narrow_only_is_single_stage(self, ctx):
        before = ctx.scheduler.metrics.stages
        ctx.parallelize(range(10), 2).map(lambda x: x).count()
        assert ctx.scheduler.metrics.stages - before == 1

    def test_shuffle_adds_map_stage(self, ctx):
        before = ctx.scheduler.metrics.stages
        ctx.parallelize([(1, 1)], 2).reduce_by_key(lambda a, b: a + b).count()
        assert ctx.scheduler.metrics.stages - before == 2

    def test_chained_shuffles(self, ctx):
        before = ctx.scheduler.metrics.stages
        (
            ctx.parallelize([(i % 3, 1) for i in range(30)], 3)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[1], kv[0]))
            .group_by_key()
            .count()
        )
        assert ctx.scheduler.metrics.stages - before == 3

    def test_shuffle_reused_across_jobs(self, ctx):
        rdd = ctx.parallelize([(i % 3, 1) for i in range(30)], 3).reduce_by_key(
            lambda a, b: a + b
        )
        rdd.count()
        stages_after_first = ctx.scheduler.metrics.stages
        rdd.count()  # map outputs already exist → result stage only
        assert ctx.scheduler.metrics.stages - stages_after_first == 1

    def test_task_counts(self, ctx):
        before = ctx.scheduler.metrics.tasks
        ctx.parallelize(range(10), 5).count()
        assert ctx.scheduler.metrics.tasks - before == 5


class TestFailures:
    def test_task_error_wraps_cause(self, ctx):
        def boom(x):
            raise ValueError("kaput")

        with pytest.raises(TaskError) as exc_info:
            ctx.parallelize([1], 1).map(boom).collect()
        assert isinstance(exc_info.value.cause, ValueError)
        assert "kaput" in str(exc_info.value)

    def test_failure_in_one_partition_fails_job(self, ctx):
        def boom_on_five(x):
            if x == 5:
                raise RuntimeError("partition failure")
            return x

        with pytest.raises(TaskError):
            ctx.parallelize(range(10), 5).map(boom_on_five).collect()

    def test_map_stage_failure_propagates(self, ctx):
        def bad_key(x):
            raise KeyError(x)

        rdd = ctx.parallelize([1, 2], 2).map(bad_key).map(lambda v: (v, 1))
        with pytest.raises(TaskError):
            rdd.reduce_by_key(lambda a, b: a + b).collect()

    def test_engine_usable_after_failure(self, ctx):
        with pytest.raises(TaskError):
            ctx.parallelize([1], 1).map(lambda _x: 1 / 0).collect()
        assert ctx.parallelize([1, 2], 2).sum() == 3


class TestParallelism:
    def test_single_thread_config_works(self):
        with EngineContext(Config(executor_threads=1, default_parallelism=2)) as ctx:
            assert ctx.parallelize(range(100), 8).sum() == 4950

    def test_many_threads_correct(self):
        with EngineContext(Config(executor_threads=8, default_parallelism=8)) as ctx:
            pairs = ctx.parallelize([(i % 17, 1) for i in range(1000)], 16)
            counts = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
            assert sum(counts.values()) == 1000

    def test_stopped_context_rejects_jobs(self):
        ctx = EngineContext(Config())
        rdd = ctx.parallelize([1], 1)
        ctx.stop()
        with pytest.raises(RuntimeError):
            rdd.collect()


class TestMetricsSnapshot:
    def test_snapshot_includes_every_counter(self, ctx):
        snap = ctx.scheduler.metrics.snapshot()
        for key in (
            "jobs",
            "stages",
            "tasks",
            "task_failures",
            "task_retries",
            "fetch_failures",
            "recomputed_map_stages",
            "speculative_tasks",
            "speculative_wins",
            "stage_timeouts",
            "index_fallbacks",
            "coalesced_shuffles",
            "coalesced_partitions",
            "runtime_broadcast_joins",
        ):
            assert key in snap, key
        assert snap["stage_timeouts"] == 0

    def test_timed_out_stage_bumps_snapshot_exactly_once(self):
        # _StageClock is the single bump site for ``stage_timeouts``; a
        # timed-out stage must count once in the snapshot no matter how
        # many driver-loop ticks observe the expired deadline.
        import time

        from repro.errors import StageTimeoutError

        context = EngineContext(
            Config(executor_threads=2, stage_timeout_s=0.05, task_max_retries=3)
        )
        try:
            with pytest.raises(StageTimeoutError):
                context.parallelize(range(4), 4).map(
                    lambda x: time.sleep(0.4) or x
                ).collect()
            assert context.scheduler.metrics.snapshot()["stage_timeouts"] == 1
        finally:
            context.stop()
