"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    AnalysisError,
    CapacityError,
    ConcurrencyError,
    EngineError,
    IndexError_,
    ParseError,
    PlanningError,
    ReproError,
    SchemaError,
    StreamingError,
    TaskError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            AnalysisError,
            CapacityError,
            ConcurrencyError,
            EngineError,
            IndexError_,
            ParseError,
            PlanningError,
            SchemaError,
            StreamingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_capacity_is_index_error(self):
        assert issubclass(CapacityError, IndexError_)

    def test_task_error_is_engine_error(self):
        assert issubclass(TaskError, EngineError)

    def test_one_catch_all(self):
        with pytest.raises(ReproError):
            raise ParseError("boom")


class TestTaskError:
    def test_carries_location_and_cause(self):
        cause = ValueError("inner")
        error = TaskError(stage_id=3, partition=7, cause=cause)
        assert error.stage_id == 3 and error.partition == 7
        assert error.cause is cause
        assert "stage 3" in str(error) and "partition 7" in str(error)


class TestParseError:
    def test_position_in_message(self):
        assert "(at position 12)" in str(ParseError("bad token", position=12))
        assert "position" not in str(ParseError("bad token"))
