"""Tests for the benchmark harness utilities."""

from __future__ import annotations

import time

from repro.bench import BenchResult, Timer, compare_table, median_ms, time_fn


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed_ms >= 8


class TestTimeFn:
    def test_returns_requested_repeats(self):
        calls = []
        timings = time_fn(lambda: calls.append(1), repeats=4, warmup=2)
        assert len(timings) == 4
        assert len(calls) == 6  # warmups run but are not reported

    def test_median(self):
        value = median_ms(lambda: None, repeats=5, warmup=0)
        assert value >= 0


class TestBenchResult:
    def test_speedup(self):
        assert BenchResult("x", indexed_ms=2.0, vanilla_ms=8.0).speedup == 4.0
        assert BenchResult("x", indexed_ms=0.0, vanilla_ms=1.0).speedup == float("inf")

    def test_compare_table_format(self):
        table = compare_table(
            "Demo",
            [
                BenchResult("Join", 10.0, 80.0),
                BenchResult("Projection", 50.0, 5.0),
            ],
        )
        assert "Demo" in table
        assert "8.00x" in table
        assert "0.10x" in table
        assert "max speedup: 8.0x on Join" in table
        assert "paper reports up to 8x" in table

    def test_compare_table_empty(self):
        assert "speedup" in compare_table("Empty", [])


class TestWorkloads:
    def test_figure2_operators_agree(self):
        from repro.bench import figure2_session, operator_workload

        setup = figure2_session(scale_factor=0.1, threads=2, shuffle_partitions=2)
        try:
            ops = operator_workload(setup)
            assert set(ops) == {
                "Join", "Filter", "Equality Filter", "Aggregation",
                "Projection", "Scan",
            }
            for name, (indexed_fn, vanilla_fn) in ops.items():
                assert indexed_fn() == vanilla_fn(), name
        finally:
            setup.session.stop()

    def test_figure3_contexts_agree(self):
        from repro.bench import figure3_contexts
        from repro.snb import ALL_QUERIES, run_query

        setup = figure3_contexts(scale_factor=0.1, threads=2, shuffle_partitions=2)
        try:
            for name, (_fn, kind) in ALL_QUERIES.items():
                param = (
                    setup.person_param if kind == "person" else setup.message_param
                )
                vanilla = sorted(map(tuple, run_query(setup.vanilla, name, param)))
                indexed = sorted(map(tuple, run_query(setup.indexed, name, param)))
                assert vanilla == indexed, name
        finally:
            setup.session.stop()
