"""Tests for micro-batch ingestion into Indexed DataFrames."""

from __future__ import annotations

import time

import pytest

from repro.core import create_index
from repro.streaming import Broker, IndexedIngest, Producer

SCHEMA = [("id", "long"), ("payload", "string")]


@pytest.fixture()
def world(indexed_session):
    broker = Broker()
    broker.create_topic("rows", partitions=2)
    base = indexed_session.create_dataframe(
        [(i, f"base{i}") for i in range(50)], SCHEMA
    )
    indexed = create_index(base, "id")
    return broker, indexed


class TestStep:
    def test_idle_step_is_noop(self, world):
        broker, indexed = world
        ingest = IndexedIngest(broker, "rows", indexed)
        assert ingest.step() == 0
        assert ingest.current is indexed

    def test_step_applies_one_batch(self, world):
        broker, indexed = world
        producer = Producer(broker, "rows")
        producer.send_all([(100 + i, f"s{i}") for i in range(30)], key_fn=lambda r: r[0])
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=20)
        assert ingest.step() == 20
        assert ingest.step() == 10
        assert ingest.current.count() == 80
        assert ingest.batches_applied == 2
        assert ingest.rows_applied == 30

    def test_drain(self, world):
        broker, indexed = world
        Producer(broker, "rows").send_all([(200 + i, "x") for i in range(55)])
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=10)
        assert ingest.drain() == 55
        assert ingest.current.lookup_latest(254) == (254, "x")

    def test_versions_advance_per_batch(self, world):
        broker, indexed = world
        Producer(broker, "rows").send_all([(300 + i, "x") for i in range(20)])
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=10)
        v0 = ingest.current.version_id
        ingest.step()
        v1 = ingest.current.version_id
        ingest.step()
        v2 = ingest.current.version_id
        assert v0 < v1 < v2

    def test_on_batch_callback(self, world):
        broker, indexed = world
        Producer(broker, "rows").send_all([(400, "x"), (401, "y")])
        seen = []
        ingest = IndexedIngest(
            broker, "rows", indexed, on_batch=lambda df, n: seen.append(n)
        )
        ingest.drain()
        assert seen == [2]


class TestConcurrentReaders:
    def test_reader_holds_stable_version_during_ingest(self, world):
        broker, indexed = world
        producer = Producer(broker, "rows")
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=5)

        held = ingest.current  # a dashboard holding version N
        producer.send_all([(500 + i, "later") for i in range(25)])
        ingest.drain()
        assert held.count() == 50  # unchanged
        assert ingest.current.count() == 75

    def test_background_thread_ingestion(self, world):
        broker, indexed = world
        producer = Producer(broker, "rows")
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=10)
        ingest.start(poll_interval=0.005)
        try:
            producer.send_all([(600 + i, "bg") for i in range(100)])
            deadline = time.time() + 5.0
            while ingest.current.count() < 150 and time.time() < deadline:
                time.sleep(0.01)
            assert ingest.current.count() == 150
        finally:
            ingest.stop()

    def test_stop_is_idempotent(self, world):
        broker, indexed = world
        ingest = IndexedIngest(broker, "rows", indexed)
        ingest.start()
        ingest.stop()
        ingest.stop()
        ingest.start()
        ingest.stop()
