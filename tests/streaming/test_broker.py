"""Tests for the in-process broker, producer, and consumer."""

from __future__ import annotations

import threading

import pytest

from repro.errors import StreamingError
from repro.streaming import Broker, Consumer, Producer, TopicPartition


@pytest.fixture()
def broker():
    b = Broker()
    b.create_topic("updates", partitions=3)
    return b


class TestBroker:
    def test_create_and_list_topics(self, broker):
        broker.create_topic("other")
        assert broker.topics() == ["other", "updates"]
        assert broker.num_partitions("updates") == 3

    def test_duplicate_topic_rejected(self, broker):
        with pytest.raises(StreamingError):
            broker.create_topic("updates")

    def test_unknown_topic(self, broker):
        with pytest.raises(StreamingError):
            broker.append("ghost", 0, None, "x")

    def test_partition_out_of_range(self, broker):
        with pytest.raises(StreamingError):
            broker.append("updates", 7, None, "x")

    def test_offsets_are_dense_per_partition(self, broker):
        assert broker.append("updates", 0, None, "a") == 0
        assert broker.append("updates", 0, None, "b") == 1
        assert broker.append("updates", 1, None, "c") == 0
        assert broker.end_offset(TopicPartition("updates", 0)) == 2

    def test_read_from_offset(self, broker):
        for i in range(10):
            broker.append("updates", 0, None, i)
        records = broker.read(TopicPartition("updates", 0), 4, 3)
        assert [r.value for r in records] == [4, 5, 6]

    def test_records_immutable_replayable(self, broker):
        broker.append("updates", 0, "k", "v")
        tp = TopicPartition("updates", 0)
        assert broker.read(tp, 0, 10)[0].value == "v"
        assert broker.read(tp, 0, 10)[0].value == "v"  # re-read OK

    def test_zero_partition_topic_rejected(self, broker):
        with pytest.raises(StreamingError):
            broker.create_topic("bad", partitions=0)


class TestProducer:
    def test_keyed_records_stick_to_partition(self, broker):
        producer = Producer(broker, "updates")
        partitions = {producer.send(f"v{i}", key="stable")[0] for i in range(10)}
        assert len(partitions) == 1

    def test_keyless_round_robin(self, broker):
        producer = Producer(broker, "updates")
        partitions = [producer.send(i)[0] for i in range(6)]
        assert partitions == [0, 1, 2, 0, 1, 2]

    def test_send_all_with_key_fn(self, broker):
        producer = Producer(broker, "updates")
        count = producer.send_all(range(30), key_fn=lambda v: v % 5)
        assert count == 30
        assert broker.total_records("updates") == 30


class TestConsumer:
    def test_poll_advances(self, broker):
        producer = Producer(broker, "updates")
        producer.send_all(range(10))
        consumer = Consumer(broker, "updates", group="g1")
        first = consumer.poll(6)
        second = consumer.poll(6)
        assert len(first) == 6 and len(second) == 4
        assert consumer.poll(6) == []

    def test_lag(self, broker):
        producer = Producer(broker, "updates")
        producer.send_all(range(9))
        consumer = Consumer(broker, "updates", group="g2")
        assert consumer.lag() == 9
        consumer.poll(4)
        assert consumer.lag() == 5

    def test_commit_resumes_group(self, broker):
        producer = Producer(broker, "updates")
        producer.send_all(range(10))
        first = Consumer(broker, "updates", group="shared")
        first.poll(7)
        first.commit()
        resumed = Consumer(broker, "updates", group="shared")
        assert len(resumed.poll(100)) == 3

    def test_uncommitted_restart_replays(self, broker):
        producer = Producer(broker, "updates")
        producer.send_all(range(10))
        first = Consumer(broker, "updates", group="flaky")
        first.poll(7)  # never commits
        restarted = Consumer(broker, "updates", group="flaky")
        assert len(restarted.poll(100)) == 10  # at-least-once

    def test_seek_to_beginning(self, broker):
        producer = Producer(broker, "updates")
        producer.send_all(range(5))
        consumer = Consumer(broker, "updates", group="g3")
        consumer.poll(5)
        consumer.seek_to_beginning()
        assert len(consumer.poll(100)) == 5

    def test_values_helper(self, broker):
        Producer(broker, "updates").send_all(["a", "b"])
        assert sorted(Consumer(broker, "updates", group="g4").values()) == ["a", "b"]

    def test_producer_consumer_across_threads(self, broker):
        producer = Producer(broker, "updates")
        consumer = Consumer(broker, "updates", group="live")
        received = []
        done = threading.Event()

        def produce():
            for i in range(300):
                producer.send(i, key=i % 7)
            done.set()

        def consume():
            while not done.is_set() or consumer.lag() > 0:
                received.extend(r.value for r in consumer.poll(50))

        threads = [threading.Thread(target=produce), threading.Thread(target=consume)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(received) == list(range(300))
