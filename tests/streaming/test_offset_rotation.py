"""Broker offset rotation under concurrent consumers.

The committed-offset merge on the broker is advance-only per partition
(see :meth:`Broker.commit_offsets`). These tests pin down the property
that motivated it: a consumer crashing between poll and commit — or a
laggy member of the group committing stale positions late — must never
regress the group's committed offsets and thereby re-deliver records
another member already processed and committed.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import StreamingError
from repro.streaming import Broker, Consumer, Producer


def make_broker(records=60, partitions=3, topic="t"):
    broker = Broker()
    broker.create_topic(topic, partitions=partitions)
    producer = Producer(broker, topic)
    producer.send_all(
        [(i, f"v{i}") for i in range(records)], key_fn=lambda r: r[0]
    )
    return broker


class TestAdvanceOnlyCommit:
    def test_stale_commit_does_not_rewind(self):
        broker = make_broker()
        broker.commit_offsets("g", "t", {0: 10, 1: 7})
        broker.commit_offsets("g", "t", {0: 4, 1: 9, 2: 3})
        assert broker.committed_offsets("g", "t") == {0: 10, 1: 9, 2: 3}

    def test_crash_between_poll_and_commit_is_harmless(self):
        """Consumer A polls and commits; consumer B (same group) polled
        earlier, crashed before committing, and its stale in-memory
        positions are flushed late — the group must not move backward."""
        broker = make_broker()
        crasher = Consumer(broker, "t", group="g")
        crasher.poll(10)  # polled but will "crash" before committing
        worker = Consumer(broker, "t", group="g")
        worker.poll(40)
        worker.commit()
        committed = broker.committed_offsets("g", "t")
        # The crashed consumer's stale positions arrive after the fact
        # (e.g. a shutdown hook flushing state): a no-op, not a rewind.
        crasher.commit()
        assert broker.committed_offsets("g", "t") == committed

    def test_restart_resumes_from_high_watermark(self):
        broker = make_broker(records=30, partitions=2)
        first = Consumer(broker, "t", group="g")
        seen = {(r.partition, r.offset) for r in first.poll(100)}
        first.commit()
        # A restarted group member resumes past everything committed.
        second = Consumer(broker, "t", group="g")
        replayed = {(r.partition, r.offset) for r in second.poll(100)}
        assert not seen & replayed

    def test_groups_are_independent(self):
        broker = make_broker()
        broker.commit_offsets("g1", "t", {0: 10})
        broker.commit_offsets("g2", "t", {0: 3})
        assert broker.committed_offsets("g1", "t") == {0: 10}
        assert broker.committed_offsets("g2", "t") == {0: 3}

    def test_restore_matches_commit_semantics(self):
        """Crash-recovery restore obeys the same advance-only merge."""
        broker = make_broker()
        broker.commit_offsets("g", "t", {0: 8, 1: 2})
        broker.restore_committed_offsets("g", "t", {0: 5, 1: 6, 2: 1})
        assert broker.committed_offsets("g", "t") == {0: 8, 1: 6, 2: 1}


class TestConcurrentCommitters:
    def test_racing_commits_converge_to_per_partition_max(self):
        """Many threads committing interleaved positions: the final
        committed map is the per-partition max of everything offered,
        regardless of arrival order."""
        broker = Broker()
        broker.create_topic("t", partitions=4)
        offers = [
            {p: (i * 7 + p * 3) % 50 for p in range(4)} for i in range(32)
        ]
        barrier = threading.Barrier(8)

        def committer(chunk):
            barrier.wait()
            for positions in chunk:
                broker.commit_offsets("g", "t", positions)

        threads = [
            threading.Thread(target=committer, args=(offers[i::8],))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = {
            p: max(o.get(p, 0) for o in offers) for p in range(4)
        }
        assert broker.committed_offsets("g", "t") == expected

    def test_concurrent_poll_commit_never_regresses(self):
        """Consumers polling and committing concurrently while a
        producer appends: sampled committed offsets are monotone."""
        broker = Broker()
        broker.create_topic("t", partitions=2)
        producer = Producer(broker, "t")
        stop = threading.Event()
        regressions = []

        def produce():
            i = 0
            while not stop.is_set():
                producer.send(f"v{i}", key=i)
                i += 1

        def consume():
            consumer = Consumer(broker, "t", group="g")
            while not stop.is_set():
                if consumer.poll(5):
                    consumer.commit()

        def watch():
            last: dict[int, int] = {}
            while not stop.is_set():
                now = broker.committed_offsets("g", "t")
                for p, off in now.items():
                    if off < last.get(p, 0):
                        regressions.append((p, last[p], off))
                    last[p] = max(last.get(p, 0), off)

        threads = [
            threading.Thread(target=fn)
            for fn in (produce, consume, consume, watch)
        ]
        for t in threads:
            t.start()
        stop.wait(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert regressions == []


class TestRotationFairness:
    def test_poll_rotation_covers_all_partitions(self):
        """Small polls rotate their starting partition, so a busy
        partition 0 cannot starve the rest of the topic."""
        broker = Broker()
        broker.create_topic("t", partitions=3)
        for p in range(3):
            for i in range(10):
                broker.append("t", p, i, f"p{p}i{i}")
        consumer = Consumer(broker, "t", group="g")
        first_partition_per_poll = []
        for _ in range(6):
            records = consumer.poll(2)
            if records:
                first_partition_per_poll.append(records[0].partition)
        assert len(set(first_partition_per_poll)) == 3

    def test_unknown_topic_is_rejected(self):
        broker = Broker()
        with pytest.raises(StreamingError):
            broker.num_partitions("nope")
