"""Query-level differential: every query shape must return identical
rows with ``codegen_enabled`` on and off.

The compiled batch kernels replace the hot loops of FilterExec,
ProjectExec, the hash joins/aggregates, and the indexed scan/lookup
operators — so each of those plans runs here in both modes against the
same data, NULLs included.
"""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.sql.functions import avg, col, count, lit, sum_
from repro.sql.session import Session

PEOPLE = [
    (1, "ann", 30, "nl"),
    (2, "bob", 25, "us"),
    (3, "cat", 35, "nl"),
    (4, "dan", 25, "de"),
    (5, None, 40, "us"),
    (6, "eve", None, None),
    (7, "fox", 25, "de"),
]
ORDERS = [
    (10, 1, 99.5),
    (11, 1, 15.0),
    (12, 3, 40.0),
    (13, 9, 7.0),
    (14, 2, None),
    (15, None, 3.0),
]
PEOPLE_SCHEMA = [("id", "long"), ("name", "string"), ("age", "long"),
                 ("country", "string")]
ORDERS_SCHEMA = [("oid", "long"), ("pid", "long"), ("amount", "double")]


def make_session(codegen_enabled: bool) -> Session:
    session = Session(
        Config(
            executor_threads=2,
            shuffle_partitions=3,
            default_parallelism=2,
            batch_size_bytes=64 * 1024,
            broadcast_threshold=2,  # exercise the shuffled join too
            codegen_enabled=codegen_enabled,
        )
    )
    enable_indexing(session)
    return session


@pytest.fixture()
def both_sessions():
    on, off = make_session(True), make_session(False)
    yield on, off
    on.stop()
    off.stop()


def run_both(both_sessions, query):
    on, off = both_sessions

    def result(session):
        people = session.create_dataframe(PEOPLE, PEOPLE_SCHEMA)
        orders = session.create_dataframe(ORDERS, ORDERS_SCHEMA)
        rows = query(people, orders).collect_tuples()
        return rows

    got, expected = result(on), result(off)
    return got, expected


NULL_LAST = object()


def _sortable(rows):
    return sorted(rows, key=lambda r: tuple((v is None, str(v)) for v in r))


QUERIES = {
    "filter-project-fused": lambda p, o: p.filter(
        (col("age") > 24) & (col("country") != "us")
    ).select(col("name"), (col("age") * lit(2)).alias("dbl")),
    "filter-only": lambda p, o: p.filter(col("age").is_not_null()),
    "project-only": lambda p, o: p.select(
        (col("id") + col("age")).alias("s"), col("country")
    ),
    "inner-join": lambda p, o: p.join(o, on=col("id") == col("pid")),
    "left-join": lambda p, o: p.join(o, on=col("id") == col("pid"), how="left"),
    "right-join": lambda p, o: p.join(o, on=col("id") == col("pid"), how="right"),
    "full-join": lambda p, o: p.join(o, on=col("id") == col("pid"), how="full"),
    "join-extra-condition": lambda p, o: p.join(
        o, on=(col("id") == col("pid")) & (col("amount") > 20.0)
    ),
    "aggregate": lambda p, o: p.group_by("country").agg(
        count().alias("n"), avg(col("age")).alias("avg_age")
    ),
    "aggregate-global": lambda p, o: o.group_by().agg(
        sum_(col("amount")).alias("total"), count().alias("n")
    ),
    "sort-limit": lambda p, o: p.order_by(col("age"), col("id")).limit(4),
    "distinct": lambda p, o: p.select(col("country")).distinct(),
    "union": lambda p, o: p.select(col("id")).union(o.select(col("pid"))),
}


@pytest.mark.parametrize("label", sorted(QUERIES))
def test_query_shapes_identical(both_sessions, label):
    got, expected = run_both(both_sessions, QUERIES[label])
    if label == "sort-limit":
        assert got == expected  # order is part of the contract here
    else:
        assert _sortable(got) == _sortable(expected)


def test_indexed_scan_lookup_and_join_identical():
    results = {}
    for mode in (True, False):
        session = make_session(mode)
        try:
            people = session.create_dataframe(PEOPLE, PEOPLE_SCHEMA)
            orders = session.create_dataframe(ORDERS, ORDERS_SCHEMA)
            indexed = create_index(people, "id")
            results[mode] = {
                "scan": _sortable(indexed.to_df().collect_tuples()),
                "pruned": _sortable(
                    indexed.to_df().select(col("name"), col("id")).collect_tuples()
                ),
                "point": indexed.get_rows_local(3),
                "in-list": _sortable(
                    indexed.to_df()
                    .filter(col("id").isin(1, 3, 5, 42))
                    .collect_tuples()
                ),
                "indexed-join": _sortable(
                    indexed.join(orders, on=indexed.col("id") == col("pid"))
                    .collect_tuples()
                ),
            }
        finally:
            session.stop()
    assert results[True] == results[False]


def test_indexed_multiversion_identical():
    for mode in (True, False):
        session = make_session(mode)
        try:
            people = session.create_dataframe(PEOPLE, PEOPLE_SCHEMA)
            v1 = create_index(people, "id")
            v2 = v1.append_rows([(8, "gus", 50, "nl"), (1, "ann2", 31, "nl")])
            assert len(v1.to_df().collect_tuples()) == len(PEOPLE)
            assert len(v2.to_df().collect_tuples()) == len(PEOPLE) + 2
            # Chain order: newest row first for the doubled key.
            assert [r[1] for r in v2.get_rows_local(1)] == ["ann2", "ann"]
        finally:
            session.stop()
