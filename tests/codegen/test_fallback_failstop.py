"""The interpreted fallback must not absorb fail-stop errors.

``predicate_fn`` / ``projection_fn`` degrade to interpreted evaluation
on *any* compile failure by design — but a ``SanitizerError`` raised
mid-compile is not a compile failure, it is an invariant violation
that the fallback would silently heal. Regression for the ET001
findings at the five fallback handlers.
"""

import pytest

import repro.codegen.compiler as compiler
from repro.errors import CodegenError, SanitizerError
from repro.sql import expressions as E
from repro.sql.types import IntegerType

AGE = E.BoundReference(0, IntegerType(), "age")


def test_sanitizer_error_propagates_through_predicate_fallback(monkeypatch):
    def tripping(expr):
        raise SanitizerError("CG_STATE", "seeded invariant trip")

    monkeypatch.setattr(compiler, "compile_predicate", tripping)
    with pytest.raises(SanitizerError):
        compiler.predicate_fn(E.IsNotNull(AGE))


def test_codegen_error_still_degrades_to_interpreter(monkeypatch):
    def unsupported(expr):
        raise CodegenError("cannot compile: seeded")

    monkeypatch.setattr(compiler, "compile_predicate", unsupported)
    fn = compiler.predicate_fn(E.IsNotNull(AGE))
    assert fn((5,)) is True
    assert fn((None,)) is False


def test_sanitizer_error_propagates_through_fused_kernel(monkeypatch):
    def tripping(condition, projections):
        raise SanitizerError("CG_STATE", "seeded invariant trip")

    monkeypatch.setattr(compiler, "compile_filter_project_kernel", tripping)
    with pytest.raises(SanitizerError):
        compiler.try_filter_project_kernel(E.IsNotNull(AGE), [AGE])
