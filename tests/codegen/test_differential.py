"""Differential tests: compiled expression kernels ≡ ``Expression.eval``.

Every supported node type is compiled and evaluated against randomized
rows containing NULLs, strings, and type-mixed values; any divergence
from the interpreted result — including *which* of True/False/None a
predicate produces — is a failure.
"""

from __future__ import annotations

import random

import pytest

from repro import codegen
from repro.sql import expressions as E
from repro.sql.types import (
    BooleanType,
    DoubleType,
    LongType,
    StringType,
)


def ref(ordinal: int, dtype) -> E.BoundReference:
    return E.BoundReference(ordinal, dtype, f"c{ordinal}")


# Row layout used throughout: (long, double, long, string, string, bool)
ID, SCORE, AGE, NAME, CITY, FLAG = range(6)


def make_rows(n: int, seed: int = 0) -> list[tuple]:
    rng = random.Random(seed)
    cities = ["ams", "ber", "cdg", None]
    rows = []
    for i in range(n):
        rows.append(
            (
                None if rng.random() < 0.15 else rng.randint(-50, 50),
                None if rng.random() < 0.15 else rng.uniform(-2.0, 2.0),
                None if rng.random() < 0.15 else rng.randint(0, 99),
                None if rng.random() < 0.15 else f"name_{i % 17}",
                rng.choice(cities),
                None if rng.random() < 0.15 else rng.random() < 0.5,
            )
        )
    return rows


ROWS = make_rows(400)


def id_ref() -> E.Expression:
    return ref(ID, LongType())


EXPRESSIONS = {
    "comparison": E.GreaterThan(id_ref(), E.Literal(3)),
    "comparison-both-cols": E.LessThanOrEqual(id_ref(), ref(AGE, LongType())),
    "equal-string": E.EqualTo(ref(CITY, StringType()), E.Literal("ams")),
    "not-equal": E.NotEqualTo(ref(NAME, StringType()), E.Literal("name_3")),
    "arith": E.Add(
        E.Multiply(ref(SCORE, DoubleType()), E.Literal(2.5)), id_ref()
    ),
    "divide-by-zero": E.Divide(
        E.Literal(10.0), E.Subtract(ref(AGE, LongType()), ref(AGE, LongType()))
    ),
    "modulo-by-zero": E.Modulo(id_ref(), E.Literal(0)),
    "unary-minus": E.UnaryMinus(ref(SCORE, DoubleType())),
    "not": E.Not(ref(FLAG, BooleanType())),
    "is-null": E.IsNull(ref(NAME, StringType())),
    "is-not-null": E.IsNotNull(ref(SCORE, DoubleType())),
    "and-kleene": E.And(
        E.GreaterThan(id_ref(), E.Literal(0)),
        E.LessThan(ref(AGE, LongType()), E.Literal(50)),
    ),
    "or-kleene": E.Or(
        E.IsNull(ref(CITY, StringType())), ref(FLAG, BooleanType())
    ),
    "nested-bool": E.Or(
        E.And(ref(FLAG, BooleanType()), E.GreaterThan(id_ref(), E.Literal(10))),
        E.Not(E.EqualTo(ref(CITY, StringType()), E.Literal("ber"))),
    ),
    "in-literals": E.In(
        id_ref(), [E.Literal(1), E.Literal(2), E.Literal(40)]
    ),
    "in-with-null-option": E.In(
        id_ref(), [E.Literal(1), E.Literal(None), E.Literal(2)]
    ),
    "like": E.Like(ref(NAME, StringType()), E.Literal("name\\_1%")),
    "cast-long-to-string": E.Cast(id_ref(), StringType()),
    "cast-string-to-long": E.Cast(ref(NAME, StringType()), LongType()),
    "cast-double-to-long": E.Cast(ref(SCORE, DoubleType()), LongType()),
    "case-when": E.CaseWhen(
        [
            (E.GreaterThan(id_ref(), E.Literal(20)), E.Literal("big")),
            (E.GreaterThan(id_ref(), E.Literal(0)), E.Literal("small")),
        ],
        E.Literal("neg"),
    ),
    "case-when-no-else": E.CaseWhen(
        [(ref(FLAG, BooleanType()), ref(NAME, StringType()))]
    ),
    "coalesce": E.Coalesce(
        [ref(NAME, StringType()), ref(CITY, StringType()), E.Literal("-")]
    ),
    "scalar-fn": E.make_scalar_function("upper", [ref(NAME, StringType())]),
    "scalar-fn-nested": E.make_scalar_function(
        "length", [E.make_scalar_function("concat", [ref(NAME, StringType()),
                                                     ref(CITY, StringType())])]
    ),
    "alias": E.Alias(E.Add(id_ref(), E.Literal(1)), "bumped"),
}


@pytest.mark.parametrize("label", sorted(EXPRESSIONS))
def test_compiled_matches_interpreted(label):
    expr = EXPRESSIONS[label]
    fn = codegen.compile_value(expr)
    for row in ROWS:
        expected = expr.eval(row)
        got = fn(row)
        assert got == expected and (got is None) == (expected is None), (
            f"{label}: row {row!r} -> compiled {got!r}, interpreted {expected!r}"
        )


def test_predicate_three_valued_identity():
    """Predicates must reproduce True/False/None exactly, not just
    truthiness — FilterExec keeps only ``is True`` rows."""
    pred = E.And(
        E.GreaterThan(ref(SCORE, DoubleType()), E.Literal(0.0)),
        ref(FLAG, BooleanType()),
    )
    fn = codegen.compile_predicate(pred)
    seen = set()
    for row in ROWS:
        expected = pred.eval(row)
        assert fn(row) is expected or fn(row) == expected
        seen.add(expected)
    assert seen == {True, False, None}, "rows must exercise all three values"


def test_fused_kernel_matches_filter_then_project():
    condition = E.And(
        E.GreaterThan(ref(SCORE, DoubleType()), E.Literal(-0.5)),
        E.IsNotNull(ref(NAME, StringType())),
    )
    projections = [
        ref(NAME, StringType()),
        E.Multiply(ref(SCORE, DoubleType()), E.Literal(10.0)),
    ]
    kernel = codegen.compile_filter_project_kernel(condition, projections)
    expected = [
        tuple(p.eval(row) for p in projections)
        for row in ROWS
        if condition.eval(row) is True
    ]
    assert kernel(ROWS) == expected


def test_filter_only_and_project_only_kernels():
    condition = E.LessThan(ref(AGE, LongType()), E.Literal(30))
    kernel = codegen.compile_filter_project_kernel(condition, None)
    assert kernel(ROWS) == [r for r in ROWS if condition.eval(r) is True]

    projections = [ref(CITY, StringType())]
    kernel = codegen.compile_filter_project_kernel(None, projections)
    assert kernel(ROWS) == [(r[CITY],) for r in ROWS]


def test_key_extractor_join_and_grouping_semantics():
    exprs = [ref(ID, LongType()), ref(CITY, StringType())]
    join_key = codegen.compile_key_extractor(exprs, null_to_none=True)
    group_key = codegen.compile_key_extractor(exprs, null_to_none=False)
    for row in ROWS:
        components = tuple(e.eval(row) for e in exprs)
        assert group_key(row) == components
        if None in components:
            assert join_key(row) is None
        else:
            assert join_key(row) == components


def test_chunked_preserves_rows_and_laziness():
    condition = E.IsNotNull(ref(ID, LongType()))
    kernel = codegen.compile_filter_project_kernel(condition, None)
    runner = codegen.chunked(kernel, chunk_rows=16)
    assert list(runner(iter(ROWS))) == [
        r for r in ROWS if condition.eval(r) is True
    ]
    # Early-stopping consumers must not force the whole input.
    consumed = []

    def tracking():
        for row in ROWS:
            consumed.append(row)
            yield row

    out = runner(tracking())
    next(out)
    assert len(consumed) <= 16


def test_compiled_source_is_attached():
    fn = codegen.compile_value(E.Add(id_ref(), E.Literal(1)))
    assert "def " in fn.__codegen_source__
