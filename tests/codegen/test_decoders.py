"""Compiled bulk decoders ≡ the interpreted ``RowCodec`` paths, plus
the codec registry and capacity validation that ride along."""

from __future__ import annotations

import random

import pytest

from repro.core.partition import IndexedPartition
from repro.core.pointers import NULL_POINTER, PointerLayout
from repro.core.rowcodec import RowCodec, codec_for
from repro.errors import CapacityError, CodegenError
from repro.sql.types import (
    BooleanType,
    DoubleType,
    LongType,
    StringType,
    StructField,
    StructType,
)

MIXED_SCHEMA = StructType(
    [
        StructField("id", LongType()),
        StructField("score", DoubleType()),
        StructField("name", StringType()),
        StructField("flag", BooleanType()),
    ]
)

FIXED_SCHEMA = StructType(
    [StructField("a", LongType()), StructField("b", DoubleType())]
)


def mixed_rows(n: int, seed: int = 3) -> list[tuple]:
    rng = random.Random(seed)
    return [
        (
            i % 37,
            None if rng.random() < 0.25 else rng.random(),
            None if rng.random() < 0.25 else f"row_{i}_{'x' * (i % 9)}",
            None if rng.random() < 0.25 else i % 2 == 0,
        )
        for i in range(n)
    ]


def small_partition(schema, rows) -> IndexedPartition:
    layout = PointerLayout.for_geometry(4096, 512)
    partition = IndexedPartition(schema, 0, layout, 4096, 512)
    partition.append_many(rows)
    return partition


# ----------------------------------------------------------------------
# Payload decoder
# ----------------------------------------------------------------------


def test_batch_decoder_matches_decode():
    codec = RowCodec(MIXED_SCHEMA)
    rows = mixed_rows(300)
    payloads = [codec.encode(r) for r in rows]
    assert codec.batch_decoder()(payloads) == rows


def test_batch_decoder_selective_columns():
    codec = RowCodec(MIXED_SCHEMA)
    rows = mixed_rows(100)
    payloads = [codec.encode(r) for r in rows]
    assert codec.batch_decoder([2, 0])(payloads) == [(r[2], r[0]) for r in rows]
    assert codec.batch_decoder([1])(payloads) == [(r[1],) for r in rows]


def test_batch_decoder_all_fixed_fast_path():
    codec = RowCodec(FIXED_SCHEMA)
    rows = [(i, float(i) if i % 3 else None) for i in range(200)]
    payloads = [codec.encode(r) for r in rows]
    assert codec.batch_decoder()(payloads) == rows


def test_batch_decoder_rejects_bad_ordinal():
    codec = RowCodec(MIXED_SCHEMA)
    with pytest.raises(CodegenError):
        codec.batch_decoder([4])


def test_decoders_are_memoized():
    codec = RowCodec(MIXED_SCHEMA)
    assert codec.batch_decoder() is codec.batch_decoder()
    assert codec.batch_decoder([1]) is codec.batch_decoder([1])
    assert codec.batch_decoder() is not codec.batch_decoder([1])
    assert codec.region_decoder() is codec.region_decoder()


# ----------------------------------------------------------------------
# Region decoder (batch-buffer walker)
# ----------------------------------------------------------------------


def test_region_scan_matches_interpreted_scan():
    partition = small_partition(MIXED_SCHEMA, mixed_rows(2000))
    snapshot = partition.snapshot()
    assert list(snapshot.scan_batches()) == list(snapshot.scan())


def test_region_scan_selective_and_chunked():
    partition = small_partition(MIXED_SCHEMA, mixed_rows(500))
    snapshot = partition.snapshot()
    expected = list(snapshot.scan())
    assert list(snapshot.scan_batches(columns=[3, 1])) == [
        (r[3], r[1]) for r in expected
    ]
    it = snapshot.scan_batches(chunk_rows=7)
    assert [next(it) for _ in range(20)] == expected[:20]


def test_region_scan_respects_watermark():
    partition = small_partition(MIXED_SCHEMA, mixed_rows(100))
    snapshot = partition.snapshot()
    before = list(snapshot.scan_batches())
    partition.append_many(mixed_rows(50, seed=9))
    assert list(snapshot.scan_batches()) == before
    assert len(list(partition.snapshot().scan_batches())) == 150


# ----------------------------------------------------------------------
# Chain decoder (point/bulk lookup)
# ----------------------------------------------------------------------


def test_lookup_rows_matches_lookup():
    rows = mixed_rows(1500)  # keys collide (i % 37) -> long chains
    partition = small_partition(MIXED_SCHEMA, rows)
    snapshot = partition.snapshot()
    keys = list(range(40))  # 37..39 are absent: i % 37 caps the key space
    expected = [r for k in keys for r in snapshot.lookup(k)]
    assert snapshot.lookup_rows(keys) == expected
    assert snapshot.lookup_rows([]) == []
    assert snapshot.lookup_rows([123456]) == []


def test_lookup_rows_newest_first_per_key():
    partition = small_partition(
        MIXED_SCHEMA, [(7, float(v), f"v{v}", True) for v in range(5)]
    )
    snapshot = partition.snapshot()
    names = [r[2] for r in snapshot.lookup_rows([7])]
    assert names == ["v4", "v3", "v2", "v1", "v0"]


def test_chain_decoder_memoized_per_layout():
    codec = RowCodec(MIXED_SCHEMA)
    layout_a = PointerLayout.for_geometry(4096, 512)
    layout_b = PointerLayout.for_geometry(1 << 20, 1024)
    assert codec.chain_decoder(layout_a) is codec.chain_decoder(layout_a)
    assert codec.chain_decoder(layout_a) is not codec.chain_decoder(layout_b)


# ----------------------------------------------------------------------
# RowCodec validation + registry
# ----------------------------------------------------------------------


def test_max_row_bytes_over_u16_rejected_at_construction():
    with pytest.raises(CapacityError, match="65535"):
        RowCodec(MIXED_SCHEMA, max_row_bytes=65536)
    # The limit itself is fine.
    RowCodec(MIXED_SCHEMA, max_row_bytes=65535)


def test_codec_for_shares_instances_structurally():
    schema_a = StructType(
        [StructField("x", LongType()), StructField("y", StringType())]
    )
    schema_b = StructType(
        [StructField("x", LongType()), StructField("y", StringType())]
    )
    assert schema_a is not schema_b
    assert codec_for(schema_a) is codec_for(schema_b)
    assert codec_for(schema_a, 2048) is not codec_for(schema_a, 1024)
    different = StructType(
        [StructField("x", LongType()), StructField("z", StringType())]
    )
    assert codec_for(different) is not codec_for(schema_a)


def test_partitions_share_registry_codec():
    layout = PointerLayout.for_geometry(4096, 512)
    p1 = IndexedPartition(MIXED_SCHEMA, 0, layout, 4096, 512)
    p2 = IndexedPartition(MIXED_SCHEMA, 0, layout, 4096, 512)
    assert p1.codec is p2.codec
