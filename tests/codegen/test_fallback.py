"""Codegen fallback: unsupported expressions must degrade to the
interpreted path — logged and counted, never wrong and never fatal."""

from __future__ import annotations

import logging

import pytest

from repro import codegen
from repro.errors import CodegenError
from repro.sql import expressions as E
from repro.sql.functions import col
from repro.sql.types import BooleanType, LongType, StringType


class OpaqueExpression(E.Expression):
    """An expression the compiler has no lowering for."""

    def __init__(self, ordinal: int):
        self.ordinal = ordinal
        self.children = ()

    @property
    def resolved(self) -> bool:
        return True

    def data_type(self):
        return BooleanType()

    def eval(self, row: tuple):
        return row[self.ordinal] is not None and row[self.ordinal] > 2

    def __repr__(self) -> str:
        return f"opaque[{self.ordinal}]"


ROWS = [(i, f"n{i}") for i in range(6)] + [(None, None)]


def test_unsupported_node_raises_codegen_error():
    with pytest.raises(CodegenError):
        codegen.compile_predicate(OpaqueExpression(0))


def test_predicate_fn_falls_back_and_logs(caplog):
    codegen.reset_stats()
    with caplog.at_level(logging.WARNING, logger="repro.codegen"):
        fn = codegen.predicate_fn(OpaqueExpression(0))
    assert [fn(r) for r in ROWS] == [OpaqueExpression(0).eval(r) for r in ROWS]
    stats = codegen.stats()
    assert stats.fallbacks == 1
    assert stats.last_error is not None
    assert any("fallback" in message for message in caplog.messages)


def test_non_literal_like_falls_back():
    codegen.reset_stats()
    # LIKE with a non-literal pattern can't precompile its regex; the
    # wrapper must hand back the interpreted evaluator.
    expr = E.Like(
        E.BoundReference(1, StringType(), "name"),
        E.BoundReference(1, StringType(), "name"),
    )
    fn = codegen.value_fn(expr)
    assert codegen.stats().fallbacks == 1
    for row in ROWS:
        assert fn(row) == expr.eval(row)


def test_try_filter_project_kernel_returns_none_when_unsupported():
    codegen.reset_stats()
    assert codegen.try_filter_project_kernel(OpaqueExpression(0), None) is None
    assert codegen.stats().fallbacks == 1
    # Both sides empty is a contract violation, not a fallback.
    assert codegen.try_filter_project_kernel(None, None) is None


def test_disabled_codegen_never_compiles():
    codegen.reset_stats()
    pred = E.GreaterThan(E.BoundReference(0, LongType(), "id"), E.Literal(1))
    fn = codegen.predicate_fn(pred, enabled=False)
    assert codegen.stats().compiled == 0
    assert [fn(r) for r in ROWS] == [pred.eval(r) for r in ROWS]
    assert codegen.try_filter_project_kernel(pred, None) is not None


def test_query_with_unsupported_filter_still_correct(indexed_session, caplog):
    """End to end: a FilterExec whose predicate contains a node the
    compiler rejects must produce interpreted-identical results while
    recording the fallback."""
    session = indexed_session
    assert session.config.codegen_enabled
    from repro.sql.column import Column

    rows = [(i, f"u{i % 3}") for i in range(30)] + [(99, None)]
    df = session.create_dataframe(rows, [("id", "long"), ("tag", "string")])
    # tag LIKE tag: the compiled lowering refuses non-literal patterns,
    # so FilterExec must run this predicate interpreted.
    condition = Column(E.Like(col("tag").expr, col("tag").expr))
    codegen.reset_stats()
    with caplog.at_level(logging.WARNING, logger="repro.codegen"):
        out = df.filter(condition).collect_tuples()
    assert sorted(out) == sorted(r for r in rows if r[1] is not None)
    assert codegen.stats().fallbacks >= 1
    assert any("fallback" in message for message in caplog.messages)
