"""Deterministic-interleaving smoke test: append vs snapshot isolation.

A writer appends rows while a reader repeatedly snapshots and fully
reads each snapshot. The interleaver parks both threads at every
atomic cTrie operation and releases them in a seeded order, forcing
writer/reader interleavings (mid-GCAS, mid-RDCSS, between trie insert
and watermark publish) that wall-clock scheduling almost never hits.

Invariants asserted on *every* snapshot:

* **no torn prefix** — a snapshot with ``row_count == n`` scans exactly
  the first ``n`` appended rows, in append order (rows appended after
  the snapshot are invisible);
* **no torn backward chains** — per-key lookup returns exactly the
  newest-first prefix of that key's appends visible at the snapshot;
* sanitizers stay silent: zone seals and batch CRCs hold throughout.
"""

import pytest

from repro.analysis.interleave import DeterministicInterleaver
from repro.core.partition import IndexedPartition
from repro.core.pointers import PointerLayout
from repro.sql.types import StructType

SCHEMA = StructType.from_pairs([("key", "long"), ("seq", "long")])
BATCH = 1024  # tiny batches: the run crosses several seal boundaries
MAX_ROW = 64
KEYS = 4
TOTAL = 60


def make_partition():
    layout = PointerLayout.for_geometry(BATCH, MAX_ROW)
    return IndexedPartition(
        SCHEMA, 0, layout, BATCH, MAX_ROW, zone_maps=True, sanitizers=True
    )


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_append_vs_snapshot_isolation(seed):
    partition = make_partition()
    errors = []

    def writer():
        for seq in range(TOTAL):
            partition.append((seq % KEYS, seq))

    def reader():
        for _ in range(25):
            snap = partition.snapshot()
            n = snap.row_count
            seqs = [row[1] for row in snap.scan()]
            if seqs != list(range(n)):
                errors.append(f"torn scan at version {n}: {seqs}")
                return
            for key in range(KEYS):
                got = [row[1] for row in snap.lookup(key)]
                expect = [s for s in reversed(range(n)) if s % KEYS == key]
                if got != expect:
                    errors.append(
                        f"torn chain for key {key} at version {n}: "
                        f"{got} != {expect}"
                    )
                    return

    interleaver = DeterministicInterleaver(seed=seed)
    interleaver.run(writer, reader)

    assert errors == []
    # The schedule must have actually interleaved the threads.
    assert interleaver.steps > 50
    # Final state is intact and still passes every seal check.
    final = partition.snapshot()
    assert final.row_count == TOTAL
    assert [row[1] for row in final.scan()] == list(range(TOTAL))
    assert partition.batches.num_batches > 1  # batch seals were exercised


def test_same_seed_reproduces_schedule():
    def run_once():
        partition = make_partition()

        def writer():
            for seq in range(20):
                partition.append((seq % KEYS, seq))

        def reader():
            for _ in range(5):
                partition.snapshot()

        interleaver = DeterministicInterleaver(seed=1234)
        interleaver.run(writer, reader)
        return interleaver.steps

    # Bounded native-lock waits can perturb the schedule, but the step
    # count must stay in the same ballpark for the same seed.
    a, b = run_once(), run_once()
    assert a > 0 and b > 0


def test_foreign_threads_pass_through():
    # The hook must not park threads the interleaver doesn't own.
    partition = make_partition()
    interleaver = DeterministicInterleaver(seed=5)

    def writer():
        for seq in range(10):
            partition.append((seq % KEYS, seq))

    interleaver.run(writer)
    # This thread was never registered; operations run unimpeded even
    # though the run above installed (and removed) the hook.
    assert partition.snapshot().row_count == 10
