"""Runtime sanitizers: sealed zone maps (SZ001) and CRC batch seals (SZ002)."""

import pytest

from repro.config import Config
from repro.core.partition import IndexedPartition
from repro.core.pointers import PointerLayout
from repro.core.rowbatch import HEADER_SIZE, BatchManager
from repro.errors import ReproError, SanitizerError
from repro.sql.types import StructType
from repro.stats import ZoneMap

SCHEMA = StructType.from_pairs([("id", "long"), ("name", "string")])
BATCH = 1024
MAX_ROW = 128


def make_partition(sanitizers=True, zone_maps=True):
    layout = PointerLayout.for_geometry(BATCH, MAX_ROW)
    return IndexedPartition(
        SCHEMA, 0, layout, BATCH, MAX_ROW,
        zone_maps=zone_maps, sanitizers=sanitizers,
    )


def fill(partition, n, start=0):
    partition.append_many([(start + i, f"name{start + i}") for i in range(n)])


class TestZoneMapSealing:
    def test_sealed_zone_rejects_update(self):
        zone = ZoneMap(2)
        zone.update_row((1, "a"))
        zone.seal()
        with pytest.raises(SanitizerError, match="SZ001"):
            zone.update_row((2, "b"))
        with pytest.raises(SanitizerError, match="SZ001"):
            zone.merge(ZoneMap(2))

    def test_copy_of_sealed_zone_is_writable(self):
        zone = ZoneMap(2)
        zone.seal()
        zone.copy().update_row((1, "a"))

    def test_snapshot_zones_are_poisoned(self):
        partition = make_partition()
        fill(partition, 50)
        snap = partition.snapshot()
        with pytest.raises(SanitizerError, match="SZ001"):
            snap.zone.update_row((99, "zz"))
        with pytest.raises(SanitizerError, match="SZ001"):
            snap.batch_zones[-1].update_row((99, "zz"))

    def test_rolled_batch_zone_is_poisoned(self):
        partition = make_partition()
        fill(partition, 200)  # forces several 1 KiB batch rolls
        assert partition.batches.num_batches > 1
        zones = partition._batch_zones
        assert all(z.sealed for z in zones[:-1])
        assert not zones[-1].sealed
        with pytest.raises(SanitizerError, match="SZ001"):
            zones[0].update_row((99, "zz"))

    def test_appends_continue_after_snapshot(self):
        # Sealing snapshot copies must not poison the live tail zone.
        partition = make_partition()
        fill(partition, 30)
        snap = partition.snapshot()
        fill(partition, 30, start=30)
        assert partition.row_count == 60
        assert snap.row_count == 30

    def test_sanitizers_off_keeps_zones_writable(self):
        partition = make_partition(sanitizers=False)
        fill(partition, 50)
        snap = partition.snapshot()
        snap.zone.update_row((99, "zz"))  # tolerated (legacy behavior)


class TestBatchSeals:
    def test_crc_recorded_per_rolled_batch(self):
        partition = make_partition()
        fill(partition, 200)
        sealed = partition.batches.num_batches - 1
        assert len(partition.batches._seals) == sealed
        partition.batches.verify_seals()

    def test_tampering_with_sealed_batch_raises_sz002(self):
        partition = make_partition()
        fill(partition, 200)
        partition.batches._batches[0][HEADER_SIZE] ^= 0xFF
        with pytest.raises(SanitizerError, match="SZ002"):
            partition.batches.verify_seals()

    def test_snapshot_verifies_seals(self):
        partition = make_partition()
        fill(partition, 200)
        partition.batches._batches[0][HEADER_SIZE] ^= 0xFF
        with pytest.raises(SanitizerError, match="SZ002"):
            partition.snapshot()

    def test_unsanitized_manager_records_nothing(self):
        layout = PointerLayout.for_geometry(BATCH, MAX_ROW)
        manager = BatchManager(layout, BATCH)
        for i in range(200):
            manager.append(b"x" * 20)
        assert manager._seals == []
        manager.verify_seals()  # no-op


class TestErrorHierarchy:
    def test_sanitizer_error_is_not_a_repro_error(self):
        # The retry/fallback machinery catches ReproError; a sanitizer
        # trip must never be absorbed by it.
        assert not issubclass(SanitizerError, ReproError)
        err = SanitizerError("SZ001", "boom")
        assert err.rule == "SZ001"
        assert "[SZ001]" in str(err)

    def test_config_flag_defaults_off_and_threads_through(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZERS", raising=False)
        assert Config().sanitizers_enabled is False
        config = Config().with_options(sanitizers_enabled=True)
        assert config.sanitizers_enabled is True

    def test_env_var_flips_default_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZERS", "1")
        assert Config().sanitizers_enabled is True
        # An explicit argument still wins.
        assert Config(sanitizers_enabled=False).sanitizers_enabled is False


class TestSessionIntegration:
    def test_indexed_queries_run_sanitized(self):
        from repro.core import create_index, enable_indexing
        from repro.sql.session import Session

        session = Session(
            Config(
                shuffle_partitions=2,
                default_parallelism=2,
                executor_threads=2,
                batch_size_bytes=2048,
                max_row_bytes=256,
                sanitizers_enabled=True,
            )
        )
        enable_indexing(session)
        try:
            df = session.create_dataframe(
                [(i, f"name{i}", 20 + i % 5) for i in range(300)],
                [("id", "long"), ("name", "string"), ("age", "long")],
            )
            indexed = create_index(df, "id")
            for version in range(3):
                indexed = indexed.append_rows(
                    [(1000 + version * 10 + j, "new", 99) for j in range(10)]
                )
            assert indexed.count() == 330
            assert len(indexed.get_rows(5).collect()) == 1
            filtered = indexed.to_df().filter("age > 22").collect()
            assert all(row[2] > 22 for row in filtered)
        finally:
            session.stop()
