"""Lock-discipline checker: rule behavior, fixtures, and the shipped tree."""

from pathlib import Path

from repro.analysis import lockcheck

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parent.parent.parent / "src" / "repro"


def rules_of(violations):
    return sorted(v.rule for v in violations)


def check(source):
    return lockcheck.check_source(source, "t.py")


class TestRules:
    def test_write_outside_lock_is_ld001(self):
        violations = check(
            """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded-by: _lock

    def bump(self):
        self.n += 1
"""
        )
        assert rules_of(violations) == ["LD001"]
        assert violations[0].line == 10

    def test_write_inside_lock_is_clean(self):
        assert not check(
            """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.n += 1
"""
        )

    def test_subscript_and_del_writes_checked(self):
        violations = check(
            """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.m = {}  # guarded-by: _lock

    def put(self, k, v):
        self.m[k] = v

    def drop(self, k):
        del self.m[k]
"""
        )
        assert rules_of(violations) == ["LD001", "LD001"]

    def test_mutator_call_outside_lock_is_ld002(self):
        violations = check(
            """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []  # guarded-by: _lock

    def push(self, x):
        self.items.append(x)
"""
        )
        assert rules_of(violations) == ["LD002"]

    def test_non_mutating_call_is_clean(self):
        assert not check(
            """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.m = {}  # guarded-by: _lock

    def peek(self, k):
        return self.m.get(k)
"""
        )

    def test_requires_lock_grants_and_demands(self):
        violations = check(
            """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded-by: _lock

    def _inc(self):  # requires-lock: _lock
        self.n += 1

    def good(self):
        with self._lock:
            self._inc()

    def bad(self):
        self._inc()
"""
        )
        assert rules_of(violations) == ["LD003"]

    def test_unknown_lock_is_ld004(self):
        violations = check(
            """
class C:
    x: int = 0  # guarded-by: _ghost
"""
        )
        assert rules_of(violations) == ["LD004"]

    def test_closure_does_not_inherit_the_lock(self):
        violations = check(
            """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded-by: _lock

    def start(self):
        with self._lock:
            def worker():
                self.n += 1
            return worker
"""
        )
        assert rules_of(violations) == ["LD001"]

    def test_closure_may_take_the_lock_itself(self):
        assert not check(
            """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded-by: _lock

    def start(self):
        def worker():
            with self._lock:
                self.n += 1
        return worker
"""
        )

    def test_init_is_exempt(self):
        assert not check(
            """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded-by: _lock
        self.n = 1
"""
        )

    def test_allow_comment_suppresses(self):
        assert not check(
            """
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded-by: _lock

    def bump(self):
        self.n += 1  # lint: allow[LD001]
"""
        )


class TestTree:
    def test_fixture_reports_every_ld_rule(self):
        violations = lockcheck.check_file(FIXTURES / "bad_lock_discipline.py")
        assert {"LD001", "LD002", "LD003", "LD004"} <= {v.rule for v in violations}

    def test_shipped_tree_is_clean(self):
        violations = []
        for path in sorted(SRC.rglob("*.py")):
            violations.extend(lockcheck.check_file(path))
        assert violations == [], [str(v) for v in violations]

    def test_annotations_present_in_partition(self):
        source = (SRC / "core" / "partition.py").read_text()
        assert "# guarded-by: _append_lock" in source
        assert "# requires-lock: _append_lock" in source
        assert "caller holds the lock" not in source.lower()
