"""Plan-contract linter: fixture rules and the shipped operator files."""

from pathlib import Path

from repro.analysis import plancheck

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parent.parent.parent / "src" / "repro"


def test_fixture_reports_every_pc_rule():
    violations = plancheck.check_file(FIXTURES / "bad_plan_contract.py")
    assert {"PC001", "PC002", "PC003", "PC004", "PC005"} == {
        v.rule for v in violations
    }
    by_rule = {v.rule: v for v in violations}
    assert "UndeclaredExec" in by_rule["PC001"].message
    assert "LyingNarrowExec" in by_rule["PC002"].message
    assert "'driver'" in by_rule["PC002"].message
    assert "WastedPlacementExec" in by_rule["PC005"].message


def test_shipped_operator_files_are_clean():
    violations = []
    for name in ("sql/physical.py", "sql/planner.py", "core/physical.py"):
        violations.extend(plancheck.check_file(SRC / name))
    assert violations == [], [str(v) for v in violations]


def test_every_shipped_operator_declares_partitioning():
    from repro.core import physical as core_physical
    from repro.sql import physical as sql_physical
    from repro.sql.physical import PhysicalPlan

    operators = [
        cls
        for module in (sql_physical, core_physical)
        for cls in vars(module).values()
        if isinstance(cls, type)
        and issubclass(cls, PhysicalPlan)
        and cls is not PhysicalPlan
    ]
    assert len(operators) >= 15
    for cls in operators:
        assert getattr(cls, "PARTITIONING", None) in plancheck.PLACEMENTS, cls


def test_abstract_base_is_skipped():
    violations = plancheck.check_source(
        """
class PhysicalPlan:
    def execute(self):
        raise NotImplementedError


class StillAbstract(PhysicalPlan):
    \"\"\"No concrete execute -> not an operator yet.\"\"\"

    def execute(self):
        raise NotImplementedError
"""
    )
    assert violations == []
