"""The justified-baseline contract: suppression needs a reason."""

from __future__ import annotations

from repro.analysis.baseline import load_baseline, parse_baseline
from repro.analysis.report import Violation


def v(rule, path, line):
    return Violation(rule, path, line, "msg")


class TestParse:
    def test_file_and_line_entries(self):
        baseline = parse_baseline(
            "# header comment\n"
            "\n"
            "ET002 src/a.py  # central retry policy re-raises\n"
            "CP001 src/b.py:17  # bounded walk\n"
        )
        assert baseline.errors == []
        assert [(e.rule, e.path, e.line) for e in baseline.entries] == [
            ("ET002", "src/a.py", None),
            ("CP001", "src/b.py", 17),
        ]

    def test_missing_justification_is_an_error(self):
        baseline = parse_baseline("ET002 src/a.py\n")
        assert baseline.entries == []
        assert len(baseline.errors) == 1
        assert "justification" in baseline.errors[0]

    def test_unknown_rule_is_an_error(self):
        baseline = parse_baseline("ZZ999 src/a.py  # why\n")
        assert baseline.entries == []
        assert "unknown rule" in baseline.errors[0]

    def test_malformed_line_is_an_error(self):
        baseline = parse_baseline("ET002 src/a.py extra  # why\n")
        assert baseline.entries == []
        assert "expected" in baseline.errors[0]


class TestApply:
    def test_matching_entries_suppress(self):
        baseline = parse_baseline(
            "ET002 src/a.py  # reason\nCP001 src/b.py:17  # reason\n"
        )
        kept, stale = baseline.apply(
            [v("ET002", "src/a.py", 3), v("CP001", "src/b.py", 17),
             v("CP001", "src/b.py", 99)]
        )
        assert [(x.rule, x.line) for x in kept] == [("CP001", 99)]
        assert stale == []

    def test_unmatched_entries_are_stale(self):
        baseline = parse_baseline("FS001 src/gone.py  # was a typo\n")
        kept, stale = baseline.apply([v("ET001", "src/a.py", 1)])
        assert len(kept) == 1
        assert len(stale) == 1
        assert "stale" in stale[0]


def test_missing_file_is_an_error(tmp_path):
    baseline = load_baseline(tmp_path / "nope.txt")
    assert baseline.errors and "does not exist" in baseline.errors[0]
