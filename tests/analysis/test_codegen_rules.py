"""Generated-code rules: seeded violations plus real emitter output."""

from pathlib import Path

import pytest

from repro.analysis.codegen_rules import validate_generated_source
from repro.errors import CodegenError
from repro.sql import expressions as E
from repro.sql.types import IntegerType, StringType

FIXTURES = Path(__file__).parent / "fixtures"

AGE = E.BoundReference(0, IntegerType(), "age")
NAME = E.BoundReference(1, StringType(), "name")


def rules_of(violations):
    return sorted(v.rule for v in violations)


class TestSeededViolations:
    def test_global_read_is_cg001(self):
        src = "def k(r):\n    return eval('1')\n"
        assert "CG001" in rules_of(validate_generated_source(src))

    def test_mutable_const_is_cg002(self):
        src = "def k(r, _k0=_k0):\n    return _k0\n"
        violations = validate_generated_source(src, consts=[[1, 2, 3]])
        assert "CG002" in rules_of(violations)

    def test_immutable_consts_are_fine(self):
        src = "def k(r, _k0=_k0, _k1=_k1):\n    return _k0\n"
        violations = validate_generated_source(
            src, consts=((1, 2), frozenset({"a"}))
        )
        assert violations == []

    def test_unguarded_operand_is_cg003(self):
        src = "def k(r):\n    t1 = r[0] + r[1]\n    return t1\n"
        assert rules_of(validate_generated_source(src)) == ["CG003", "CG003"]

    def test_guarded_operand_is_clean(self):
        src = (
            "def k(r):\n"
            "    if r[0] is None:\n"
            "        t1 = None\n"
            "    else:\n"
            "        if r[1] is None:\n"
            "            t1 = None\n"
            "        else:\n"
            "            t1 = r[0] + r[1]\n"
            "    return t1\n"
        )
        assert validate_generated_source(src) == []

    def test_is_none_comparisons_never_need_guards(self):
        src = "def k(r):\n    return r[0] is None\n"
        assert validate_generated_source(src) == []

    def test_banned_constructs_are_cg004(self):
        for body in (
            "    import os\n    return None\n",
            "    global x\n    return None\n",
            "    f = lambda: 1\n    return f\n",
            "    return [x for x in r]\n",
            "    return r.count\n",
        ):
            violations = validate_generated_source(f"def k(r):\n{body}")
            assert "CG004" in rules_of(violations), body

    def test_out_append_attribute_is_allowed(self):
        src = "def k(rows, out):\n    _append = out.append\n    return out\n"
        assert validate_generated_source(src) == []

    def test_fixture_file(self):
        from repro.analysis.codegen_rules import check_file

        rules = {v.rule for v in check_file(FIXTURES / "bad_kernel.gensrc")}
        assert {"CG001", "CG003", "CG004"} <= rules


class TestRealKernels:
    """The shipped emitters must satisfy their own contract."""

    def test_expression_kernels_validate(self):
        from repro.codegen import (
            compile_filter_project_kernel,
            compile_key_extractor,
            compile_predicate,
            compile_projection,
        )

        kernels = [
            compile_predicate(
                E.And(E.GreaterThan(AGE, E.Literal(21)), E.IsNotNull(NAME))
            ),
            compile_predicate(E.In(AGE, [E.Literal(1), E.Literal(2)])),
            compile_predicate(E.Like(NAME, E.Literal("a%"))),
            compile_projection(
                [E.Divide(E.Multiply(AGE, AGE), E.Subtract(AGE, E.Literal(1)))]
            ),
            compile_key_extractor([AGE, NAME]),
            compile_filter_project_kernel(
                E.GreaterThan(AGE, E.Literal(2)), [E.Add(AGE, AGE)]
            ),
        ]
        for kernel in kernels:
            src = kernel.__codegen_source__
            assert validate_generated_source(src) == [], src

    def test_decoder_kernels_validate(self, indexed_session):
        from repro.core import create_index

        df = indexed_session.create_dataframe(
            [(i, f"name{i}") for i in range(50)],
            [("id", "long"), ("name", "string")],
        )
        rows = sorted(tuple(r) for r in create_index(df, "id").collect())
        assert rows == [(i, f"name{i}") for i in range(50)]

    def test_validation_failure_raises_codegen_error(self):
        # Hand the assembler a body that trips CG001 and confirm it
        # refuses to exec it.
        from repro.codegen import compiler

        em = compiler._Emitter()
        em.line("return eval('1')")
        with pytest.raises(CodegenError, match="CG001"):
            compiler._assemble("_evil", "r", em)
