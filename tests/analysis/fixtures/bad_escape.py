"""Seeded process-boundary escapes (regression fixture).

A shipped class smuggles a lock across the codec boundary; worker-side
code mutates a shared view and resolves a driver singleton. The
analyzer must report XP001, XP002, and XP003 here (nonzero exit).
"""
# analysis: worker-side

import threading

from repro.index.registry import bitmap_registry


class ShippedState:  # analysis: shipped
    def __init__(self, rows):
        self.rows = rows
        self._lock = threading.Lock()  # XP001: dead replica worker-side


def merge_into_view(snapshot_view, rows):
    for row in rows:
        snapshot_view.append(row)  # XP002: shared views are read-only
    snapshot_view.sealed = True  # XP002: attribute write on a view


def lookup(store, ordinal):
    registry = bitmap_registry()  # XP003: driver-only singleton
    return registry.snapshot()
