"""Seeded cancellation-poll violations (regression fixture).

The module declares itself poll-obligated but never polls: the drain
loop below can outlive any deadline. The analyzer must report CP001
and CP002 here (nonzero exit).
"""
# analysis: poll-obligated

import time


def drain(pending_batches):
    done = []
    for batch in pending_batches:  # CP001: partition-scale, never polls
        done.append(batch.flush())
        time.sleep(0.01)
    return done


def pump(queue):
    while True:  # CP001: unbounded loop, no poll, blocking callee
        item = queue.get()
        if item is None:
            return
