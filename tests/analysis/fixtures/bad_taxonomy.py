"""Seeded exception-taxonomy violations (regression fixture).

Every handler below absorbs a fail-stop error in a way the ET rules
forbid; the retry classification names a sanitizer trip. The analyzer
must report ET001, ET002, ET003, and ET004 here (nonzero exit).
"""

from repro.errors import SanitizerError


def swallow(task):
    try:
        return task()
    except Exception:  # ET001: no raise, no fail-stop guard
        return None


def absorb_crash(task):
    try:
        return task()
    except BaseException:  # ET002: SimulatedCrash can be absorbed
        return None


def retry_forever(task, attempts):
    for attempt in range(attempts):
        try:
            return task()
        except Exception:  # ET003: re-raises only on the last attempt
            if attempt == attempts - 1:
                raise
    return None


def _find_transient(exc):
    # ET004: a sanitizer trip is an invariant violation, never transient.
    if isinstance(exc, (ConnectionError, SanitizerError)):
        return exc
    return None
