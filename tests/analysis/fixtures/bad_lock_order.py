"""Seeded lock-ordering violations (regression fixture, never imported).

Two methods acquire the same pair of locks in opposite orders — the
classic AB/BA deadlock — plus a re-acquisition of a plain Lock and a
``requires-lock`` method that takes its own lock. The analyzer must
report LO001, LO002, and LO003 here (nonzero exit).
"""

import threading


class Ledger:
    def __init__(self):
        self._accounts = threading.Lock()
        self._audit = threading.Lock()

    def post(self):
        with self._accounts:
            with self._audit:  # LO001: accounts -> audit
                pass

    def reconcile(self):
        with self._audit:
            with self._accounts:  # LO001: audit -> accounts (cycle!)
                pass

    def double_lock(self):
        with self._accounts:
            with self._accounts:  # LO002: re-acquiring a plain Lock
                pass

    def _flush(self):  # requires-lock: _audit
        with self._audit:  # LO003: caller already holds it
            pass
