"""Seeded lock-discipline violations (regression fixture, never imported).

Each method below violates one LD rule on purpose; the test suite and
the CI analysis job assert that ``python -m repro.analysis`` reports
every one of them (nonzero exit, rule ID + file:line).
"""

import threading


class RacyCounter:
    total: int = 0  # guarded-by: _lock
    phantom: int = 0  # guarded-by: _no_such_lock  (LD004: lock never defined)

    def __init__(self):
        self._lock = threading.Lock()
        self.events = []  # guarded-by: _lock

    def guarded_ok(self):
        with self._lock:
            self.total += 1
            self.events.append("ok")

    def unguarded_write(self):
        self.total += 1  # LD001: write outside the lock

    def unguarded_mutation(self):
        self.events.append("boom")  # LD002: mutating call outside the lock

    def _drain(self):  # requires-lock: _lock
        self.events.clear()
        self.total = 0

    def forgets_the_lock(self):
        self._drain()  # LD003: requires-lock callee, lock not held
