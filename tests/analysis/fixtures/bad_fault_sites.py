"""Seeded fault-site violations (regression fixture).

The injection calls below name sites that ``repro.faults.SITES`` does
not register — exactly the typo class FS001 exists to catch: the fault
would silently never fire. The analyzer must report FS001 here
(nonzero exit).
"""


def risky_read(injector, serving):
    injector.maybe_fail("disk.raed.short")  # FS001: typo'd site
    breaker = serving.breaker("index.fallbock")  # FS001: typo'd label
    with breaker:
        return b""
