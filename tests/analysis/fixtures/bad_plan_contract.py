"""Seeded plan-contract violations (regression fixture, never imported).

Standalone mock of the operator shape — the plan-contract linter is
purely syntactic, so a local ``PhysicalPlan`` base is enough to
exercise every PC rule.
"""


class PhysicalPlan:
    children = ()

    def execute(self):
        raise NotImplementedError


class UndeclaredExec(PhysicalPlan):
    # PC001: no PARTITIONING declaration at all.
    def __init__(self, child):
        self.children = (child,)

    def execute(self):
        return self.children[0].execute().map(lambda r: r)


class LyingNarrowExec(PhysicalPlan):
    PARTITIONING = "narrow"  # PC002: body collects on the driver

    def __init__(self, ctx, child):
        self.ctx = ctx
        self.children = (child,)

    def execute(self):
        rows = self.children[0].execute().collect()
        return self.ctx.parallelize(rows, 1)


class SilentPrunerExec(PhysicalPlan):
    PARTITIONING = "source"

    def __init__(self, relation):
        self.relation = relation
        self.pruned = 0

    def apply_pruning(self, predicates):
        # PC003: prunes without record_scan, and describe() below
        # emits no pruning marker.
        self.pruned += 1
        return [z for z in self.relation.zones if z.may_match(predicates)]

    def execute(self):
        return self.relation.to_rdd()

    def describe(self):
        return "SilentPrunerExec"


class QuietAdaptiveExec(PhysicalPlan):
    PARTITIONING = "driver"

    def __init__(self, ctx, child):
        self.ctx = ctx
        self.children = (child,)
        self.decision = None

    def execute(self):
        rows = self.children[0].execute().collect()
        # PC004: runtime decision recorded but describe() hides it.
        self.decision = "broadcast" if len(rows) < 100 else "shuffle"
        return self.ctx.parallelize(rows, 1)

    def describe(self):
        return "QuietAdaptiveExec"


class WastedPlacementExec(PhysicalPlan):
    PARTITIONING = "exchange"

    def __init__(self, child, key):
        self.children = (child,)
        self.key = key

    def execute(self):
        # PC005: produces key placement, then throws it away with a
        # plain map instead of consuming it partition-locally.
        placed = self.children[0].execute().partition_by(self.key, 8)
        return placed.map(lambda r: r)
