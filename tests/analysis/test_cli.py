"""End-to-end CLI contract: exit codes, output format, rule listing."""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).parent.parent.parent
FIXTURES = Path(__file__).parent / "fixtures"


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
        timeout=120,
    )


def test_shipped_tree_exits_zero():
    result = run_cli("src/")
    assert result.returncode == 0, result.stdout + result.stderr


def test_each_fixture_exits_nonzero_with_rule_and_location():
    expectations = {
        "bad_lock_discipline.py": ("LD001", "LD002", "LD003", "LD004"),
        "bad_plan_contract.py": ("PC001", "PC002", "PC003", "PC004", "PC005"),
        "bad_kernel.gensrc": ("CG001", "CG003", "CG004"),
    }
    for name, rules in expectations.items():
        result = run_cli(str(FIXTURES / name), "--no-self-check")
        assert result.returncode != 0, name
        for rule in rules:
            assert rule in result.stdout, (name, rule, result.stdout)
        # file:line format on every reported line
        for line in result.stdout.strip().splitlines():
            assert f"{name}:" in line, line


def test_list_rules_covers_registry():
    from repro.analysis import RULES

    result = run_cli("--list-rules")
    assert result.returncode == 0
    for rule in RULES:
        assert rule in result.stdout


def test_self_check_compiles_real_kernels():
    # Restrict paths to an empty-but-valid target: only the self-check runs.
    result = run_cli("src/repro/analysis/report.py")
    assert result.returncode == 0, result.stdout + result.stderr
