"""End-to-end CLI contract: exit codes, output format, rule listing."""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).parent.parent.parent
FIXTURES = Path(__file__).parent / "fixtures"


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
        timeout=120,
    )


def test_shipped_tree_exits_zero():
    result = run_cli("src/")
    assert result.returncode == 0, result.stdout + result.stderr


def test_each_fixture_exits_nonzero_with_rule_and_location():
    expectations = {
        "bad_lock_discipline.py": ("LD001", "LD002", "LD003", "LD004"),
        "bad_plan_contract.py": ("PC001", "PC002", "PC003", "PC004", "PC005"),
        "bad_kernel.gensrc": ("CG001", "CG003", "CG004"),
        "bad_lock_order.py": ("LO001", "LO002", "LO003"),
        "bad_taxonomy.py": ("ET001", "ET002", "ET003", "ET004"),
        "bad_cancellation.py": ("CP001", "CP002"),
        "bad_fault_sites.py": ("FS001",),
        "bad_escape.py": ("XP001", "XP002", "XP003"),
    }
    for name, rules in expectations.items():
        result = run_cli(str(FIXTURES / name), "--no-self-check")
        assert result.returncode != 0, name
        for rule in rules:
            assert rule in result.stdout, (name, rule, result.stdout)
        # file:line format on every reported line
        for line in result.stdout.strip().splitlines():
            assert f"{name}:" in line, line


def test_list_rules_covers_registry():
    from repro.analysis import RULES

    result = run_cli("--list-rules")
    assert result.returncode == 0
    for rule in RULES:
        assert rule in result.stdout


def test_self_check_compiles_real_kernels():
    # Restrict paths to an empty-but-valid target: only the self-check runs.
    result = run_cli("src/repro/analysis/report.py")
    assert result.returncode == 0, result.stdout + result.stderr


def test_json_format_is_machine_readable():
    import json

    result = run_cli(
        str(FIXTURES / "bad_taxonomy.py"), "--format", "json", "--no-self-check"
    )
    assert result.returncode == 1
    doc = json.loads(result.stdout)
    assert doc["files_checked"] == 1
    assert doc["baseline_errors"] == []
    assert doc["self_check_failures"] == []
    rules = {v["rule"] for v in doc["violations"]}
    assert {"ET001", "ET002", "ET003", "ET004"} <= rules
    for violation in doc["violations"]:
        assert set(violation) == {"rule", "path", "line", "message"}
        assert isinstance(violation["line"], int)


def test_select_and_ignore_filter_by_rule_or_family():
    fixture = str(FIXTURES / "bad_taxonomy.py")
    only_et002 = run_cli(fixture, "--select", "ET002", "--no-self-check")
    assert "ET002" in only_et002.stdout
    assert "ET001" not in only_et002.stdout
    ignored = run_cli(fixture, "--ignore", "ET", "--no-self-check")
    assert ignored.returncode == 0, ignored.stdout
    family = run_cli(fixture, "--select", "ET", "--no-self-check")
    assert {"ET001", "ET002", "ET003", "ET004"} <= {
        line.split()[1] for line in family.stdout.strip().splitlines()
    }


def test_baseline_suppresses_with_justification_only(tmp_path):
    # Relative path: baseline entries match the reported path verbatim.
    fixture = "tests/analysis/fixtures/bad_fault_sites.py"
    good = tmp_path / "baseline.txt"
    good.write_text(
        "FS001 tests/analysis/fixtures/bad_fault_sites.py  # seeded fixture\n",
        encoding="utf-8",
    )
    result = run_cli(fixture, "--baseline", str(good), "--no-self-check")
    assert result.returncode == 0, result.stdout
    bad = tmp_path / "bad_baseline.txt"
    bad.write_text(
        "FS001 tests/analysis/fixtures/bad_fault_sites.py\n", encoding="utf-8"
    )
    result = run_cli(fixture, "--baseline", str(bad), "--no-self-check")
    assert result.returncode == 1
    assert "justification" in result.stdout


def test_stale_baseline_entries_are_reported(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("ET001 src/no/such/file.py  # long gone\n", encoding="utf-8")
    result = run_cli(
        "src/repro/analysis/report.py", "--baseline", str(baseline),
        "--no-self-check",
    )
    assert result.returncode == 0, result.stdout
    assert "stale" in result.stdout
