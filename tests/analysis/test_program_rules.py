"""Unit tests for the whole-program rule families (LO/ET/CP/FS/XP).

Each family is exercised through ``check_paths`` on small synthetic
modules written to ``tmp_path``, isolated with ``--select`` semantics
so the file-local LD/PC rules stay out of the assertions. The seeded
``bad_*`` fixtures are covered end-to-end in ``test_cli.py``; here we
pin the *boundaries*: what must fire, what must stay silent, and that
the analyzer survives edge-case shapes without crashing.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.__main__ import check_paths

FIXTURES = Path(__file__).parent / "fixtures"


def run_rules(tmp_path, source, name="mod.py", select=None):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return check_paths([str(path)], select=select)


def rules_of(violations):
    return sorted(v.rule for v in violations)


# ---------------------------------------------------------------------------
# LO — lock ordering
# ---------------------------------------------------------------------------


class TestLockOrdering:
    def test_opposed_nesting_is_a_cycle(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            import threading

            class AB:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def ab(self):
                    with self._a:
                        with self._b:
                            pass

                def ba(self):
                    with self._b:
                        with self._a:
                            pass
            """,
            select=["LO"],
        )
        assert rules_of(found) == ["LO001"]

    def test_consistent_nesting_is_clean(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            import threading

            class AB:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """,
            select=["LO"],
        )
        assert found == []

    def test_cross_class_cycle_via_unique_method_name(self, tmp_path):
        # Holding A's lock while calling B.ingest (which takes B's
        # lock), and vice versa via B.drain -> A.offer: a two-module
        # deadlock no file-local rule can see.
        found = run_rules(
            tmp_path,
            """
            import threading

            class Producer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.sink = None

                def push(self):
                    with self._lock:
                        self.sink.ingest()

                def offer(self):
                    with self._lock:
                        pass

            class Consumer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.source = None

                def ingest(self):
                    with self._lock:
                        pass

                def drain(self):
                    with self._lock:
                        self.source.offer()
            """,
            select=["LO"],
        )
        assert rules_of(found) == ["LO001"]

    def test_builtin_container_methods_do_not_alias(self, tmp_path):
        # self._rows.append(...) under a lock must NOT resolve to some
        # class that happens to define a lock-taking `append` — that
        # conflation invents phantom cycles (the IndexedPartition /
        # PartitionBitmapIndex regression).
        found = run_rules(
            tmp_path,
            """
            import threading

            class Store:
                def __init__(self):
                    self._append_lock = threading.Lock()
                    self.index = Index()

                def append(self, row):
                    with self._append_lock:
                        self.index.record(row)

            class Index:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._rows = []

                def record(self, row):
                    with self._lock:
                        self._rows.append(row)
            """,
            select=["LO"],
        )
        assert found == []

    def test_rlock_reacquire_is_legal_plain_lock_is_not(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            import threading

            class Both:
                def __init__(self):
                    self._r = threading.RLock()
                    self._p = threading.Lock()

                def reentrant(self):
                    with self._r:
                        with self._r:
                            pass

                def deadlock(self):
                    with self._p:
                        with self._p:
                            pass
            """,
            select=["LO"],
        )
        assert rules_of(found) == ["LO002"]

    def test_requires_lock_method_must_not_self_acquire(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            import threading

            class Guarded:
                def __init__(self):
                    self._lock = threading.Lock()

                def _flush(self):  # requires-lock: _lock
                    with self._lock:
                        pass
            """,
            select=["LO003"],
        )
        assert rules_of(found) == ["LO003"]


# ---------------------------------------------------------------------------
# ET — exception taxonomy
# ---------------------------------------------------------------------------


class TestExceptionTaxonomy:
    def test_failstop_guard_licenses_broad_handler(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            from repro.errors import FAIL_STOP

            def guarded(task):
                try:
                    return task()
                except FAIL_STOP:
                    raise
                except Exception:
                    return None
            """,
            select=["ET"],
        )
        assert found == []

    def test_wrap_and_raise_passes(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            def wraps(task):
                try:
                    return task()
                except Exception as exc:
                    raise RuntimeError("task failed") from exc
            """,
            select=["ET"],
        )
        assert found == []

    def test_raise_inside_nested_def_does_not_count(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            def sneaky(task):
                try:
                    return task()
                except Exception:
                    def later():
                        raise RuntimeError("not a re-raise")
                    return later
            """,
            select=["ET"],
        )
        assert rules_of(found) == ["ET001"]

    def test_allow_requires_justification(self, tmp_path):
        bare = run_rules(
            tmp_path,
            """
            def absorb(task):
                try:
                    return task()
                except BaseException:  # lint: allow[ET002]
                    return None
            """,
            select=["ET"],
        )
        assert rules_of(bare) == ["ET002"]
        justified = run_rules(
            tmp_path,
            """
            def absorb(task):
                try:
                    return task()
                except BaseException:  # lint: allow[ET002] -- test double, result is the report
                    return None
            """,
            name="mod2.py",
            select=["ET"],
        )
        assert justified == []

    def test_retry_set_crosschecked_against_error_hierarchy(self, tmp_path):
        # A subclass of a fail-stop class sneaks in only via the
        # cross-module hierarchy in repro/errors.py.
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "errors.py").write_text(
            textwrap.dedent(
                """
                class SanitizerError(Exception):
                    pass

                class ZoneTrip(SanitizerError):
                    pass
                """
            ),
            encoding="utf-8",
        )
        (tmp_path / "sched.py").write_text(
            textwrap.dedent(
                """
                from repro.errors import ZoneTrip

                def _find_transient(exc):
                    if isinstance(exc, (ConnectionError, ZoneTrip)):
                        return exc
                    return None
                """
            ),
            encoding="utf-8",
        )
        found = check_paths(
            [str(tmp_path / "repro" / "errors.py"), str(tmp_path / "sched.py")],
            select=["ET004"],
        )
        assert rules_of(found) == ["ET004"]


# ---------------------------------------------------------------------------
# CP — cancellation polls
# ---------------------------------------------------------------------------


class TestCancellationPolls:
    def test_generator_loops_are_exempt(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            # analysis: poll-obligated
            def stream(partitions, query):
                query.check()
                for partition in partitions:
                    yield partition.read()
            """,
            select=["CP"],
        )
        assert found == []

    def test_pure_structure_walk_is_exempt(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            # analysis: poll-obligated
            def unwrap(exc, query):
                query.check()
                while exc is not None:
                    if isinstance(exc, ValueError):
                        return exc
                    exc = getattr(exc, "cause", None)
                return None
            """,
            select=["CP"],
        )
        assert found == []

    def test_polling_callee_satisfies_the_loop(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            # analysis: poll-obligated
            def _tick(query):
                query.check()

            def pump(pending, query):
                while pending:
                    _tick(query)
                    pending.pop()
            """,
            select=["CP"],
        )
        assert found == []

    def test_marked_class_scopes_the_obligation(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            import time

            class Driver:  # analysis: poll-obligated
                def spin(self, batches):
                    for batch in batches:
                        time.sleep(0.1)

            class Helper:
                def spin(self, batches):
                    for batch in batches:
                        time.sleep(0.1)
            """,
            select=["CP001"],
        )
        assert rules_of(found) == ["CP001"]
        assert found[0].line < 9  # the Driver loop, not Helper's


# ---------------------------------------------------------------------------
# FS — fault sites
# ---------------------------------------------------------------------------


class TestFaultSites:
    def test_registered_literal_is_clean(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            def f(injector):
                injector.maybe_fail("shuffle.fetch")
            """,
            select=["FS"],
        )
        assert found == []

    def test_forwarded_site_variables_are_skipped(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            def f(injector, site):
                injector.maybe_fail(site)
            """,
            select=["FS"],
        )
        assert found == []

    def test_unregistered_literal_fires(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            def f(injector):
                injector.should_fire("no.such.site")
            """,
            select=["FS"],
        )
        assert rules_of(found) == ["FS001"]

    def test_dead_site_needs_the_registry_in_scope(self, tmp_path):
        # FS002 only fires when faults/injector.py itself is analyzed;
        # a partial run cannot prove a site dead.
        partial = run_rules(
            tmp_path,
            """
            def f(injector):
                injector.maybe_fail("shuffle.fetch")
            """,
            select=["FS002"],
        )
        assert partial == []
        (tmp_path / "faults").mkdir()
        (tmp_path / "faults" / "injector.py").write_text(
            'SITES = ("placeholder",)\n', encoding="utf-8"
        )
        full = check_paths(
            [str(tmp_path / "mod.py"), str(tmp_path / "faults" / "injector.py")],
            select=["FS002"],
        )
        # Every *live* registered site except shuffle.fetch is unused in
        # this two-file program.
        assert full and all(v.rule == "FS002" for v in full)
        assert not any("shuffle.fetch" in v.message for v in full)


# ---------------------------------------------------------------------------
# XP — process-boundary escapes
# ---------------------------------------------------------------------------


class TestEscapes:
    def test_plain_data_shipped_class_is_clean(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            class Snapshot:  # analysis: shipped
                def __init__(self, rows, version):
                    self.rows = list(rows)
                    self.version = version
            """,
            select=["XP"],
        )
        assert found == []

    def test_shipped_lock_fires_only_on_marked_class(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            import threading

            class Shipped:  # analysis: shipped
                def __init__(self):
                    self._lock = threading.Lock()

            class DriverLocal:
                def __init__(self):
                    self._lock = threading.Lock()
            """,
            select=["XP"],
        )
        assert rules_of(found) == ["XP001"]

    def test_worker_marker_scopes_view_mutation(self, tmp_path):
        found = run_rules(
            tmp_path,
            """
            class Worker:  # analysis: worker-side
                def bad(self, snapshot_view, row):
                    snapshot_view.append(row)

            class Driver:
                def fine(self, snapshot_view, row):
                    snapshot_view.append(row)
            """,
            select=["XP"],
        )
        assert rules_of(found) == ["XP002"]


# ---------------------------------------------------------------------------
# Robustness: edge-case shapes must neither crash nor false-positive
# ---------------------------------------------------------------------------


EDGE_CASES = """
# Clean module exercising analyzer edge cases: nested `with` on
# attribute-resolved locks, generators, decorated functions, closures,
# lambdas, and async defs. Every rule family must stay silent here.
import functools
import threading


class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock


def traced(fn):
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)
    return wrapper


class Manager:
    def __init__(self):
        self._lock = threading.Lock()
        self.stats = Stats()
        self.entries = []  # guarded-by: _lock

    def bump(self):
        # Nested with on an attribute-resolved lock: Manager._lock
        # always precedes Stats._lock, a consistent global order.
        with self._lock:
            with self.stats._lock:
                self.stats.hits += 1

    @traced
    def decorated(self):
        with self._lock:
            self.entries.append(1)

    def stream(self):
        # Generator: its loop runs inside the consumer's loop.
        with self._lock:
            items = list(self.entries)
        for item in items:
            yield item

    def deferred(self):
        # Closure runs after the with released: no held-lock facts leak.
        with self._lock:
            task = lambda: self.stats.hits
        return task

    async def aio(self):
        with self._lock:
            return len(self.entries)
"""


def test_edge_case_module_is_clean_and_does_not_crash(tmp_path):
    path = tmp_path / "edge_cases.py"
    path.write_text(EDGE_CASES, encoding="utf-8")
    assert check_paths([str(path)]) == []


def test_shipped_tree_is_clean_for_program_families():
    found = check_paths(["src/repro"], select=["LO", "ET", "CP", "FS", "XP"])
    assert found == []


def test_fixture_expectations():
    expectations = {
        "bad_lock_order.py": {"LO001", "LO002", "LO003"},
        "bad_taxonomy.py": {"ET001", "ET002", "ET003", "ET004"},
        "bad_cancellation.py": {"CP001", "CP002"},
        "bad_fault_sites.py": {"FS001"},
        "bad_escape.py": {"XP001", "XP002", "XP003"},
    }
    for name, expected in expectations.items():
        found = check_paths([str(FIXTURES / name)])
        assert expected <= {v.rule for v in found}, (name, rules_of(found))
