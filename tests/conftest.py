"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import enable_indexing
from repro.engine.context import EngineContext
from repro.sql.session import Session


def small_config(**overrides) -> Config:
    """A deterministic, small configuration for tests."""
    base = dict(
        executor_threads=2,
        shuffle_partitions=4,
        default_parallelism=2,
        batch_size_bytes=64 * 1024,
        broadcast_threshold=50,
    )
    base.update(overrides)
    return Config(**base)


@pytest.fixture()
def ctx():
    context = EngineContext(small_config())
    yield context
    context.stop()


@pytest.fixture()
def session():
    s = Session(small_config())
    yield s
    s.stop()


@pytest.fixture()
def indexed_session():
    s = Session(small_config())
    enable_indexing(s)
    yield s
    s.stop()


@pytest.fixture()
def people_df(session):
    return session.create_dataframe(
        [
            (1, "ann", 30, "nl"),
            (2, "bob", 25, "us"),
            (3, "cat", 35, "nl"),
            (4, "dan", 25, "de"),
            (5, None, 40, "us"),
        ],
        [("id", "long"), ("name", "string"), ("age", "long"), ("country", "string")],
    )


@pytest.fixture()
def orders_df(session):
    return session.create_dataframe(
        [
            (10, 1, 99.5),
            (11, 1, 15.0),
            (12, 3, 40.0),
            (13, 9, 7.0),
            (14, 2, None),
        ],
        [("oid", "long"), ("pid", "long"), ("amount", "double")],
    )
