"""Concurrency tests: writers, readers, and snapshotters racing."""

from __future__ import annotations

import threading

from repro.ctrie import CTrie


def run_threads(*targets) -> list[BaseException]:
    errors: list[BaseException] = []

    def guard(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - collect everything
                errors.append(exc)

        return run

    threads = [threading.Thread(target=guard(t)) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestConcurrentWrites:
    def test_disjoint_writers(self):
        trie = CTrie()

        def writer(base):
            def run():
                for i in range(2000):
                    trie.insert(base + i, base + i)

            return run

        errors = run_threads(*(writer(w * 100_000) for w in range(4)))
        assert not errors
        assert len(trie) == 8000
        for w in range(4):
            assert trie[w * 100_000 + 1999] == w * 100_000 + 1999

    def test_overlapping_writers_last_wins(self):
        trie = CTrie()

        def writer(tag):
            def run():
                for i in range(1000):
                    trie.insert(i, tag)

            return run

        errors = run_threads(writer("a"), writer("b"), writer("c"))
        assert not errors
        assert len(trie) == 1000
        assert all(trie[i] in ("a", "b", "c") for i in range(0, 1000, 53))

    def test_writers_and_removers(self):
        trie = CTrie()
        for i in range(1000):
            trie.insert(i, i)

        def inserter():
            for i in range(1000, 2000):
                trie.insert(i, i)

        def remover():
            for i in range(1000):
                trie.remove(i)

        errors = run_threads(inserter, remover)
        assert not errors
        assert trie.to_dict() == {i: i for i in range(1000, 2000)}


class TestConcurrentReads:
    def test_readers_never_see_partial_state(self):
        trie = CTrie()
        stop = threading.Event()

        def writer():
            for i in range(5000):
                trie.insert(i % 100, ("payload", i))
            stop.set()

        def reader():
            while not stop.is_set():
                for key in range(100):
                    value = trie.lookup(key)
                    assert value is None or value[0] == "payload"

        errors = run_threads(writer, reader, reader)
        assert not errors

    def test_snapshots_during_writes_are_consistent(self):
        trie = CTrie()
        stop = threading.Event()
        snapshots = []

        def writer():
            # Pairs are always written together; a consistent snapshot
            # either has both halves of a generation or neither.
            for generation in range(300):
                trie.insert("left", generation)
                trie.insert("right", generation)
            stop.set()

        def snapshotter():
            while not stop.is_set():
                snapshots.append(trie.readonly_snapshot())

        errors = run_threads(writer, snapshotter)
        assert not errors
        for snap in snapshots:
            left = snap.lookup("left")
            right = snap.lookup("right")
            if left is not None and right is not None:
                assert left - right in (0, 1)  # writer order: left first

    def test_fork_heavy_workload(self):
        trie = CTrie()
        for i in range(500):
            trie.insert(i, 0)

        def forker():
            for _ in range(50):
                fork = trie.snapshot()
                fork.insert("private", threading.get_ident())
                assert fork["private"] == threading.get_ident()

        def writer():
            for i in range(500):
                trie.insert(i, 1)

        errors = run_threads(forker, forker, writer)
        assert not errors
        assert "private" not in trie
