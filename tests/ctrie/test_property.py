"""Property-based tests: the cTrie must behave exactly like a dict."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.ctrie import CTrie

keys = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
)
values = st.one_of(st.integers(), st.text(max_size=8), st.none())


@given(st.lists(st.tuples(keys, values), max_size=200))
def test_insert_matches_dict(pairs):
    trie = CTrie()
    model = {}
    for key, value in pairs:
        trie.insert(key, value)
        model[key] = value
    assert trie.to_dict() == model
    assert len(trie) == len(model)


@given(st.lists(st.tuples(st.sampled_from("irl"), keys, values), max_size=300))
def test_mixed_operations_match_dict(ops):
    trie = CTrie()
    model = {}
    for op, key, value in ops:
        if op == "i":
            trie.insert(key, value)
            model[key] = value
        elif op == "r":
            removed = trie.remove(key)
            expected = model.pop(key, None)
            assert removed == expected
        else:
            assert trie.lookup(key, "<absent>") == model.get(key, "<absent>")
    assert trie.to_dict() == model


@given(
    st.lists(st.tuples(keys, values), max_size=100),
    st.lists(st.tuples(keys, values), max_size=100),
)
def test_snapshot_freezes_state(before, after):
    trie = CTrie()
    model = {}
    for key, value in before:
        trie.insert(key, value)
        model[key] = value
    snap = trie.readonly_snapshot()
    frozen = dict(model)
    for key, value in after:
        trie.insert(key, value)
        model[key] = value
    assert snap.to_dict() == frozen
    assert trie.to_dict() == model


@given(st.lists(st.tuples(keys, values), min_size=1, max_size=100))
def test_writable_snapshot_divergence(pairs):
    trie = CTrie()
    for key, value in pairs:
        trie.insert(key, value)
    baseline = trie.to_dict()
    fork = trie.snapshot()
    for key in list(baseline):
        fork.remove(key)
        fork.insert(("forked", str(key)), 1)
    assert trie.to_dict() == baseline


class CTrieMachine(RuleBasedStateMachine):
    """Stateful fuzz: arbitrary interleavings of ops and snapshots."""

    def __init__(self):
        super().__init__()
        self.trie = CTrie()
        self.model: dict = {}
        self.snapshots: list[tuple[CTrie, dict]] = []

    @rule(key=keys, value=values)
    def insert(self, key, value):
        self.trie.insert(key, value)
        self.model[key] = value

    @rule(key=keys)
    def remove(self, key):
        assert self.trie.remove(key) == self.model.pop(key, None)

    @rule(key=keys)
    def lookup(self, key):
        assert self.trie.lookup(key, "<absent>") == self.model.get(key, "<absent>")

    @rule()
    def snapshot(self):
        if len(self.snapshots) < 5:
            self.snapshots.append(
                (self.trie.readonly_snapshot(), dict(self.model))
            )

    @invariant()
    def snapshots_stay_frozen(self):
        for snap, frozen in self.snapshots:
            assert snap.to_dict() == frozen


TestCTrieStateMachine = CTrieMachine.TestCase
TestCTrieStateMachine.settings = settings(max_examples=30, stateful_step_count=30)
