"""Functional tests for the concurrent trie."""

from __future__ import annotations

import pytest

from repro.ctrie import CTrie
from repro.ctrie.nodes import LNode
from repro.errors import ConcurrencyError


class TestBasicOperations:
    def test_empty(self):
        trie = CTrie()
        assert trie.lookup("missing") is None
        assert "missing" not in trie
        assert len(trie) == 0
        assert trie.to_dict() == {}

    def test_insert_lookup(self):
        trie = CTrie()
        trie.insert("a", 1)
        assert trie["a"] == 1
        assert "a" in trie

    def test_overwrite(self):
        trie = CTrie()
        trie.insert("k", 1)
        trie.insert("k", 2)
        assert trie["k"] == 2
        assert len(trie) == 1

    def test_none_is_a_valid_value(self):
        trie = CTrie()
        trie.insert("k", None)
        assert "k" in trie
        assert trie.lookup("k", "default") is None

    def test_none_is_a_valid_key(self):
        trie = CTrie()
        trie.insert(None, "v")
        assert trie[None] == "v"

    def test_many_inserts(self):
        trie = CTrie()
        for i in range(20_000):
            trie.insert(i, i * 2)
        assert len(trie) == 20_000
        assert trie[19_999] == 39_998
        assert trie[0] == 0

    def test_mixed_key_types(self):
        trie = CTrie()
        trie.insert(1, "int")
        trie.insert("1", "str")
        trie.insert((1,), "tuple")
        assert trie[1] == "int"
        assert trie["1"] == "str"
        assert trie[(1,)] == "tuple"

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            _ = CTrie()["nope"]

    def test_delitem_missing_raises(self):
        with pytest.raises(KeyError):
            del CTrie()["nope"]


class TestRemoval:
    def test_remove_returns_value(self):
        trie = CTrie()
        trie.insert("k", 5)
        assert trie.remove("k") == 5
        assert "k" not in trie

    def test_remove_missing_returns_none(self):
        assert CTrie().remove("nope") is None

    def test_remove_then_reinsert(self):
        trie = CTrie()
        trie.insert("k", 1)
        trie.remove("k")
        trie.insert("k", 2)
        assert trie["k"] == 2

    def test_remove_contracts_structure(self):
        trie = CTrie()
        for i in range(1000):
            trie.insert(i, i)
        for i in range(999):
            trie.remove(i)
        assert len(trie) == 1
        assert trie[999] == 999
        # After removing the last entry the trie is usable and empty.
        trie.remove(999)
        assert len(trie) == 0
        trie.insert("again", 1)
        assert trie["again"] == 1

    def test_interleaved_insert_remove(self):
        trie = CTrie()
        for round_ in range(5):
            for i in range(500):
                trie.insert(i, (round_, i))
            for i in range(0, 500, 2):
                trie.remove(i)
            assert len(trie) == 250
            for i in range(1, 500, 2):
                assert trie[i] == (round_, i)
            for i in range(1, 500, 2):
                trie.remove(i)
            assert len(trie) == 0


class _Collider:
    """Keys with identical portable hashes → LNode collision lists."""

    def __init__(self, tag: str):
        self.tag = tag

    def __hash__(self):  # pragma: no cover - not used by the trie
        return 0

    def __eq__(self, other):
        return isinstance(other, _Collider) and self.tag == other.tag


class TestHashCollisions:
    @pytest.fixture(autouse=True)
    def _patch_hash(self, monkeypatch):
        # Force full 64-bit collisions so LNodes are exercised.
        monkeypatch.setattr(
            CTrie, "_hash", staticmethod(lambda key: 12345 if isinstance(key, _Collider) else 99)
        )

    def test_colliding_keys_coexist(self):
        trie = CTrie()
        a, b, c = _Collider("a"), _Collider("b"), _Collider("c")
        trie.insert(a, 1)
        trie.insert(b, 2)
        trie.insert(c, 3)
        assert trie[a] == 1 and trie[b] == 2 and trie[c] == 3
        assert len(trie) == 3

    def test_collision_overwrite(self):
        trie = CTrie()
        a = _Collider("a")
        trie.insert(a, 1)
        trie.insert(_Collider("b"), 2)
        trie.insert(a, 10)
        assert trie[a] == 10

    def test_collision_removal_to_tomb(self):
        trie = CTrie()
        a, b = _Collider("a"), _Collider("b")
        trie.insert(a, 1)
        trie.insert(b, 2)
        assert trie.remove(a) == 1
        assert trie[b] == 2
        assert a not in trie
        assert trie.remove(b) == 2
        assert len(trie) == 0


class TestIteration:
    def test_items_complete(self):
        trie = CTrie()
        expected = {}
        for i in range(500):
            trie.insert(f"key{i}", i)
            expected[f"key{i}"] = i
        assert dict(trie.items()) == expected
        assert set(trie.keys()) == set(expected)
        assert sorted(trie.values()) == sorted(expected.values())

    def test_iteration_is_stable_against_writes(self):
        trie = CTrie()
        for i in range(100):
            trie.insert(i, i)
        seen = []
        for key, value in trie.items():
            seen.append((key, value))
            trie.insert(key + 1000, value)  # mutate during iteration
        assert len(seen) == 100


class TestReadonlySafety:
    def test_readonly_rejects_writes(self):
        trie = CTrie()
        trie.insert("a", 1)
        snapshot = trie.readonly_snapshot()
        with pytest.raises(ConcurrencyError):
            snapshot.insert("b", 2)
        with pytest.raises(ConcurrencyError):
            snapshot.remove("a")

    def test_readonly_of_readonly_is_self(self):
        snapshot = CTrie().readonly_snapshot()
        assert snapshot.readonly_snapshot() is snapshot
