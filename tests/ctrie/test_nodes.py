"""Unit tests for cTrie node helpers (bitmap math, dual expansion)."""

from __future__ import annotations

from repro.ctrie.nodes import (
    CNode,
    Gen,
    INode,
    LNode,
    SNode,
    TNode,
    dual,
    flag_pos,
)


class TestFlagPos:
    def test_level_zero_uses_low_bits(self):
        flag, pos = flag_pos(0b10101, 0, 0)
        assert flag == 1 << 0b10101
        assert pos == 0

    def test_position_counts_set_bits_below(self):
        bitmap = 0b1011  # children at indices 0, 1, 3
        flag, pos = flag_pos(3, 0, bitmap)
        assert flag == 0b1000
        assert pos == 2  # two set bits below index 3

    def test_higher_levels_shift(self):
        hash_ = 0b11111_00000
        flag0, _ = flag_pos(hash_, 0, 0)
        flag5, _ = flag_pos(hash_, 5, 0)
        assert flag0 == 1 << 0
        assert flag5 == 1 << 0b11111


class TestCNodeUpdates:
    def test_inserted_at(self):
        gen = Gen()
        node = CNode(0b1, [SNode("a", 1, 0)], gen)
        grown = node.inserted_at(1, 0b10, SNode("b", 2, 1), gen)
        assert grown.bitmap == 0b11
        assert len(grown.array) == 2
        assert len(node.array) == 1  # original untouched

    def test_updated_at(self):
        gen = Gen()
        node = CNode(0b1, [SNode("a", 1, 0)], gen)
        updated = node.updated_at(0, SNode("a", 99, 0), gen)
        assert updated.array[0].value == 99
        assert node.array[0].value == 1

    def test_removed_at(self):
        gen = Gen()
        node = CNode(0b11, [SNode("a", 1, 0), SNode("b", 2, 1)], gen)
        shrunk = node.removed_at(0, 0b1, gen)
        assert shrunk.bitmap == 0b10
        assert len(shrunk.array) == 1

    def test_to_contracted_single_snode(self):
        gen = Gen()
        node = CNode(0b1, [SNode("a", 1, 0)], gen)
        assert isinstance(node.to_contracted(5), TNode)
        assert isinstance(node.to_contracted(0), CNode)  # never at root


class TestDual:
    def test_differing_hashes_split(self):
        a = SNode("a", 1, 0b00001)
        b = SNode("b", 2, 0b00010)
        node = dual(a, b, 0, Gen())
        assert isinstance(node, CNode)
        assert node.bitmap == 0b110  # indices 1 and 2... (1<<1 | 1<<2)

    def test_same_prefix_descends(self):
        # Same low 5 bits → nested INode at the next level.
        a = SNode("a", 1, 0b00001_00001)
        b = SNode("b", 2, 0b00010_00001)
        node = dual(a, b, 0, Gen())
        assert isinstance(node, CNode)
        assert len(node.array) == 1
        assert isinstance(node.array[0], INode)

    def test_full_collision_becomes_lnode(self):
        a = SNode("a", 1, 42)
        b = SNode("b", 2, 42)
        node = dual(a, b, 70, Gen())  # beyond hash bits
        assert isinstance(node, LNode)
        assert node.get("a") == 1 and node.get("b") == 2


class TestLNode:
    def test_insert_remove(self):
        node = LNode([("a", 1), ("b", 2)])
        assert len(node.inserted("c", 3)) == 3
        assert len(node.inserted("a", 9)) == 2  # overwrite
        assert node.inserted("a", 9).get("a") == 9
        assert len(node.removed("a")) == 1

    def test_tnode_untombed(self):
        tomb = TNode("k", "v", 7)
        revived = tomb.untombed()
        assert isinstance(revived, SNode)
        assert (revived.key, revived.value, revived.hash) == ("k", "v", 7)
