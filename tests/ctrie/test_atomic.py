"""Tests for the atomic reference cell."""

from __future__ import annotations

import threading

from repro.ctrie.atomic import AtomicReference


class TestAtomicReference:
    def test_get_set(self):
        ref = AtomicReference(1)
        assert ref.get() == 1
        ref.set(2)
        assert ref.get() == 2

    def test_cas_by_identity(self):
        sentinel_a = object()
        sentinel_b = object()
        ref = AtomicReference(sentinel_a)
        assert ref.compare_and_set(sentinel_a, sentinel_b)
        assert ref.get() is sentinel_b
        assert not ref.compare_and_set(sentinel_a, object())

    def test_cas_uses_identity_not_equality(self):
        ref = AtomicReference([1, 2])
        equal_but_different = [1, 2]
        assert not ref.compare_and_set(equal_but_different, [3])

    def test_get_and_set(self):
        ref = AtomicReference("old")
        assert ref.get_and_set("new") == "old"
        assert ref.get() == "new"

    def test_contended_cas_exactly_one_winner(self):
        start = object()
        ref = AtomicReference(start)
        winners = []

        def contender(tag):
            if ref.compare_and_set(start, tag):
                winners.append(tag)

        threads = [threading.Thread(target=contender, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(winners) == 1
        assert ref.get() == winners[0]

    def test_increment_via_cas_loop(self):
        ref = AtomicReference(0)

        def bump():
            for _ in range(500):
                while True:
                    current = ref.get()
                    if ref.compare_and_set(current, current + 1):
                        break

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ref.get() == 2000
