"""Snapshot semantics: the MVCC foundation of the Indexed DataFrame."""

from __future__ import annotations

from repro.ctrie import CTrie


class TestReadonlySnapshot:
    def test_isolated_from_later_inserts(self):
        trie = CTrie()
        for i in range(100):
            trie.insert(i, "v1")
        snap = trie.readonly_snapshot()
        for i in range(100, 200):
            trie.insert(i, "v2")
        assert len(snap) == 100
        assert 150 not in snap
        assert len(trie) == 200

    def test_isolated_from_overwrites(self):
        trie = CTrie()
        trie.insert("k", "old")
        snap = trie.readonly_snapshot()
        trie.insert("k", "new")
        assert snap["k"] == "old"
        assert trie["k"] == "new"

    def test_isolated_from_removals(self):
        trie = CTrie()
        trie.insert("k", 1)
        snap = trie.readonly_snapshot()
        trie.remove("k")
        assert snap["k"] == 1
        assert "k" not in trie

    def test_chain_of_versions(self):
        trie = CTrie()
        versions = []
        for generation in range(10):
            trie.insert("counter", generation)
            versions.append(trie.readonly_snapshot())
        for generation, snap in enumerate(versions):
            assert snap["counter"] == generation

    def test_snapshot_of_empty(self):
        snap = CTrie().readonly_snapshot()
        assert len(snap) == 0


class TestWritableSnapshot:
    def test_fork_diverges_both_ways(self):
        trie = CTrie()
        trie.insert("shared", 0)
        fork = trie.snapshot()
        trie.insert("left", 1)
        fork.insert("right", 2)
        assert "right" not in trie and "left" not in fork
        assert trie["shared"] == 0 and fork["shared"] == 0

    def test_fork_overwrites_do_not_leak(self):
        trie = CTrie()
        for i in range(1000):
            trie.insert(i, "base")
        fork = trie.snapshot()
        for i in range(1000):
            fork.insert(i, "forked")
        assert all(trie[i] == "base" for i in range(0, 1000, 97))
        assert all(fork[i] == "forked" for i in range(0, 1000, 97))

    def test_fork_removals_do_not_leak(self):
        trie = CTrie()
        for i in range(100):
            trie.insert(i, i)
        fork = trie.snapshot()
        for i in range(100):
            fork.remove(i)
        assert len(fork) == 0
        assert len(trie) == 100

    def test_nested_forks(self):
        root = CTrie()
        root.insert("x", 0)
        child = root.snapshot()
        child.insert("x", 1)
        grandchild = child.snapshot()
        grandchild.insert("x", 2)
        assert root["x"] == 0
        assert child["x"] == 1
        assert grandchild["x"] == 2
