"""Tests for the logical optimizer rules."""

from __future__ import annotations

from repro.sql.expressions import (
    Add,
    And,
    Attribute,
    EqualTo,
    GreaterThan,
    Literal,
    Not,
)
from repro.sql.logical import (
    Filter,
    Join,
    Limit,
    LocalRelation,
    Project,
    Relation,
    Sort,
    Union,
)
from repro.sql.optimizer import (
    boolean_simplification,
    collapse_projects,
    combine_filters,
    combine_limits,
    constant_folding,
    prune_columns,
    prune_filters,
    push_down_predicates,
    remove_redundant_projects,
)
from repro.sql.relation import RowRelation
from repro.sql.types import BooleanType, StructType


def relation(*names: str) -> Relation:
    schema = StructType.from_pairs([(n, "long") for n in names])
    return Relation(RowRelation.from_rows(schema, [], 1))


def attr(rel: Relation, name: str) -> Attribute:
    return next(a for a in rel.output() if a.name == name)


class TestConstantFolding:
    def test_folds_literal_arithmetic(self):
        rel = relation("a")
        plan = Filter(EqualTo(attr(rel, "a"), Add(Literal(1), Literal(2))), rel)
        folded = constant_folding(plan)
        assert isinstance(folded.condition.right, Literal)
        assert folded.condition.right.value == 3

    def test_does_not_fold_attributes(self):
        rel = relation("a")
        plan = Filter(GreaterThan(attr(rel, "a"), Literal(1)), rel)
        assert constant_folding(plan) is plan


class TestBooleanSimplification:
    def test_and_true_elimination(self):
        rel = relation("a")
        cond = And(Literal(True), GreaterThan(attr(rel, "a"), Literal(1)))
        out = boolean_simplification(Filter(cond, rel))
        assert isinstance(out.condition, GreaterThan)

    def test_and_false_shortcircuit(self):
        rel = relation("a")
        cond = And(GreaterThan(attr(rel, "a"), Literal(1)), Literal(False))
        out = boolean_simplification(Filter(cond, rel))
        assert isinstance(out.condition, Literal) and out.condition.value is False

    def test_double_negation(self):
        rel = relation("a")
        cond = Not(Not(GreaterThan(attr(rel, "a"), Literal(1))))
        out = boolean_simplification(Filter(cond, rel))
        assert isinstance(out.condition, GreaterThan)


class TestFilterRules:
    def test_true_filter_removed(self):
        rel = relation("a")
        assert prune_filters(Filter(Literal(True, BooleanType()), rel)) is rel

    def test_false_filter_becomes_empty(self):
        rel = relation("a")
        out = prune_filters(Filter(Literal(False, BooleanType()), rel))
        assert isinstance(out, LocalRelation)
        assert out.rows == []

    def test_combine_filters_stacks(self):
        rel = relation("a")
        inner = Filter(GreaterThan(attr(rel, "a"), Literal(1)), rel)
        outer = Filter(GreaterThan(attr(rel, "a"), Literal(2)), inner)
        out = combine_filters(outer)
        assert isinstance(out, Filter)
        assert isinstance(out.child, Relation)
        assert isinstance(out.condition, And)


class TestPushdown:
    def test_push_through_project(self):
        rel = relation("a", "b")
        project = Project([attr(rel, "a")], rel)
        plan = Filter(GreaterThan(attr(rel, "a"), Literal(1)), project)
        out = push_down_predicates(plan)
        assert isinstance(out, Project)
        assert isinstance(out.child, Filter)

    def test_push_into_join_sides(self):
        left = relation("a")
        right = relation("b")
        join = Join(left, right, "inner", EqualTo(attr(left, "a"), attr(right, "b")))
        condition = And(
            GreaterThan(attr(left, "a"), Literal(1)),
            GreaterThan(attr(right, "b"), Literal(2)),
        )
        out = push_down_predicates(Filter(condition, join))
        assert isinstance(out, Join)
        assert isinstance(out.left, Filter)
        assert isinstance(out.right, Filter)

    def test_left_join_keeps_right_filter_above(self):
        left = relation("a")
        right = relation("b")
        join = Join(left, right, "left", EqualTo(attr(left, "a"), attr(right, "b")))
        condition = GreaterThan(attr(right, "b"), Literal(2))
        out = push_down_predicates(Filter(condition, join))
        # Pushing would turn left-join nulls into dropped rows: must stay.
        assert isinstance(out, Filter)
        assert isinstance(out.child, Join)

    def test_push_through_union_rewrites_both_sides(self):
        left = relation("a")
        right = relation("a")
        union = Union(left, right)
        out = push_down_predicates(
            Filter(GreaterThan(union.output()[0], Literal(1)), union)
        )
        assert isinstance(out, Union)
        assert isinstance(out.left, Filter) and isinstance(out.right, Filter)

    def test_no_push_below_limit(self):
        rel = relation("a")
        limited = Limit(5, rel)
        plan = Filter(GreaterThan(attr(rel, "a"), Literal(1)), limited)
        assert push_down_predicates(plan) is plan


class TestProjectAndLimitRules:
    def test_combine_limits_takes_min(self):
        rel = relation("a")
        out = combine_limits(Limit(10, Limit(3, rel)))
        assert isinstance(out, Limit) and out.n == 3
        assert isinstance(out.child, Relation)

    def test_collapse_projects_inlines(self):
        rel = relation("a")
        from repro.sql.expressions import Alias

        lower = Project([Alias(Add(attr(rel, "a"), Literal(1)), "b")], rel)
        b_attr = lower.output()[0]
        upper = Project([Alias(Add(b_attr, Literal(2)), "c")], lower)
        out = collapse_projects(upper)
        assert isinstance(out, Project)
        assert isinstance(out.child, Relation)  # one project left

    def test_remove_redundant_project(self):
        rel = relation("a", "b")
        out = remove_redundant_projects(Project(rel.output(), rel))
        assert out is rel

    def test_column_pruning_restricts_scan(self):
        rel = relation("a", "b", "c")
        plan = Project([attr(rel, "a")], Filter(GreaterThan(attr(rel, "b"), Literal(0)), rel))
        out = prune_columns(plan)
        scans = list(out.collect_plans(lambda p: isinstance(p, Project) and isinstance(p.child, Relation)))
        assert scans, out.pretty()
        pruned_names = {a.name for a in scans[0].output()}
        assert pruned_names == {"a", "b"}  # c is never needed

    def test_column_pruning_preserves_semantics(self, session):
        df = session.create_dataframe(
            [(1, 2, 3), (4, 5, 6)], [("a", "long"), ("b", "long"), ("c", "long")]
        )
        rows = df.filter(df.col("b") > 2).select("a").collect()
        assert [tuple(r) for r in rows] == [(4,)]
