"""Tests for the scalar function registry through SQL and the API."""

from __future__ import annotations

import pytest

from repro.sql.functions import expr_function, lit


@pytest.fixture()
def strings_df(session):
    df = session.create_dataframe(
        [(1, "  Hello World  ", 2.7), (2, "spark", -3.2)],
        [("id", "long"), ("s", "string"), ("x", "double")],
    )
    df.create_or_replace_temp_view("t")
    return session


def one(db, expr, where="id = 1"):
    return db.sql(f"SELECT {expr} AS v FROM t WHERE {where}").collect()[0]["v"]


class TestStringFunctions:
    def test_upper_lower(self, strings_df):
        assert one(strings_df, "upper(s)", "id = 2") == "SPARK"
        assert one(strings_df, "lower(s)", "id = 2") == "spark"

    def test_trim_family(self, strings_df):
        assert one(strings_df, "trim(s)") == "Hello World"
        assert one(strings_df, "ltrim(s)") == "Hello World  "
        assert one(strings_df, "rtrim(s)") == "  Hello World"

    def test_length(self, strings_df):
        assert one(strings_df, "length(s)", "id = 2") == 5

    def test_replace(self, strings_df):
        assert one(strings_df, "replace(s, 'World', 'There')") == "  Hello There  "

    def test_substring(self, strings_df):
        assert one(strings_df, "substring(s, 1, 3)", "id = 2") == "spa"

    def test_concat(self, strings_df):
        assert one(strings_df, "concat(s, '!')", "id = 2") == "spark!"

    def test_reverse(self, strings_df):
        assert one(strings_df, "reverse(s)", "id = 2") == "kraps"

    def test_predicates(self, strings_df):
        assert one(strings_df, "startswith(s, 'sp')", "id = 2") is True
        assert one(strings_df, "endswith(s, 'rk')", "id = 2") is True
        assert one(strings_df, "contains(s, 'par')", "id = 2") is True


class TestNumericFunctions:
    def test_abs(self, strings_df):
        assert one(strings_df, "abs(x)", "id = 2") == pytest.approx(3.2)

    def test_round_floor_ceil(self, strings_df):
        assert one(strings_df, "round(x, 0)") == pytest.approx(3.0)
        assert one(strings_df, "floor(x)") == 2
        assert one(strings_df, "ceil(x)") == 3
        assert one(strings_df, "floor(x)", "id = 2") == -4
        assert one(strings_df, "ceil(x)", "id = 2") == -3

    def test_greatest_least(self, strings_df):
        assert one(strings_df, "greatest(id, 5)", "id = 1") == 5
        assert one(strings_df, "least(id, 5)", "id = 1") == 1

    def test_sqrt_pow(self, strings_df):
        assert one(strings_df, "sqrt(4.0)") == 2.0
        assert one(strings_df, "pow(2, 10)") == 1024

    def test_null_in_null_out_through_sql(self, strings_df):
        value = strings_df.sql("SELECT upper(NULL) AS v FROM t WHERE id = 1").collect()
        assert value[0]["v"] is None


class TestExprFunctionHelper:
    def test_column_api_call(self, strings_df):
        df = strings_df.table("t").select(
            expr_function("upper", "s").alias("loud")
        )
        assert df.collect()[1]["loud"] == "SPARK"

    def test_literal_arguments(self, strings_df):
        df = strings_df.table("t").select(
            expr_function("concat", "s", lit("?")).alias("v")
        )
        assert df.collect()[1]["v"] == "spark?"
