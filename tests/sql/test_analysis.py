"""Tests for the analyzer: resolution, stars, HAVING, sort recovery."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.sql.functions import col, count, sum_


class TestResolution:
    def test_resolves_simple_select(self, session, people_df):
        df = people_df.select("name", "age")
        assert df.columns == ["name", "age"]

    def test_unknown_column(self, people_df):
        with pytest.raises(AnalysisError, match="resolve"):
            people_df.select("nope").schema

    def test_star_expansion(self, people_df):
        assert people_df.select("*").columns == ["id", "name", "age", "country"]

    def test_qualified_star(self, session, people_df):
        people_df.create_or_replace_temp_view("p")
        df = session.sql("SELECT x.* FROM p x")
        assert df.columns == ["id", "name", "age", "country"]

    def test_qualified_resolution(self, session, people_df, orders_df):
        people_df.create_or_replace_temp_view("people")
        orders_df.create_or_replace_temp_view("orders")
        df = session.sql(
            "SELECT p.id, o.oid FROM people p JOIN orders o ON p.id = o.pid"
        )
        assert df.columns == ["id", "oid"]

    def test_ambiguous_column_raises(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        with pytest.raises(AnalysisError, match="ambiguous"):
            session.sql(
                "SELECT id FROM people a JOIN people b ON a.id = b.id"
            ).schema

    def test_self_join_with_qualifiers_ok(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        df = session.sql(
            "SELECT a.id, b.name FROM people a JOIN people b ON a.id = b.id"
        )
        assert len(df.collect()) == 5

    def test_df_col_binds_to_instance(self, people_df, orders_df):
        condition = people_df.col("id") == orders_df.col("pid")
        joined = people_df.join(orders_df, on=condition)
        assert len(joined.collect()) == 4

    def test_missing_table(self, session):
        with pytest.raises(AnalysisError, match="not found"):
            session.sql("SELECT * FROM ghosts").schema


class TestTypeChecks:
    def test_filter_requires_boolean(self, people_df):
        with pytest.raises(AnalysisError, match="not boolean"):
            people_df.filter(col("age") + 1).collect()

    def test_aggregate_output_must_be_grouped(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        with pytest.raises(AnalysisError, match="GROUP BY"):
            session.sql("SELECT name, count(*) FROM people GROUP BY age").collect()

    def test_aggregate_in_where_rejected(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        with pytest.raises(AnalysisError, match="not allowed"):
            session.sql("SELECT * FROM people WHERE count(*) > 1").collect()

    def test_union_arity_mismatch(self, session, people_df, orders_df):
        with pytest.raises(AnalysisError):
            people_df.select("id", "name").union(orders_df.select("oid")).collect()

    def test_union_type_mismatch(self, session, people_df):
        with pytest.raises(AnalysisError, match="type mismatch"):
            people_df.select("id").union(people_df.select("name")).collect()


class TestRewrites:
    def test_global_aggregate_without_group_by(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        row = session.sql("SELECT count(*) AS n, sum(age) AS s FROM people").collect()[0]
        assert row["n"] == 5 and row["s"] == 155

    def test_having_with_aggregate(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        rows = session.sql(
            "SELECT age FROM people GROUP BY age HAVING count(*) > 1"
        ).collect()
        assert [r["age"] for r in rows] == [25]

    def test_having_on_group_key(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        rows = session.sql(
            "SELECT age, count(*) AS n FROM people GROUP BY age HAVING age > 30"
        ).collect()
        assert sorted(r["age"] for r in rows) == [35, 40]

    def test_order_by_pruned_column(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        rows = session.sql(
            "SELECT name FROM people WHERE name IS NOT NULL ORDER BY age ASC, name"
        ).collect()
        assert [r["name"] for r in rows] == ["bob", "dan", "ann", "cat"]
        # the helper column must not leak into the output
        assert rows[0].schema.names == ["name"]

    def test_order_by_select_alias(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        rows = session.sql(
            "SELECT age * 2 AS doubled FROM people ORDER BY doubled DESC LIMIT 2"
        ).collect()
        assert [r["doubled"] for r in rows] == [80, 70]

    def test_expressions_get_names(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        df = session.sql("SELECT age + 1 FROM people")
        assert len(df.columns) == 1  # auto-named, not an error


class TestGroupedData:
    def test_group_by_count(self, people_df):
        counts = dict(
            (r["age"], r["count"]) for r in people_df.group_by("age").count().collect()
        )
        assert counts == {25: 2, 30: 1, 35: 1, 40: 1}

    def test_group_by_agg_multiple(self, people_df):
        rows = people_df.group_by("country").agg(
            count().alias("n"), sum_("age").alias("total")
        ).collect()
        table = {r["country"]: (r["n"], r["total"]) for r in rows}
        assert table == {"nl": (2, 65), "us": (2, 65), "de": (1, 25)}

    def test_agg_requires_columns(self, people_df):
        with pytest.raises(AnalysisError):
            people_df.group_by("age").agg()
