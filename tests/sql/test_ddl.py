"""Tests for CREATE TEMP VIEW DDL and cost-annotated explain."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError


class TestCreateTempView:
    def test_create_and_query(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        session.sql("CREATE TEMP VIEW adults AS SELECT * FROM people WHERE age >= 30")
        assert session.sql("SELECT count(*) AS n FROM adults").collect()[0]["n"] == 3

    def test_or_replace(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        session.sql("CREATE TEMP VIEW v AS SELECT id FROM people")
        session.sql("CREATE OR REPLACE TEMP VIEW v AS SELECT name FROM people")
        assert session.table("v").columns == ["name"]

    def test_temporary_spelling(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        session.sql("CREATE TEMPORARY VIEW v2 AS SELECT id FROM people")
        assert session.table("v2").count() == 5

    def test_view_of_view(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        session.sql("CREATE TEMP VIEW a AS SELECT id, age FROM people")
        session.sql("CREATE TEMP VIEW b AS SELECT id FROM a WHERE age > 26")
        assert session.sql("SELECT count(*) AS n FROM b").collect()[0]["n"] == 3

    def test_ddl_returns_empty_frame(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        result = session.sql("CREATE TEMP VIEW x AS SELECT id FROM people")
        assert result.collect() == []

    def test_unsupported_create_rejected(self, session):
        with pytest.raises(AnalysisError, match="TEMP VIEW"):
            session.sql("CREATE TABLE t (id long)")

    def test_case_insensitive_ddl(self, session, people_df):
        people_df.create_or_replace_temp_view("people")
        session.sql("create or replace temp view lower_v as select id from people")
        assert session.table("lower_v").count() == 5


class TestCostExplain:
    def test_cost_annotations_present(self, people_df):
        text = people_df.filter(people_df.col("age") > 1).explain(cost=True)
        assert "rows≈" in text
        assert "rows≈5" in text  # the base relation estimate

    def test_default_explain_unannotated(self, people_df):
        assert "rows≈" not in people_df.explain()
