"""End-to-end SQL tests: text in, rows out."""

from __future__ import annotations

import pytest


@pytest.fixture()
def db(session, people_df, orders_df):
    people_df.create_or_replace_temp_view("people")
    orders_df.create_or_replace_temp_view("orders")
    return session


def q(db, text):
    return [tuple(r) for r in db.sql(text).collect()]


class TestSelectQueries:
    def test_projection_with_expression(self, db):
        rows = q(db, "SELECT id, age * 2 AS double_age FROM people ORDER BY id")
        assert rows[0] == (1, 60)

    def test_where_and_or(self, db):
        rows = q(db, "SELECT id FROM people WHERE age > 30 OR country = 'de' ORDER BY id")
        assert [r[0] for r in rows] == [3, 4, 5]

    def test_in_and_between(self, db):
        assert len(q(db, "SELECT id FROM people WHERE id IN (1, 2)")) == 2
        assert len(q(db, "SELECT id FROM people WHERE age BETWEEN 25 AND 30")) == 3

    def test_scalar_functions(self, db):
        rows = q(db, "SELECT upper(name) FROM people WHERE id = 1")
        assert rows == [("ANN",)]

    def test_case_expression(self, db):
        rows = q(
            db,
            "SELECT CASE WHEN age < 30 THEN 'young' WHEN age < 40 THEN 'mid' "
            "ELSE 'old' END AS bucket, count(*) AS n FROM people GROUP BY "
            "CASE WHEN age < 30 THEN 'young' WHEN age < 40 THEN 'mid' ELSE 'old' END "
            "ORDER BY bucket",
        )
        assert rows == [("mid", 2), ("old", 1), ("young", 2)]

    def test_limit(self, db):
        assert len(q(db, "SELECT * FROM people LIMIT 2")) == 2

    def test_distinct(self, db):
        assert len(q(db, "SELECT DISTINCT age FROM people")) == 4

    def test_union_all(self, db):
        rows = q(db, "SELECT id FROM people UNION ALL SELECT id FROM people")
        assert len(rows) == 10


class TestJoinQueries:
    def test_two_way_join_with_aggregation(self, db):
        rows = q(
            db,
            """
            SELECT p.name, count(*) AS n, sum(o.amount) AS total
            FROM people p JOIN orders o ON p.id = o.pid
            WHERE o.amount IS NOT NULL
            GROUP BY p.name
            ORDER BY total DESC
            """,
        )
        assert rows == [("ann", 2, 114.5), ("cat", 1, 40.0)]

    def test_left_join_null_padding(self, db):
        rows = q(
            db,
            "SELECT p.id, o.oid FROM people p LEFT JOIN orders o "
            "ON p.id = o.pid ORDER BY p.id, o.oid",
        )
        assert (4, None) in rows and (5, None) in rows

    def test_three_way_join(self, db, session):
        cities = session.create_dataframe(
            [("nl", "Amsterdam"), ("us", "NYC"), ("de", "Berlin")],
            [("code", "string"), ("city", "string")],
        )
        cities.create_or_replace_temp_view("cities")
        rows = q(
            db,
            """
            SELECT p.name, c.city, o.amount
            FROM people p
            JOIN orders o ON p.id = o.pid
            JOIN cities c ON p.country = c.code
            WHERE o.amount > 20
            ORDER BY o.amount DESC
            """,
        )
        assert rows == [("ann", "Amsterdam", 99.5), ("cat", "Amsterdam", 40.0)]

    def test_subquery_in_from(self, db):
        rows = q(
            db,
            """
            SELECT big.name FROM (
              SELECT name, age FROM people WHERE age >= 30
            ) big
            WHERE big.name IS NOT NULL
            ORDER BY big.age DESC
            """,
        )
        assert rows == [("cat",), ("ann",)]

    def test_self_join_pairs(self, db):
        rows = q(
            db,
            """
            SELECT a.name, b.name FROM people a JOIN people b
            ON a.age = b.age AND a.id < b.id
            """,
        )
        assert rows == [("bob", "dan")]


class TestAggregationQueries:
    def test_group_by_expression(self, db):
        rows = q(
            db,
            "SELECT age % 2 AS parity, count(*) AS n FROM people "
            "GROUP BY age % 2 ORDER BY parity",
        )
        assert rows == [(0, 2), (1, 3)]

    def test_multiple_aggregates(self, db):
        rows = q(
            db,
            "SELECT country, min(age) AS lo, max(age) AS hi, avg(age) AS mean "
            "FROM people GROUP BY country ORDER BY country",
        )
        assert rows == [("de", 25, 25, 25.0), ("nl", 30, 35, 32.5), ("us", 25, 40, 32.5)]

    def test_count_distinct_sql(self, db):
        rows = q(db, "SELECT count(DISTINCT country) AS c FROM people")
        assert rows == [(3,)]

    def test_aggregate_over_join(self, db):
        rows = q(
            db,
            "SELECT count(*) AS n FROM people p JOIN orders o ON p.id = o.pid",
        )
        assert rows == [(4,)]

    def test_empty_group_result(self, db):
        rows = q(db, "SELECT age, count(*) FROM people WHERE age > 99 GROUP BY age")
        assert rows == []

    def test_global_aggregate_on_empty(self, db):
        rows = q(db, "SELECT count(*) AS n FROM people WHERE age > 99")
        assert rows == [(0,)]
