"""Tests for the SQL type system, schemas, and rows."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.sql.types import (
    BooleanType,
    DoubleType,
    IntegerType,
    LongType,
    Row,
    StringType,
    StructField,
    StructType,
    TimestampType,
    common_type,
    infer_type,
    type_for_name,
)


class TestDataTypes:
    def test_equality_by_class(self):
        assert LongType() == LongType()
        assert LongType() != IntegerType()
        assert hash(LongType()) == hash(LongType())

    def test_names(self):
        assert LongType().name == "long"
        assert StringType().name == "string"

    def test_type_for_name_aliases(self):
        assert type_for_name("bigint") == LongType()
        assert type_for_name("int") == IntegerType()
        assert type_for_name("float") == DoubleType()
        assert type_for_name("BOOL") == BooleanType()

    def test_type_for_name_unknown(self):
        with pytest.raises(SchemaError):
            type_for_name("decimal")

    def test_validity_checks(self):
        assert LongType().valid(5)
        assert not LongType().valid("5")
        assert not LongType().valid(2**63)  # out of 64-bit range
        assert IntegerType().valid(2**31 - 1)
        assert not IntegerType().valid(2**31)
        assert not LongType().valid(True)  # bool is not a long
        assert BooleanType().valid(True)
        assert DoubleType().valid(1)  # ints accepted where doubles expected
        assert LongType().valid(None)  # nullability checked separately

    def test_infer_type(self):
        assert infer_type(5) == LongType()
        assert infer_type(1.5) == DoubleType()
        assert infer_type("x") == StringType()
        assert infer_type(True) == BooleanType()
        with pytest.raises(SchemaError):
            infer_type(object())

    def test_common_type_widening(self):
        assert common_type(IntegerType(), LongType()) == LongType()
        assert common_type(LongType(), DoubleType()) == DoubleType()
        assert common_type(BooleanType(), IntegerType()) == IntegerType()
        assert common_type(TimestampType(), LongType()) == LongType()
        with pytest.raises(SchemaError):
            common_type(StringType(), LongType())


class TestStructType:
    def test_from_pairs(self):
        schema = StructType.from_pairs([("id", "long"), ("name", StringType())])
        assert schema.names == ["id", "name"]
        assert schema["id"].dtype == LongType()

    def test_duplicate_names_allowed_but_ambiguous(self):
        # Derived schemas (self-joins) may duplicate names, as in Spark;
        # only name-based lookup of the duplicate is rejected.
        schema = StructType([StructField("a", LongType()), StructField("a", LongType())])
        assert len(schema) == 2
        with pytest.raises(SchemaError, match="ambiguous"):
            schema.field_index("a")

    def test_field_index(self):
        schema = StructType.from_pairs([("a", "long"), ("b", "string")])
        assert schema.field_index("b") == 1
        with pytest.raises(SchemaError):
            schema.field_index("c")

    def test_contains_len_iter(self):
        schema = StructType.from_pairs([("a", "long"), ("b", "string")])
        assert "a" in schema and "z" not in schema
        assert len(schema) == 2
        assert [f.name for f in schema] == ["a", "b"]

    def test_validate_row_arity(self):
        schema = StructType.from_pairs([("a", "long")])
        with pytest.raises(SchemaError, match="2 values"):
            schema.validate_row((1, 2))

    def test_validate_row_nullability(self):
        schema = StructType([StructField("a", LongType(), nullable=False)])
        with pytest.raises(SchemaError, match="non-nullable"):
            schema.validate_row((None,))

    def test_validate_row_types(self):
        schema = StructType.from_pairs([("a", "long")])
        with pytest.raises(SchemaError, match="invalid"):
            schema.validate_row(("not a long",))
        schema.validate_row((5,))  # no raise


class TestRow:
    @pytest.fixture()
    def row(self):
        schema = StructType.from_pairs([("id", "long"), ("name", "string")])
        return Row((7, "ann"), schema)

    def test_access_by_index_name_attribute(self, row):
        assert row[0] == 7
        assert row["name"] == "ann"
        assert row.name == "ann"

    def test_missing_attribute(self, row):
        with pytest.raises(AttributeError):
            _ = row.missing

    def test_as_dict_and_tuple(self, row):
        assert row.as_dict() == {"id": 7, "name": "ann"}
        assert row.as_tuple() == (7, "ann")

    def test_equality_with_tuple(self, row):
        assert row == (7, "ann")
        assert tuple(row) == (7, "ann")

    def test_hashable(self, row):
        assert {row: 1}[row] == 1

    def test_repr_shows_names(self, row):
        assert "id=7" in repr(row) and "name='ann'" in repr(row)
