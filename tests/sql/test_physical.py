"""Unit tests for physical operators and expression binding."""

from __future__ import annotations

import pytest

from repro.errors import PlanningError
from repro.sql.expressions import (
    AggregateExpression,
    Alias,
    Attribute,
    BoundReference,
    EqualTo,
    GreaterThan,
    Literal,
    SortOrder,
)
from repro.sql.physical import (
    FilterExec,
    HashAggregateExec,
    LimitExec,
    LocalDataExec,
    ProjectExec,
    SortExec,
    _AggSpec,
    bind_expression,
)
from repro.sql.types import LongType, StringType


def attrs(*specs):
    return [Attribute(n, t) for n, t in specs]


def local(ctx, rows, output):
    return LocalDataExec(ctx, rows, output)


class TestBinding:
    def test_binds_by_expr_id(self):
        a, b = attrs(("a", LongType()), ("b", LongType()))
        bound = bind_expression(GreaterThan(b, a), [a, b])
        assert bound.eval((1, 5)) is True

    def test_unknown_attribute_raises(self):
        a, b = attrs(("a", LongType()), ("b", LongType()))
        with pytest.raises(PlanningError):
            bind_expression(GreaterThan(b, Literal(1)), [a])

    def test_binding_is_positional_not_by_name(self):
        first = Attribute("x", LongType())
        second = Attribute("x", LongType())  # same name, new id
        bound = bind_expression(second, [first, second])
        assert isinstance(bound, BoundReference)
        assert bound.ordinal == 1


class TestBasicOperators:
    def test_filter_keeps_only_true(self, ctx):
        a = Attribute("a", LongType())
        child = local(ctx, [(1,), (None,), (5,)], [a])
        out = FilterExec(GreaterThan(a, Literal(2)), child)
        assert out.execute().collect() == [(5,)]  # NULL comparison drops

    def test_project_evaluates_expressions(self, ctx):
        a = Attribute("a", LongType())
        child = local(ctx, [(3,)], [a])
        from repro.sql.expressions import Add

        out = ProjectExec([Alias(Add(a, Literal(10)), "b")], child)
        assert out.execute().collect() == [(13,)]
        assert out.output[0].name == "b"

    def test_limit(self, ctx):
        a = Attribute("a", LongType())
        child = local(ctx, [(i,) for i in range(10)], [a])
        assert LimitExec(3, child).execute().collect() == [(0,), (1,), (2,)]

    def test_sort_directions_and_nulls(self, ctx):
        a = Attribute("a", LongType())
        child = local(ctx, [(3,), (None,), (1,), (2,)], [a])
        ascending = SortExec([SortOrder(a, True)], child).execute().collect()
        assert ascending == [(None,), (1,), (2,), (3,)]
        descending = SortExec([SortOrder(a, False)], child).execute().collect()
        assert descending == [(3,), (2,), (1,), (None,)]

    def test_sort_composite_key(self, ctx):
        a = Attribute("a", LongType())
        b = Attribute("b", StringType())
        rows = [(1, "b"), (2, "a"), (1, "a"), (2, "b")]
        child = local(ctx, rows, [a, b])
        out = SortExec([SortOrder(a, True), SortOrder(b, False)], child)
        assert out.execute().collect() == [(1, "b"), (1, "a"), (2, "b"), (2, "a")]


class TestAggSpec:
    @pytest.mark.parametrize(
        "fn,values,expected",
        [
            ("count", [1, None, 3], 2),
            ("sum", [1, None, 3], 4),
            ("min", [5, 2, None], 2),
            ("max", [5, 2, None], 5),
            ("avg", [2, 4, None], 3.0),
            ("first", ["a", "b"], "a"),
            ("count_distinct", [1, 1, 2, None], 2),
        ],
    )
    def test_update_result(self, fn, values, expected):
        spec = _AggSpec(fn, BoundReference(0, LongType()))
        acc = spec.create()
        for v in values:
            acc = spec.update(acc, (v,))
        assert spec.result(acc) == expected

    @pytest.mark.parametrize("fn", ["count", "sum", "min", "max", "avg", "count_distinct"])
    def test_merge_equals_sequential(self, fn):
        spec = _AggSpec(fn, BoundReference(0, LongType()))
        left_values, right_values = [1, 7, 3], [2, 9]
        left = spec.create()
        for v in left_values:
            left = spec.update(left, (v,))
        right = spec.create()
        for v in right_values:
            right = spec.update(right, (v,))
        merged = spec.merge(left, right)
        sequential = spec.create()
        for v in left_values + right_values:
            sequential = spec.update(sequential, (v,))
        assert spec.result(merged) == spec.result(sequential)

    def test_empty_aggregates(self):
        for fn, expected in [("count", 0), ("sum", None), ("min", None),
                             ("avg", None), ("count_distinct", 0)]:
            spec = _AggSpec(fn, BoundReference(0, LongType()))
            assert spec.result(spec.create()) == expected


class TestHashAggregateExec:
    def test_grouped(self, ctx):
        k = Attribute("k", LongType())
        v = Attribute("v", LongType())
        rows = [(1, 10), (2, 20), (1, 30)]
        child = local(ctx, rows, [k, v])
        agg = HashAggregateExec(
            [k],
            [k, Alias(AggregateExpression("sum", v), "total")],
            child,
        )
        assert sorted(agg.execute().collect()) == [(1, 40), (2, 20)]

    def test_global_on_empty_input_emits_one_row(self, ctx):
        v = Attribute("v", LongType())
        child = local(ctx, [], [v])
        agg = HashAggregateExec(
            [], [Alias(AggregateExpression("count", None), "n")], child
        )
        assert agg.execute().collect() == [(0,)]

    def test_grouping_expression_output(self, ctx):
        from repro.sql.expressions import Modulo

        k = Attribute("k", LongType())
        child = local(ctx, [(i,) for i in range(10)], [k])
        parity = Modulo(k, Literal(2))
        agg = HashAggregateExec(
            [parity],
            [Alias(parity, "parity"), Alias(AggregateExpression("count", None), "n")],
            child,
        )
        assert sorted(agg.execute().collect()) == [(0, 5), (1, 5)]

    def test_unmatched_output_raises(self, ctx):
        k = Attribute("k", LongType())
        other = Attribute("other", LongType())
        child = local(ctx, [(1,)], [k])
        with pytest.raises(PlanningError):
            HashAggregateExec([k], [other], child)
