"""Tests for join planning and execution across join types and modes."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.sql.functions import col


def pairs(df, *names):
    return sorted(tuple(r[n] for n in names) for r in df.collect())


class TestInnerJoin:
    def test_by_condition(self, people_df, orders_df):
        joined = people_df.join(orders_df, on=people_df.col("id") == orders_df.col("pid"))
        assert pairs(joined, "id", "oid") == [(1, 10), (1, 11), (2, 14), (3, 12)]

    def test_duplicate_keys_produce_products(self, session):
        left = session.create_dataframe([(1, "a"), (1, "b")], [("k", "long"), ("l", "string")])
        right = session.create_dataframe([(1, "x"), (1, "y")], [("k2", "long"), ("r", "string")])
        joined = left.join(right, on=left.col("k") == right.col("k2"))
        assert joined.count() == 4

    def test_null_keys_never_match(self, session):
        left = session.create_dataframe([(None, "l")], [("k", "long"), ("v", "string")])
        right = session.create_dataframe([(None, "r")], [("k2", "long"), ("w", "string")])
        assert left.join(right, on=left.col("k") == right.col("k2")).count() == 0

    def test_join_on_column_names(self, session):
        left = session.create_dataframe([(1, "a")], [("k", "long"), ("l", "string")])
        right = session.create_dataframe([(1, "x")], [("k", "long"), ("r", "string")])
        assert left.join(right, on="k").count() == 1

    def test_extra_non_equi_condition(self, people_df, orders_df):
        condition = (people_df.col("id") == orders_df.col("pid")) & (
            orders_df.col("amount") > 20
        )
        joined = people_df.join(orders_df, on=condition)
        assert pairs(joined, "oid") == [(10,), (12,)]


class TestOuterJoins:
    def test_left_join_pads_missing(self, people_df, orders_df):
        joined = people_df.join(
            orders_df, on=people_df.col("id") == orders_df.col("pid"), how="left"
        )
        result = pairs(joined, "id")
        assert result.count((4,)) == 1 and result.count((5,)) == 1
        assert joined.filter(col("oid").is_null()).count() == 2

    def test_right_join(self, people_df, orders_df):
        joined = people_df.join(
            orders_df, on=people_df.col("id") == orders_df.col("pid"), how="right"
        )
        assert joined.count() == 5  # order 13 has pid 9 → padded left side
        assert joined.filter(col("id").is_null()).count() == 1

    def test_full_join(self, people_df, orders_df):
        joined = people_df.join(
            orders_df, on=people_df.col("id") == orders_df.col("pid"), how="full"
        )
        # 4 matches + person 4,5 unmatched + order 13 unmatched
        assert joined.count() == 7

    def test_semi_join_projects_left_only(self, people_df, orders_df):
        joined = people_df.join(
            orders_df, on=people_df.col("id") == orders_df.col("pid"), how="semi"
        )
        assert joined.columns == people_df.columns
        assert pairs(joined, "id") == [(1,), (2,), (3,)]

    def test_anti_join(self, people_df, orders_df):
        joined = people_df.join(
            orders_df, on=people_df.col("id") == orders_df.col("pid"), how="anti"
        )
        assert pairs(joined, "id") == [(4,), (5,)]

    def test_left_join_with_extra_condition(self, people_df, orders_df):
        condition = (people_df.col("id") == orders_df.col("pid")) & (
            orders_df.col("amount") > 50
        )
        joined = people_df.join(orders_df, on=condition, how="left")
        matched = joined.filter(col("oid").is_not_null())
        assert pairs(matched, "id", "oid") == [(1, 10)]
        assert joined.count() == 5  # every person appears


class TestCrossJoin:
    def test_cross_product(self, session):
        left = session.create_dataframe([(1,), (2,)], [("a", "long")])
        right = session.create_dataframe([(10,), (20,), (30,)], [("b", "long")])
        assert left.join(right).count() == 6

    def test_cross_with_filter_after(self, session):
        left = session.create_dataframe([(1,), (2,)], [("a", "long")])
        right = session.create_dataframe([(1,), (2,)], [("b", "long")])
        joined = left.join(right).filter(col("a") == col("b"))
        assert joined.count() == 2

    def test_invalid_join_type(self, people_df, orders_df):
        with pytest.raises(AnalysisError):
            people_df.join(orders_df, on=people_df.col("id") == orders_df.col("pid"), how="sideways")


class TestJoinModes:
    """Broadcast vs shuffled dispatch (threshold = 50 in test config)."""

    def test_small_right_side_broadcasts(self, session):
        big = session.create_dataframe([(i,) for i in range(500)], [("a", "long")])
        small = session.create_dataframe([(7,), (8,)], [("b", "long")])
        joined = big.join(small, on=big.col("a") == small.col("b"))
        assert "BroadcastHashJoin" in joined.explain()
        assert joined.count() == 2

    def test_large_right_side_shuffles(self, session):
        big = session.create_dataframe([(i,) for i in range(500)], [("a", "long")])
        other = session.create_dataframe([(i,) for i in range(500)], [("b", "long")])
        joined = big.join(other, on=big.col("a") == other.col("b"))
        # Statically undecided → adaptive; at runtime 500 rows exceed
        # the 50-row threshold and the join resolves to shuffle.
        assert "AdaptiveJoin" in joined.explain()
        assert joined.count() == 500
        assert "decision=shuffle" in joined.last_execution_plan()

    def test_large_right_side_shuffles_static(self):
        from tests.conftest import small_config
        from repro.sql.session import Session

        session = Session(small_config(adaptive_enabled=False))
        try:
            big = session.create_dataframe([(i,) for i in range(500)], [("a", "long")])
            other = session.create_dataframe([(i,) for i in range(500)], [("b", "long")])
            joined = big.join(other, on=big.col("a") == other.col("b"))
            assert "ShuffledHashJoin" in joined.explain()
            assert joined.count() == 500
        finally:
            session.stop()

    def test_right_outer_never_broadcast(self, session):
        big = session.create_dataframe([(i,) for i in range(500)], [("a", "long")])
        small = session.create_dataframe([(7,)], [("b", "long")])
        joined = big.join(small, on=big.col("a") == small.col("b"), how="right")
        # A right outer join can never take the broadcast build, not
        # even adaptively — the plan commits to shuffle up front.
        assert "ShuffledHashJoin" in joined.explain()
        assert joined.count() == 1

    def test_broadcast_and_shuffled_agree(self, session):
        left = session.create_dataframe(
            [(i % 20, i) for i in range(200)], [("k", "long"), ("v", "long")]
        )
        small = session.create_dataframe(
            [(k, k * 100) for k in range(10)], [("k2", "long"), ("w", "long")]
        )
        broadcast = left.join(small, on=left.col("k") == small.col("k2"))
        forced = left.join(
            small.union(small).distinct(),  # breaks the row estimate → shuffle
            on=left.col("k") == small.col("k2"),
        )
        assert sorted(map(tuple, broadcast.collect())) == sorted(
            map(tuple, forced.collect())
        )
