"""Tests for the Column expression builder (operator overloads)."""

from __future__ import annotations

import pytest

from repro.sql.column import Column
from repro.sql.expressions import (
    Add,
    Alias,
    And,
    CaseWhen,
    Cast,
    Divide,
    EqualTo,
    GreaterThan,
    In,
    IsNotNull,
    IsNull,
    LessThanOrEqual,
    Like,
    Literal,
    Modulo,
    Multiply,
    Not,
    NotEqualTo,
    Or,
    SortOrder,
    Subtract,
    UnaryMinus,
    UnresolvedAttribute,
)
from repro.sql.functions import col, lit, when
from repro.sql.types import LongType


class TestConstruction:
    def test_col_simple(self):
        expr = col("age").expr
        assert isinstance(expr, UnresolvedAttribute)
        assert expr.name == "age" and expr.qualifier is None

    def test_col_qualified(self):
        expr = col("t.age").expr
        assert expr.qualifier == "t" and expr.name == "age"

    def test_lit(self):
        assert isinstance(lit(5).expr, Literal)
        assert lit(lit(5)).expr.value == 5  # idempotent


class TestOperators:
    c = col("x")

    @pytest.mark.parametrize(
        "build,node",
        [
            (lambda c: c == 1, EqualTo),
            (lambda c: c != 1, NotEqualTo),
            (lambda c: c > 1, GreaterThan),
            (lambda c: c <= 1, LessThanOrEqual),
            (lambda c: c + 1, Add),
            (lambda c: c - 1, Subtract),
            (lambda c: c * 2, Multiply),
            (lambda c: c / 2, Divide),
            (lambda c: c % 2, Modulo),
            (lambda c: -c, UnaryMinus),
            (lambda c: (c == 1) & (c == 2), And),
            (lambda c: (c == 1) | (c == 2), Or),
            (lambda c: ~(c == 1), Not),
            (lambda c: c.is_null(), IsNull),
            (lambda c: c.is_not_null(), IsNotNull),
            (lambda c: c.isin(1, 2), In),
            (lambda c: c.like("a%"), Like),
        ],
    )
    def test_operator_builds_node(self, build, node):
        assert isinstance(build(self.c).expr, node)

    def test_reflected_arithmetic(self):
        expr = (10 - col("x")).expr
        assert isinstance(expr, Subtract)
        assert isinstance(expr.left, Literal) and expr.left.value == 10

    def test_between_expands(self):
        expr = col("x").between(1, 5).expr
        assert isinstance(expr, And)

    def test_alias_and_cast(self):
        assert isinstance(col("x").alias("y").expr, Alias)
        cast = col("x").cast("long").expr
        assert isinstance(cast, Cast) and cast.dtype == LongType()
        assert isinstance(col("x").cast(LongType()).expr, Cast)

    def test_sort_directions(self):
        asc = col("x").asc().expr
        desc = col("x").desc().expr
        assert isinstance(asc, SortOrder) and asc.ascending
        assert isinstance(desc, SortOrder) and not desc.ascending


class TestCaseWhenChain:
    def test_when_otherwise(self):
        expr = when(col("x") > 1, "big").otherwise("small").expr
        assert isinstance(expr, CaseWhen)
        assert len(expr.branches) == 1 and expr.else_value is not None

    def test_chained_whens(self):
        expr = (
            when(col("x") > 10, "big")
            .when(col("x") > 5, "mid")
            .otherwise("small")
            .expr
        )
        assert len(expr.branches) == 2

    def test_otherwise_twice_rejected(self):
        complete = when(col("x") > 1, "a").otherwise("b")
        with pytest.raises(ValueError):
            complete.otherwise("c")
        with pytest.raises(ValueError):
            complete.when(col("x") > 2, "d")

    def test_when_on_non_case_rejected(self):
        with pytest.raises(ValueError):
            col("x").when(col("x") > 1, "v")

    def test_otherwise_on_non_case_rejected(self):
        with pytest.raises(ValueError):
            col("x").otherwise("v")


class TestGuards:
    def test_bool_coercion_raises(self):
        with pytest.raises(TypeError):
            if col("x") == 1:  # noqa: SIM108 - deliberate misuse
                pass

    def test_repr(self):
        assert "x" in repr(col("x"))
