"""Tests for the SQL lexer and parser."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.sql.expressions import (
    Add,
    Alias,
    And,
    CaseWhen,
    Cast,
    EqualTo,
    GreaterThanOrEqual,
    In,
    IsNull,
    LessThanOrEqual,
    Like,
    Literal,
    Multiply,
    Not,
    Or,
    UnaryMinus,
    UnresolvedAttribute,
    UnresolvedFunction,
    UnresolvedStar,
)
from repro.sql.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    Project,
    Sort,
    SubqueryAlias,
    Union,
    UnresolvedRelation,
)
from repro.sql.parser import Lexer, TokenType, parse_expression, parse_query


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = Lexer("SELECT select SeLeCt").tokens()
        assert all(t.is_keyword("select") for t in tokens[:3])

    def test_identifiers_keep_case(self):
        tokens = Lexer("MyTable").tokens()
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "MyTable"

    def test_numbers(self):
        tokens = Lexer("42 3.25 1e3 2E-2").tokens()
        assert [t.type for t in tokens[:4]] == [
            TokenType.INT,
            TokenType.FLOAT,
            TokenType.FLOAT,
            TokenType.FLOAT,
        ]

    def test_string_with_escaped_quote(self):
        tokens = Lexer("'it''s'").tokens()
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            Lexer("'oops").tokens()

    def test_operators_longest_match(self):
        tokens = Lexer("<= <> != <").tokens()
        assert [t.value for t in tokens[:4]] == ["<=", "<>", "!=", "<"]

    def test_line_comments_skipped(self):
        tokens = Lexer("1 -- comment\n 2").tokens()
        assert [t.value for t in tokens[:2]] == ["1", "2"]

    def test_backquoted_identifier(self):
        tokens = Lexer("`select`").tokens()
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "select"

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            Lexer("SELECT @").tokens()


class TestExpressionParsing:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, Add)
        assert isinstance(expr.right, Multiply)

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert isinstance(expr, Multiply)

    def test_boolean_precedence(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.right, And)

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, Not)

    def test_comparisons(self):
        assert isinstance(parse_expression("a <> 1"), type(parse_expression("a != 1")))

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert isinstance(expr, And)
        assert isinstance(expr.left, GreaterThanOrEqual)
        assert isinstance(expr.right, LessThanOrEqual)

    def test_not_between(self):
        assert isinstance(parse_expression("x NOT BETWEEN 1 AND 5"), Not)

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, In)
        assert len(expr.options) == 3

    def test_like(self):
        assert isinstance(parse_expression("name LIKE 'a%'"), Like)

    def test_is_null(self):
        assert isinstance(parse_expression("x IS NULL"), IsNull)

    def test_case_when(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, CaseWhen)
        assert expr.else_value is not None

    def test_cast(self):
        expr = parse_expression("CAST(x AS long)")
        assert isinstance(expr, Cast)

    def test_function_call(self):
        expr = parse_expression("count(x)")
        assert isinstance(expr, UnresolvedFunction)
        assert expr.name == "count"

    def test_count_star(self):
        expr = parse_expression("count(*)")
        assert isinstance(expr, UnresolvedFunction)
        assert expr.children == ()

    def test_count_distinct(self):
        expr = parse_expression("count(DISTINCT x)")
        assert expr.distinct

    def test_qualified_attribute(self):
        expr = parse_expression("t.col")
        assert isinstance(expr, UnresolvedAttribute)
        assert expr.qualifier == "t" and expr.name == "col"

    def test_literals(self):
        assert parse_expression("NULL").value is None
        assert parse_expression("TRUE").value is True
        assert parse_expression("3.5").value == 3.5
        assert parse_expression("'str'").value == "str"

    def test_unary_minus(self):
        assert isinstance(parse_expression("-x"), UnaryMinus)
        assert parse_expression("-5").child.value == 5

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra stuff ~")


class TestQueryParsing:
    def test_minimal_select(self):
        plan = parse_query("SELECT * FROM t")
        assert isinstance(plan, Project)
        assert isinstance(plan.project_list[0], UnresolvedStar)
        alias = plan.child
        assert isinstance(alias, SubqueryAlias)
        assert isinstance(alias.child, UnresolvedRelation)

    def test_select_aliases(self):
        plan = parse_query("SELECT a AS x, b y, c FROM t")
        kinds = [type(e) for e in plan.project_list]
        assert kinds[:2] == [Alias, Alias]
        assert plan.project_list[0].name == "x"
        assert plan.project_list[1].name == "y"

    def test_where(self):
        plan = parse_query("SELECT a FROM t WHERE a > 1")
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Filter)

    def test_group_by_builds_aggregate(self):
        plan = parse_query("SELECT a, count(*) FROM t GROUP BY a")
        assert isinstance(plan, Aggregate)
        assert len(plan.grouping) == 1

    def test_having(self):
        plan = parse_query("SELECT a FROM t GROUP BY a HAVING count(*) > 1")
        assert isinstance(plan, Filter)
        assert isinstance(plan.child, Aggregate)

    def test_order_and_limit(self):
        plan = parse_query("SELECT a FROM t ORDER BY a DESC, b LIMIT 10")
        assert isinstance(plan, Limit) and plan.n == 10
        sort = plan.child
        assert isinstance(sort, Sort)
        assert sort.orders[0].ascending is False
        assert sort.orders[1].ascending is True

    def test_joins(self):
        plan = parse_query(
            "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id"
        )
        outer = plan.child
        assert isinstance(outer, Join) and outer.how == "left"
        inner = outer.left
        assert isinstance(inner, Join) and inner.how == "inner"

    def test_cross_join_has_no_on(self):
        plan = parse_query("SELECT * FROM a CROSS JOIN b")
        assert plan.child.how == "cross"

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM a JOIN b")

    def test_subquery_needs_alias(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM (SELECT a FROM t)")

    def test_subquery_with_alias(self):
        plan = parse_query("SELECT * FROM (SELECT a FROM t) sub WHERE a = 1")
        assert isinstance(plan.child, Filter)
        assert isinstance(plan.child.child, SubqueryAlias)

    def test_union(self):
        plan = parse_query("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert isinstance(plan, Union)

    def test_distinct(self):
        plan = parse_query("SELECT DISTINCT a FROM t")
        assert isinstance(plan, Distinct)

    def test_star_with_qualifier(self):
        plan = parse_query("SELECT t.* FROM t")
        star = plan.project_list[0]
        assert isinstance(star, UnresolvedStar) and star.qualifier == "t"

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a FROM t LIMIT 'ten'")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_query("SELECT 1")
