"""Tests for the fused Top-K (LIMIT over ORDER BY) operator."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sql.functions import col


class TestTakeOrdered:
    def test_plan_is_fused(self, people_df):
        plan = people_df.order_by(col("age").desc()).limit(2).explain()
        assert "TakeOrdered[n=2]" in plan
        assert "Sort" not in plan.split("== Physical ==")[1]

    def test_results_match_unfused_semantics(self, people_df):
        fused = people_df.order_by(col("age").desc()).limit(3).collect()
        assert [r["age"] for r in fused] == [40, 35, 30]

    def test_limit_zero(self, people_df):
        assert people_df.order_by("age").limit(0).collect() == []

    def test_limit_beyond_size(self, people_df):
        rows = people_df.order_by("age").limit(100).collect()
        assert len(rows) == 5
        ages = [r["age"] for r in rows]
        assert ages == sorted(ages)

    def test_ties_keep_stable_count(self, people_df):
        rows = people_df.order_by("age").limit(2).collect()
        assert [r["age"] for r in rows] == [25, 25]

    def test_composite_ordering(self, people_df):
        rows = (
            people_df.order_by(col("age").asc(), col("id").desc()).limit(2).collect()
        )
        assert [(r["age"], r["id"]) for r in rows] == [(25, 4), (25, 2)]

    def test_nulls_respected(self, session):
        df = session.create_dataframe(
            [(1, None), (2, 5), (3, 1)], [("id", "long"), ("v", "long")]
        )
        rows = df.order_by("v").limit(2).collect()
        assert [r["v"] for r in rows] == [None, 1]  # nulls first


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    values=st.lists(st.integers(-100, 100), max_size=50),
    n=st.integers(0, 10),
    ascending=st.booleans(),
)
def test_topk_matches_sorted_prefix(session, values, n, ascending):
    df = session.create_dataframe([(v,) for v in values], [("v", "long")])
    order = col("v").asc() if ascending else col("v").desc()
    got = [r["v"] for r in df.order_by(order).limit(n).collect()]
    expected = sorted(values, reverse=not ascending)[:n]
    assert got == expected
