"""Adaptive execution at the SQL layer: runtime replans and invariance.

Two complementary guarantees:

* with the knobs ON, runtime decisions (broadcast replan, pruning)
  change *plans* but never *results* — checked by a seeded random
  predicate differential against a static session and a pure-Python
  oracle;
* with the knobs OFF, nothing changes at all: no adaptive operators,
  no markers, no counters (the clean A/B the benchmarks rely on).
"""

from __future__ import annotations

import random

import pytest

from repro.core import create_index, enable_indexing
from repro.sql.functions import col, count
from repro.sql.session import Session
from tests.conftest import small_config

CATS = ["red", "green", "blue", "cyan", None]


def make_rows(n=400, seed=7):
    rng = random.Random(seed)
    return [
        (
            i if rng.random() > 0.05 else None,
            rng.randint(0, 1000),
            CATS[rng.randrange(len(CATS))],
        )
        for i in range(n)
    ]


SCHEMA = [("id", "long"), ("val", "long"), ("cat", "string")]


def random_predicate(rng):
    """One random conjunction plus its pure-Python oracle."""
    conjuncts = []
    oracles = []
    for _ in range(rng.randint(1, 3)):
        kind = rng.randrange(5)
        if kind == 0:
            pivot = rng.randint(0, 400)
            conjuncts.append(col("id") >= pivot)
            oracles.append(lambda r, p=pivot: r[0] is not None and r[0] >= p)
        elif kind == 1:
            pivot = rng.randint(0, 400)
            conjuncts.append(col("id") < pivot)
            oracles.append(lambda r, p=pivot: r[0] is not None and r[0] < p)
        elif kind == 2:
            pivot = rng.randint(0, 1000)
            conjuncts.append(col("val") > pivot)
            oracles.append(lambda r, p=pivot: r[1] > p)
        elif kind == 3:
            values = rng.sample(["red", "green", "blue", "cyan"], rng.randint(1, 3))
            conjuncts.append(col("cat").isin(*values))
            oracles.append(lambda r, vs=tuple(values): r[2] in vs)
        else:
            conjuncts.append(col("id").is_not_null())
            oracles.append(lambda r: r[0] is not None)
    predicate = conjuncts[0]
    for c in conjuncts[1:]:
        predicate = predicate & c
    return predicate, (lambda r, fs=tuple(oracles): all(f(r) for f in fs))


@pytest.fixture(scope="module")
def ab_sessions():
    adaptive = Session(
        small_config(batch_size_bytes=1024, max_row_bytes=256)
    )
    static = Session(
        small_config(
            batch_size_bytes=1024,
            max_row_bytes=256,
            zone_maps_enabled=False,
            adaptive_enabled=False,
        )
    )
    enable_indexing(adaptive)
    enable_indexing(static)
    yield adaptive, static
    adaptive.stop()
    static.stop()


class TestRandomPredicateDifferential:
    def test_adaptive_static_and_oracle_agree(self, ab_sessions):
        adaptive, static = ab_sessions
        rows = make_rows()
        frames = []
        for session in (adaptive, static):
            df = session.create_dataframe(rows, SCHEMA)
            indexed = create_index(df, "id")
            frames.append((df, indexed.to_df()))
        rng = random.Random(42)
        for round_no in range(25):
            predicate, oracle = random_predicate(rng)
            # key=repr: rows may hold NULLs, which don't sort natively
            expected = sorted((r for r in rows if oracle(r)), key=repr)
            for df, indexed_df in frames:
                for frame in (df, indexed_df):
                    got = sorted(frame.filter(predicate).collect_tuples(), key=repr)
                    assert got == expected, f"round {round_no}: {predicate}"


class TestRuntimeBroadcastReplan:
    def test_misestimated_small_side_broadcasts(self, ab_sessions):
        adaptive, static = ab_sessions
        rows = [(i % 6, i) for i in range(300)]
        results = {}
        for label, session in (("adaptive", adaptive), ("static", static)):
            big = session.create_dataframe(rows, [("k", "long"), ("v", "long")])
            small = big.group_by("k").agg(count().alias("n"))
            joined = big.join(small, on=big.col("k") == small.col("k"))
            results[label] = sorted(map(tuple, joined.collect_tuples()))
            if label == "adaptive":
                # estimate 150 rows > threshold 50 → statically
                # undecided; measured 6 rows → broadcast at runtime
                assert "AdaptiveJoin" in joined.explain()
                plan = joined.last_execution_plan()
                assert "decision=broadcast(6 rows)" in plan
                metrics = session.ctx.scheduler.metrics.snapshot()
                assert metrics["runtime_broadcast_joins"] >= 1
            else:
                assert "ShuffledHashJoin" in joined.explain()
        assert results["adaptive"] == results["static"]
        assert len(results["adaptive"]) == 300

    def test_genuinely_large_side_stays_shuffled(self, ab_sessions):
        adaptive, _static = ab_sessions
        left = adaptive.create_dataframe(
            [(i, i) for i in range(200)], [("a", "long"), ("x", "long")]
        )
        right = adaptive.create_dataframe(
            [(i, i) for i in range(200)], [("b", "long"), ("y", "long")]
        )
        joined = left.join(right, on=left.col("a") == right.col("b"))
        assert joined.count() == 200
        assert "decision=shuffle(200 rows)" in joined.last_execution_plan()


class TestKnobsOffInvariance:
    """Both knobs False → pre-PR plans, operators, and zero counters."""

    def test_no_adaptive_operators_or_markers(self, ab_sessions):
        _adaptive, static = ab_sessions
        df = static.create_dataframe(make_rows(100), SCHEMA)
        indexed = create_index(df, "id")
        query = indexed.to_df().filter((col("id") >= 10) & (col("id") < 30))
        query.collect_tuples()
        small = df.group_by("cat").agg(count().alias("n"))
        joined = df.join(small, on=df.col("cat") == small.col("cat"))
        joined.collect_tuples()
        for text in (
            query.explain(),
            query.last_execution_plan(),
            joined.explain(),
            joined.last_execution_plan(),
        ):
            assert "AdaptiveJoin" not in text
            assert "zone_pruned" not in text
            assert "batches_pruned" not in text
            assert "key_routed" not in text

    def test_counters_stay_zero(self, ab_sessions):
        _adaptive, static = ab_sessions
        pruning = static.ctx.pruning_metrics.snapshot()
        assert all(v == 0 for v in pruning.values())
        metrics = static.ctx.scheduler.metrics.snapshot()
        assert metrics["coalesced_shuffles"] == 0
        assert metrics["runtime_broadcast_joins"] == 0
