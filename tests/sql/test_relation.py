"""Tests for row and columnar in-memory relations."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.sql.relation import ColumnarRelation, RowRelation
from repro.sql.types import StructType


@pytest.fixture()
def schema():
    return StructType.from_pairs([("a", "long"), ("b", "string"), ("c", "double")])


@pytest.fixture()
def rows():
    return [(i, f"s{i}", float(i)) for i in range(10)]


class TestRowRelation:
    def test_from_rows_partitions_evenly(self, schema, rows):
        relation = RowRelation.from_rows(schema, rows, 3)
        assert relation.num_partitions == 3
        assert relation.num_rows() == 10
        assert list(relation.iter_rows()) == rows

    def test_column_selection(self, schema, rows, ctx):
        relation = RowRelation.from_rows(schema, rows, 2)
        rdd = relation.to_rdd(ctx, [2, 0])
        assert rdd.collect()[:2] == [(0.0, 0), (1.0, 1)]

    def test_validation(self, schema):
        with pytest.raises(SchemaError):
            RowRelation.from_rows(schema, [("x", "y", "z")], 1)

    def test_empty_relation(self, schema, ctx):
        relation = RowRelation.from_rows(schema, [], 4)
        assert relation.num_rows() == 0
        assert relation.to_rdd(ctx).collect() == []


class TestColumnarRelation:
    def test_transpose_roundtrip(self, schema, rows):
        row_rel = RowRelation.from_rows(schema, rows, 3)
        columnar = ColumnarRelation.from_row_partitions(
            schema, row_rel._partitions
        )
        assert list(columnar.iter_rows()) == rows
        assert columnar.num_rows() == 10
        assert columnar.num_partitions == 3

    def test_pruned_scan_touches_selected_columns(self, schema, rows, ctx):
        columnar = ColumnarRelation.from_row_partitions(
            schema, [rows]
        )
        projected = columnar.to_rdd(ctx, [1]).collect()
        assert projected == [(f"s{i}",) for i in range(10)]

    def test_empty_partitions_ok(self, schema, ctx):
        columnar = ColumnarRelation.from_row_partitions(schema, [[], []])
        assert columnar.num_rows() == 0
        assert columnar.to_rdd(ctx).collect() == []

    def test_memory_bytes_positive(self, schema, rows):
        columnar = ColumnarRelation.from_row_partitions(schema, [rows])
        assert columnar.memory_bytes() > 0

    def test_column_count_mismatch_rejected(self, schema):
        with pytest.raises(SchemaError):
            ColumnarRelation(schema, [[[1], [2]]])  # 2 columns, schema has 3
