"""Tests for Session, Catalog, and extension wiring."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError, SchemaError
from repro.sql.logical import LogicalPlan
from repro.sql.physical import PhysicalPlan


class TestCreateDataFrame:
    def test_from_tuples(self, session):
        df = session.create_dataframe([(1, "a")], [("id", "long"), ("v", "string")])
        assert df.collect()[0].as_dict() == {"id": 1, "v": "a"}

    def test_from_dicts(self, session):
        df = session.create_dataframe(
            [{"id": 1, "v": "a"}, {"v": "b", "id": 2}],
            [("id", "long"), ("v", "string")],
        )
        assert [r["id"] for r in df.collect()] == [1, 2]

    def test_dict_missing_key_becomes_null(self, session):
        df = session.create_dataframe([{"id": 1}], [("id", "long"), ("v", "string")])
        assert df.collect()[0]["v"] is None

    def test_validation_rejects_bad_rows(self, session):
        with pytest.raises(SchemaError):
            session.create_dataframe([("not-long",)], [("id", "long")])

    def test_validation_can_be_skipped(self, session):
        df = session.create_dataframe(
            [("oops",)], [("id", "long")], validate=False
        )
        assert df.count() == 1

    def test_partitioning_respected(self, session):
        df = session.create_dataframe(
            [(i,) for i in range(100)], [("x", "long")], num_partitions=7
        )
        rdd = df._execute()
        assert rdd.num_partitions == 7


class TestCatalog:
    def test_register_and_lookup(self, session, people_df):
        session.create_or_replace_temp_view("folks", people_df)
        assert session.table("folks").count() == 5
        assert "folks" in session.catalog.names()

    def test_lookup_case_insensitive(self, session, people_df):
        people_df.create_or_replace_temp_view("Folks")
        assert session.table("FOLKS").count() == 5

    def test_replace_view(self, session, people_df, orders_df):
        people_df.create_or_replace_temp_view("t")
        orders_df.create_or_replace_temp_view("t")
        assert session.table("t").columns == ["oid", "pid", "amount"]

    def test_drop(self, session, people_df):
        people_df.create_or_replace_temp_view("t")
        assert session.catalog.drop("t")
        assert not session.catalog.drop("t")
        with pytest.raises(AnalysisError):
            session.table("t")

    def test_view_of_derived_plan(self, session, people_df):
        from repro.sql.functions import col

        people_df.filter(col("age") > 26).create_or_replace_temp_view("elders")
        assert session.sql("SELECT count(*) AS n FROM elders").collect()[0]["n"] == 3

    def test_table_used_twice_gets_fresh_ids(self, session, people_df):
        people_df.create_or_replace_temp_view("p")
        df = session.sql(
            "SELECT a.id AS x, b.id AS y FROM p a JOIN p b ON a.id = b.id"
        )
        assert df.count() == 5


class TestExtensions:
    def test_injected_strategy_takes_priority(self, session, people_df):
        seen = []

        def spy_strategy(plan: LogicalPlan, planner) -> PhysicalPlan | None:
            seen.append(type(plan).__name__)
            return None  # always fall through

        session.extensions.inject_planner_strategy(spy_strategy)
        session._rebuild_pipeline()
        people_df.collect()
        assert seen  # the spy saw every planning request

    def test_injected_rule_runs_after_standard_batches(self, session, people_df):
        calls = []

        def spy_rule(plan: LogicalPlan) -> LogicalPlan:
            calls.append(plan)
            return plan

        session.extensions.inject_optimizer_rule(spy_rule)
        session._rebuild_pipeline()
        people_df.collect()
        assert calls

    def test_session_context_manager(self):
        from repro.config import Config
        from repro.sql.session import Session

        with Session(Config(executor_threads=1)) as s:
            assert s.create_dataframe([(1,)], [("x", "long")]).count() == 1
