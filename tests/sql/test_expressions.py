"""Tests for expression evaluation, including SQL null semantics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sql.expressions import (
    Add,
    Alias,
    And,
    Attribute,
    BoundReference,
    CaseWhen,
    Cast,
    Coalesce,
    Divide,
    EqualTo,
    GreaterThan,
    In,
    IsNotNull,
    IsNull,
    LessThan,
    Like,
    Literal,
    Modulo,
    Multiply,
    Not,
    Or,
    Subtract,
    UnaryMinus,
    combine_conjuncts,
    make_scalar_function,
    split_conjuncts,
)
from repro.sql.types import BooleanType, DoubleType, LongType, StringType, type_for_name


def ref(ordinal: int) -> BoundReference:
    return BoundReference(ordinal, LongType(), f"c{ordinal}")


class TestLiteralsAndReferences:
    def test_literal_eval(self):
        assert Literal(5).eval(()) == 5
        assert Literal(None).eval(()) is None

    def test_literal_type_inference(self):
        assert Literal(5).data_type() == LongType()
        assert Literal(1.5).data_type() == DoubleType()
        assert Literal("x").data_type() == StringType()

    def test_bound_reference_reads_ordinal(self):
        assert ref(1).eval((10, 20, 30)) == 20

    def test_attribute_ids_unique_and_hashable(self):
        a = Attribute("x", LongType())
        b = Attribute("x", LongType())
        assert a != b
        assert a == Attribute("renamed", LongType(), a.expr_id)
        assert len({a, b}) == 2


class TestArithmetic:
    def test_basic_ops(self):
        row = (10, 3)
        assert Add(ref(0), ref(1)).eval(row) == 13
        assert Subtract(ref(0), ref(1)).eval(row) == 7
        assert Multiply(ref(0), ref(1)).eval(row) == 30
        assert Divide(ref(0), ref(1)).eval(row) == pytest.approx(10 / 3)
        assert Modulo(ref(0), ref(1)).eval(row) == 1
        assert UnaryMinus(ref(0)).eval(row) == -10

    def test_null_propagation(self):
        row = (None, 3)
        for node in (Add, Subtract, Multiply, Divide, Modulo):
            assert node(ref(0), ref(1)).eval(row) is None
            assert node(ref(1), ref(0)).eval(row) is None

    def test_division_by_zero_is_null(self):
        assert Divide(Literal(1), Literal(0)).eval(()) is None
        assert Modulo(Literal(1), Literal(0)).eval(()) is None

    def test_divide_returns_double(self):
        assert Divide(Literal(1), Literal(2)).data_type() == DoubleType()


class TestComparisons:
    def test_all_comparisons(self):
        row = (1, 2)
        assert EqualTo(ref(0), ref(0)).eval(row) is True
        assert EqualTo(ref(0), ref(1)).eval(row) is False
        assert LessThan(ref(0), ref(1)).eval(row) is True
        assert GreaterThan(ref(0), ref(1)).eval(row) is False

    def test_null_comparisons_are_null(self):
        row = (None, 2)
        assert EqualTo(ref(0), ref(1)).eval(row) is None
        assert LessThan(ref(0), ref(1)).eval(row) is None
        # NULL = NULL is NULL, not True
        assert EqualTo(Literal(None), Literal(None)).eval(()) is None


class TestBooleanLogic:
    T, F, N = Literal(True), Literal(False), Literal(None, BooleanType())

    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("T", "T", True), ("T", "F", False), ("F", "T", False),
            ("F", "N", False), ("N", "F", False),  # Kleene: False wins
            ("T", "N", None), ("N", "T", None), ("N", "N", None),
        ],
    )
    def test_and_kleene(self, left, right, expected):
        assert And(getattr(self, left), getattr(self, right)).eval(()) is expected

    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("F", "F", False), ("T", "F", True), ("F", "T", True),
            ("T", "N", True), ("N", "T", True),  # Kleene: True wins
            ("F", "N", None), ("N", "N", None),
        ],
    )
    def test_or_kleene(self, left, right, expected):
        assert Or(getattr(self, left), getattr(self, right)).eval(()) is expected

    def test_not(self):
        assert Not(self.T).eval(()) is False
        assert Not(self.F).eval(()) is True
        assert Not(self.N).eval(()) is None


class TestPredicates:
    def test_is_null(self):
        assert IsNull(Literal(None)).eval(()) is True
        assert IsNull(Literal(1)).eval(()) is False
        assert IsNotNull(Literal(1)).eval(()) is True

    def test_in(self):
        expr = In(ref(0), [Literal(1), Literal(2)])
        assert expr.eval((1,)) is True
        assert expr.eval((3,)) is False

    def test_in_null_semantics(self):
        # NULL IN (...) is NULL; x IN (.., NULL) without match is NULL.
        assert In(Literal(None), [Literal(1)]).eval(()) is None
        assert In(Literal(3), [Literal(1), Literal(None)]).eval(()) is None
        assert In(Literal(1), [Literal(1), Literal(None)]).eval(()) is True

    def test_like(self):
        assert Like(Literal("hello"), Literal("he%")).eval(()) is True
        assert Like(Literal("hello"), Literal("h_llo")).eval(()) is True
        assert Like(Literal("hello"), Literal("x%")).eval(()) is False
        assert Like(Literal(None), Literal("%")).eval(()) is None

    def test_like_escapes_regex_metachars(self):
        assert Like(Literal("a.c"), Literal("a.c")).eval(()) is True
        assert Like(Literal("abc"), Literal("a.c")).eval(()) is False


class TestConditionals:
    def test_case_when(self):
        expr = CaseWhen(
            [(GreaterThan(ref(0), Literal(10)), Literal("big"))], Literal("small")
        )
        assert expr.eval((20,)) == "big"
        assert expr.eval((5,)) == "small"

    def test_case_without_else_is_null(self):
        expr = CaseWhen([(Literal(False), Literal(1))])
        assert expr.eval(()) is None

    def test_case_null_condition_skips_branch(self):
        expr = CaseWhen(
            [(Literal(None, BooleanType()), Literal("a"))], Literal("b")
        )
        assert expr.eval(()) == "b"

    def test_coalesce(self):
        assert Coalesce([Literal(None), Literal(2), Literal(3)]).eval(()) == 2
        assert Coalesce([Literal(None)]).eval(()) is None


class TestCast:
    def test_numeric_casts(self):
        assert Cast(Literal("42"), type_for_name("long")).eval(()) == 42
        assert Cast(Literal(1), type_for_name("double")).eval(()) == 1.0
        assert Cast(Literal(1.9), type_for_name("long")).eval(()) == 1

    def test_invalid_cast_yields_null(self):
        assert Cast(Literal("abc"), type_for_name("long")).eval(()) is None

    def test_null_passthrough(self):
        assert Cast(Literal(None), type_for_name("long")).eval(()) is None


class TestScalarFunctions:
    def test_registry(self):
        fn = make_scalar_function("upper", [Literal("abc")])
        assert fn.eval(()) == "ABC"
        assert make_scalar_function("length", [Literal("abcd")]).eval(()) == 4
        assert make_scalar_function("abs", [Literal(-5)]).eval(()) == 5
        sub = make_scalar_function("substring", [Literal("hello"), Literal(2), Literal(3)])
        assert sub.eval(()) == "ell"

    def test_null_in_null_out(self):
        assert make_scalar_function("upper", [Literal(None)]).eval(()) is None

    def test_unknown_function(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            make_scalar_function("bogus", [])


class TestTreeMachinery:
    def test_transform_up_rewrites(self):
        expr = Add(Literal(1), Literal(2))
        doubled = expr.transform_up(
            lambda e: Literal(e.value * 2) if isinstance(e, Literal) else e
        )
        assert doubled.eval(()) == 6

    def test_transform_preserves_identity_when_unchanged(self):
        expr = Add(Literal(1), Literal(2))
        assert expr.transform_up(lambda e: e) is expr

    def test_references_collects_attributes(self):
        a, b = Attribute("a", LongType()), Attribute("b", LongType())
        expr = And(EqualTo(a, Literal(1)), GreaterThan(b, a))
        assert expr.references == {a, b}

    def test_split_and_combine_conjuncts(self):
        a, b, c = Literal(True), Literal(False), Literal(True)
        combined = combine_conjuncts([a, b, c])
        assert split_conjuncts(combined) == [a, b, c]
        assert combine_conjuncts([]) is None

    def test_semantic_equals_ignores_alias(self):
        a = Attribute("x", LongType())
        assert Alias(a, "y").semantic_equals(a)
        assert EqualTo(a, Literal(1)).semantic_equals(EqualTo(a, Literal(1)))
        assert not EqualTo(a, Literal(1)).semantic_equals(EqualTo(a, Literal(2)))

    def test_foldable(self):
        assert Add(Literal(1), Literal(2)).foldable
        assert not Add(Literal(1), Attribute("x", LongType())).foldable
        assert Literal(3).foldable


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_arithmetic_matches_python(a, b):
    row = (a, b)
    assert Add(ref(0), ref(1)).eval(row) == a + b
    assert Subtract(ref(0), ref(1)).eval(row) == a - b
    assert Multiply(ref(0), ref(1)).eval(row) == a * b
    assert EqualTo(ref(0), ref(1)).eval(row) is (a == b)
    assert LessThan(ref(0), ref(1)).eval(row) is (a < b)
