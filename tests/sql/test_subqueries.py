"""Tests for IN (SELECT ...) subquery support."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError


@pytest.fixture()
def db(session, people_df, orders_df):
    people_df.create_or_replace_temp_view("people")
    orders_df.create_or_replace_temp_view("orders")
    return session


class TestInSubquery:
    def test_semi_join_semantics(self, db):
        rows = db.sql(
            "SELECT id FROM people WHERE id IN (SELECT pid FROM orders) ORDER BY id"
        ).collect()
        assert [r["id"] for r in rows] == [1, 2, 3]

    def test_not_in(self, db):
        rows = db.sql(
            "SELECT id FROM people WHERE id NOT IN (SELECT pid FROM orders) "
            "ORDER BY id"
        ).collect()
        assert [r["id"] for r in rows] == [4, 5]

    def test_each_outer_row_once(self, db):
        # person 1 matches two orders but must appear once (semi join).
        rows = db.sql(
            "SELECT id FROM people WHERE id IN (SELECT pid FROM orders)"
        ).collect()
        assert len(rows) == 3

    def test_combined_with_other_conjuncts(self, db):
        rows = db.sql(
            "SELECT id FROM people WHERE id IN (SELECT pid FROM orders) "
            "AND age > 26 ORDER BY id"
        ).collect()
        assert [r["id"] for r in rows] == [1, 3]

    def test_subquery_with_own_filter(self, db):
        rows = db.sql(
            "SELECT id FROM people WHERE id IN "
            "(SELECT pid FROM orders WHERE amount > 50) ORDER BY id"
        ).collect()
        assert [r["id"] for r in rows] == [1]

    def test_nested_subquery_level(self, db):
        rows = db.sql(
            "SELECT id FROM people WHERE id IN ("
            "  SELECT pid FROM orders WHERE oid IN (SELECT oid FROM orders)"
            ") ORDER BY id"
        ).collect()
        assert [r["id"] for r in rows] == [1, 2, 3]

    def test_empty_subquery_result(self, db):
        rows = db.sql(
            "SELECT id FROM people WHERE id IN "
            "(SELECT pid FROM orders WHERE amount > 9999)"
        ).collect()
        assert rows == []

    def test_indexed_table_in_subquery(self, indexed_session):
        from repro.core import create_index

        users = indexed_session.create_dataframe(
            [(i, f"u{i}") for i in range(50)], [("uid", "long"), ("name", "string")]
        )
        vips = indexed_session.create_dataframe(
            [(3,), (7,)], [("vid", "long")]
        )
        create_index(users, "uid").create_or_replace_temp_view("users")
        vips.create_or_replace_temp_view("vips")
        rows = indexed_session.sql(
            "SELECT name FROM users WHERE uid IN (SELECT vid FROM vips) ORDER BY name"
        ).collect()
        assert [r["name"] for r in rows] == ["u3", "u7"]


class TestValidation:
    def test_multi_column_subquery_rejected(self, db):
        with pytest.raises(AnalysisError, match="one column"):
            db.sql(
                "SELECT id FROM people WHERE id IN (SELECT pid, oid FROM orders)"
            ).collect()

    def test_subquery_in_select_list_rejected(self, db):
        with pytest.raises(AnalysisError, match="WHERE"):
            db.sql(
                "SELECT id IN (SELECT pid FROM orders) FROM people"
            ).collect()

    def test_disjunctive_subquery_rejected(self, db):
        with pytest.raises(AnalysisError, match="conjunct"):
            db.sql(
                "SELECT id FROM people WHERE age > 99 OR id IN "
                "(SELECT pid FROM orders)"
            ).collect()
