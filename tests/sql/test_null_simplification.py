"""Tests for the null-check simplification optimizer rule."""

from __future__ import annotations

from repro.sql.expressions import IsNotNull, IsNull, Literal
from repro.sql.logical import Filter, LocalRelation, Relation
from repro.sql.optimizer import prune_filters, simplify_null_checks
from repro.sql.relation import RowRelation
from repro.sql.types import LongType, StructField, StructType


def non_nullable_relation():
    schema = StructType([StructField("id", LongType(), nullable=False)])
    return Relation(RowRelation.from_rows(schema, [(1,)], 1))


def nullable_relation():
    schema = StructType([StructField("id", LongType(), nullable=True)])
    return Relation(RowRelation.from_rows(schema, [(1,)], 1))


class TestRule:
    def test_is_not_null_on_required_column_folds_true(self):
        rel = non_nullable_relation()
        plan = Filter(IsNotNull(rel.output()[0]), rel)
        out = prune_filters(simplify_null_checks(plan))
        assert out is rel  # filter disappeared entirely

    def test_is_null_on_required_column_folds_false(self):
        rel = non_nullable_relation()
        plan = Filter(IsNull(rel.output()[0]), rel)
        out = prune_filters(simplify_null_checks(plan))
        assert isinstance(out, LocalRelation)
        assert out.rows == []

    def test_nullable_column_untouched(self):
        rel = nullable_relation()
        plan = Filter(IsNull(rel.output()[0]), rel)
        assert simplify_null_checks(plan) is plan

    def test_literal_null_checks_fold(self):
        rel = nullable_relation()
        plan = Filter(IsNull(Literal(None)), rel)
        out = simplify_null_checks(plan)
        assert isinstance(out.condition, Literal)
        assert out.condition.value is True


class TestEndToEnd:
    def test_redundant_filter_removed_from_plan(self, session):
        from repro.sql.types import StringType

        schema = StructType(
            [
                StructField("id", LongType(), nullable=False),
                StructField("name", StringType(), nullable=True),
            ]
        )
        df = session.create_dataframe([(1, "a"), (2, None)], schema)
        from repro.sql.functions import col

        optimized = df.filter(col("id").is_not_null()).explain()
        physical = optimized.split("== Physical ==")[1]
        assert "Filter" not in physical  # folded away
        assert df.filter(col("id").is_not_null()).count() == 2

    def test_semantics_preserved_for_nullable(self, session, people_df):
        from repro.sql.functions import col

        assert people_df.filter(col("name").is_not_null()).count() == 4
