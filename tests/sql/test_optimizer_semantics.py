"""Differential testing: the optimizer must never change results.

Every query is executed twice — once from the *analyzed* plan (no
optimization at all) and once through the full optimizer — and the row
multisets must match. This catches semantics bugs in any rewrite rule
(pushdown past the wrong join side, over-eager pruning, bad folding)
on randomized query shapes.
"""

from __future__ import annotations

import random

import pytest

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.sql.functions import avg, col, count, lit, max_, min_, sum_
from repro.sql.session import Session


@pytest.fixture(scope="module")
def session():
    s = Session(
        Config(
            executor_threads=2,
            shuffle_partitions=3,
            default_parallelism=2,
            broadcast_threshold=20,
            batch_size_bytes=64 * 1024,
        )
    )
    enable_indexing(s)
    yield s
    s.stop()


@pytest.fixture(scope="module")
def tables(session):
    rng = random.Random(2024)
    left = session.create_dataframe(
        [
            (
                i,
                rng.randrange(15),
                rng.choice(["red", "green", "blue", None]),
                rng.choice([None, float(rng.randrange(100))]),
            )
            for i in range(300)
        ],
        [("id", "long"), ("k", "long"), ("color", "string"), ("x", "double")],
    )
    right = session.create_dataframe(
        [(rng.randrange(15), rng.randrange(50)) for _ in range(80)],
        [("k2", "long"), ("w", "long")],
    )
    indexed = create_index(left, "id")
    return left, right, indexed


def both_ways(df) -> tuple[list, list]:
    """Rows from the unoptimized and the optimized pipeline."""
    session = df.session
    analyzed = df.analyzed_plan()
    raw = session.planner.plan(analyzed).execute().collect()
    optimized = session.planner.plan(session.optimizer.optimize(analyzed))
    return sorted(raw, key=repr), sorted(optimized.execute().collect(), key=repr)


def build_random_query(rng: random.Random, left, right, indexed):
    base = rng.choice([left, indexed.to_df()])
    df = base
    for _ in range(rng.randrange(3)):
        choice = rng.randrange(6)
        if choice == 0:
            df = df.filter(col("k") > rng.randrange(15))
        elif choice == 1:
            df = df.filter(
                (col("color") == rng.choice(["red", "green", "blue"]))
                | col("x").is_null()
            )
        elif choice == 2:
            df = df.filter(col("id") == rng.randrange(350))
        elif choice == 3:
            df = df.select("id", "k", "color", (col("k") * 2).alias("kk"), "x")
            df = df.select("id", "k", "color", "x")
        elif choice == 4:
            df = df.filter(col("id").is_not_null())
        else:
            df = df.limit(rng.randrange(1, 400))
    shape = rng.randrange(3)
    if shape == 0:
        df = df.join(right, on=df.col("k") == right.col("k2"))
        df = df.filter(col("w") > rng.randrange(50))
    elif shape == 1:
        df = df.group_by("k").agg(
            count().alias("n"),
            sum_("x").alias("sx"),
            min_("id").alias("lo"),
            max_("id").alias("hi"),
        )
    return df


def test_fifty_random_queries_agree(tables):
    left, right, indexed = tables
    rng = random.Random(7)
    for case in range(50):
        df = build_random_query(rng, left, right, indexed)
        raw, optimized = both_ways(df)
        assert raw == optimized, f"case {case} diverged:\n{df.explain()}"


def test_aggregate_with_having_agrees(tables, session):
    left, _right, _indexed = tables
    left.create_or_replace_temp_view("t")
    df = session.sql(
        "SELECT color, count(*) AS n, avg(x) AS mean FROM t "
        "WHERE k > 3 GROUP BY color HAVING count(*) > 5 ORDER BY n DESC"
    )
    raw, optimized = both_ways(df)
    assert raw == optimized


def test_three_way_join_agrees(tables, session):
    left, right, indexed = tables
    joined = (
        indexed.to_df()
        .join(right, on=indexed.col("k") == right.col("k2"))
        .join(left.alias("l2"), on=indexed.col("id") == col("l2.id"))
        .select(indexed.col("id"), col("w"), col("l2.color"))
    )
    raw, optimized = both_ways(joined)
    assert raw == optimized
    assert len(raw) > 0


def test_global_aggregate_agrees(tables):
    left, _right, _indexed = tables
    df = left.agg(
        count().alias("n"), avg("x").alias("mean"), sum_(lit(1)).alias("ones")
    )
    raw, optimized = both_ways(df)
    assert raw == optimized
