"""Plan cache: parameterized reuse, value-sensitive invalidation,
LRU bounds, and MVCC-version keying."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import enable_indexing
from repro.sql.session import Session
from tests.conftest import small_config


@pytest.fixture()
def cached_session():
    s = Session(small_config())
    s.create_dataframe(
        [(i, f"n{i % 5}", i * 1.5) for i in range(100)],
        [("id", "long"), ("name", "string"), ("score", "double")],
    ).create_or_replace_temp_view("t")
    yield s
    s.stop()


def counters(session):
    snapshot = session.ctx.scheduler.metrics.snapshot()
    return snapshot["plan_cache_hits"], snapshot["plan_cache_misses"]


class TestParameterSlots:
    def test_equality_literal_reuses_template(self, cached_session):
        s = cached_session
        assert s.sql("SELECT name FROM t WHERE id = 5").collect_tuples() == [("n0",)]
        assert s.sql("SELECT name FROM t WHERE id = 7").collect_tuples() == [("n2",)]
        assert s.sql("SELECT name FROM t WHERE id = 9").collect_tuples() == [("n4",)]
        assert counters(s) == (2, 1)

    def test_range_literal_reuses_template(self, cached_session):
        s = cached_session
        a = s.sql("SELECT count(*) FROM t WHERE id < 10").collect_tuples()
        b = s.sql("SELECT count(*) FROM t WHERE id < 50").collect_tuples()
        assert (a, b) == ([(10,)], [(50,)])
        assert counters(s) == (1, 1)

    def test_different_shapes_miss(self, cached_session):
        s = cached_session
        s.sql("SELECT name FROM t WHERE id = 5").collect_tuples()
        s.sql("SELECT score FROM t WHERE id = 5").collect_tuples()
        s.sql("SELECT name FROM t WHERE score > 5").collect_tuples()
        assert counters(s) == (0, 3)

    def test_in_list_values_are_baked(self, cached_session):
        """IN lists feed value-sensitive rules (dedupe/collapse), so
        different lists must be different cache entries."""
        s = cached_session
        a = s.sql("SELECT count(*) FROM t WHERE id IN (1, 2, 3)").collect_tuples()
        b = s.sql("SELECT count(*) FROM t WHERE id IN (4, 5)").collect_tuples()
        c = s.sql("SELECT count(*) FROM t WHERE id IN (1, 2, 3)").collect_tuples()
        assert (a, b, c) == ([(3,)], [(2,)], [(3,)])
        hits, misses = counters(s)
        assert misses == 2 and hits == 1

    def test_folded_comparison_demotes_to_exact(self, cached_session):
        """``1 = 1`` folds away: same constant hits, changed constant
        misses (it folds differently), and results stay correct."""
        s = cached_session
        e1 = s.sql("SELECT count(*) FROM t WHERE 1 = 1 AND id < 3").collect_tuples()
        e2 = s.sql("SELECT count(*) FROM t WHERE 1 = 1 AND id < 6").collect_tuples()
        e3 = s.sql("SELECT count(*) FROM t WHERE 1 = 2 AND id < 6").collect_tuples()
        assert (e1, e2, e3) == ([(3,)], [(6,)], [(0,)])
        hits, misses = counters(s)
        assert hits == 1 and misses == 2

    def test_aggregate_shape_reuse(self, cached_session):
        s = cached_session
        q = "SELECT name, count(*) FROM t WHERE score > {v} GROUP BY name"
        x1 = sorted(s.sql(q.format(v=30)).collect_tuples())
        x2 = sorted(s.sql(q.format(v=90)).collect_tuples())
        expected1 = {}
        expected2 = {}
        for i in range(100):
            name = f"n{i % 5}"
            if i * 1.5 > 30:
                expected1[name] = expected1.get(name, 0) + 1
            if i * 1.5 > 90:
                expected2[name] = expected2.get(name, 0) + 1
        assert x1 == sorted(expected1.items())
        assert x2 == sorted(expected2.items())
        assert counters(s) == (1, 1)


class TestLifecycle:
    def test_capacity_zero_disables(self):
        with Session(small_config(plan_cache_size=0)) as s:
            assert s.plan_cache is None
            s.create_dataframe(
                [(1, "a")], [("id", "long"), ("name", "string")]
            ).create_or_replace_temp_view("u")
            assert s.sql("SELECT name FROM u WHERE id = 1").collect_tuples() == [("a",)]
            assert counters(s) == (0, 0)

    def test_lru_eviction(self):
        with Session(small_config(plan_cache_size=2)) as s:
            s.create_dataframe(
                [(1, "a", 2.0)],
                [("id", "long"), ("name", "string"), ("score", "double")],
            ).create_or_replace_temp_view("u")
            shapes = [
                "SELECT name FROM u WHERE id = 1",
                "SELECT score FROM u WHERE id = 1",
                "SELECT id FROM u WHERE score > 0",
            ]
            for text in shapes:
                s.sql(text).collect_tuples()
            assert len(s.plan_cache) == 2
            s.sql(shapes[0]).collect_tuples()  # evicted: miss again
            assert counters(s) == (0, 4)

    def test_explain_goes_through_cache(self, cached_session):
        s = cached_session
        s.sql("SELECT name FROM t WHERE id = 1").explain()
        s.sql("SELECT name FROM t WHERE id = 2").explain()
        assert counters(s) == (1, 1)


class TestIndexedVersions:
    def test_append_invalidates_by_version(self):
        with Session(small_config()) as s:
            enable_indexing(s)
            df = s.create_dataframe(
                [(i, f"n{i}") for i in range(50)],
                [("id", "long"), ("name", "string")],
            )
            idf = df.create_index("id")
            idf.to_df().create_or_replace_temp_view("it")
            assert s.sql("SELECT name FROM it WHERE id = 10").collect_tuples() == [
                ("n10",)
            ]
            assert s.sql("SELECT name FROM it WHERE id = 20").collect_tuples() == [
                ("n20",)
            ]
            hits_before, _ = counters(s)
            assert hits_before >= 1

            extra = s.create_dataframe(
                [(1000, "x0")], [("id", "long"), ("name", "string")]
            )
            idf2 = idf.append_rows(extra)
            idf2.to_df().create_or_replace_temp_view("it")
            # New MVCC version: the stale template must not be replayed.
            assert s.sql("SELECT name FROM it WHERE id = 1000").collect_tuples() == [
                ("x0",)
            ]
            assert s.sql("SELECT name FROM it WHERE id = 10").collect_tuples() == [
                ("n10",)
            ]
            # The old handle still reads the old version.
            assert idf.lookup_latest(1000) is None

    def test_index_path_preserved_on_hit(self):
        with Session(small_config()) as s:
            enable_indexing(s)
            df = s.create_dataframe(
                [(i, f"n{i}") for i in range(50)],
                [("id", "long"), ("name", "string")],
            )
            idf = df.create_index("id")
            idf.to_df().create_or_replace_temp_view("it")
            s.sql("SELECT name FROM it WHERE id = 1").collect_tuples()
            plan_text = s.sql("SELECT name FROM it WHERE id = 2").explain()
            assert "Lookup" in plan_text, plan_text


class TestFullPlanLevel:
    """The second cache level: fully-optimized plans (extensions batch
    included) reused only on an exact (shape, values, version) match."""

    def full_hits(self, session) -> int:
        return session.ctx.scheduler.metrics.snapshot()["plan_cache_full_hits"]

    def test_exact_repeat_skips_the_extensions_batch(self, cached_session):
        s = cached_session
        a = s.sql("SELECT name FROM t WHERE id = 5").collect_tuples()
        b = s.sql("SELECT name FROM t WHERE id = 5").collect_tuples()
        assert a == b == [("n0",)]
        assert self.full_hits(s) == 1
        assert s.plan_cache.full_len() == 1

    def test_changed_literal_misses_full_but_hits_template(self, cached_session):
        s = cached_session
        s.sql("SELECT name FROM t WHERE id = 5").collect_tuples()
        s.sql("SELECT name FROM t WHERE id = 7").collect_tuples()
        assert self.full_hits(s) == 0
        assert counters(s) == (1, 1)  # the template level still reuses

    def test_append_invalidates_full_entries_by_version(self):
        with Session(small_config()) as s:
            enable_indexing(s)
            df = s.create_dataframe(
                [(i, "ab"[i % 2]) for i in range(60)],
                [("id", "long"), ("kind", "string")],
            )
            idf = df.create_index("id").create_index("kind")
            idf.to_df().create_or_replace_temp_view("it")
            q = "SELECT count(*) FROM it WHERE kind = 'a'"
            assert s.sql(q).collect_tuples() == [(30,)]
            assert s.sql(q).collect_tuples() == [(30,)]
            full_before = s.ctx.scheduler.metrics.snapshot()["plan_cache_full_hits"]
            assert full_before == 1

            idf2 = idf.append_rows([(1000, "a"), (1001, "a")])
            idf2.to_df().create_or_replace_temp_view("it")
            # New MVCC version: the baked bitmap-vs-cTrie era must not
            # replay — the query replans and sees the appended rows.
            assert s.sql(q).collect_tuples() == [(32,)]
            after = s.ctx.scheduler.metrics.snapshot()["plan_cache_full_hits"]
            assert after == full_before
            # The new version becomes its own full entry.
            assert s.sql(q).collect_tuples() == [(32,)]
            assert (
                s.ctx.scheduler.metrics.snapshot()["plan_cache_full_hits"]
                == full_before + 1
            )

    def test_clear_drops_both_levels(self, cached_session):
        s = cached_session
        s.sql("SELECT name FROM t WHERE id = 5").collect_tuples()
        assert len(s.plan_cache) == 1 and s.plan_cache.full_len() == 1
        s.plan_cache.clear()
        assert len(s.plan_cache) == 0 and s.plan_cache.full_len() == 0
