"""Strategy fallback must not absorb fail-stop errors.

The planner tries strategies in order and treats a raising strategy as
advisory — but only for *library* errors. A ``SanitizerError`` (or any
``FAIL_STOP`` class) escaping a strategy is an invariant violation:
falling through to the next strategy would plan the query on top of
corrupt state. Regression for the ET003 finding at the strategy loop.
"""

import pytest

from repro.errors import SanitizerError


def _install(session, strategy):
    session.extensions.inject_planner_strategy(strategy)
    session._rebuild_pipeline()


def test_sanitizer_error_aborts_planning(session, people_df):
    def tripping(plan, planner):
        raise SanitizerError("ZONE_SEAL", "seeded invariant trip")

    _install(session, tripping)
    with pytest.raises(SanitizerError):
        people_df.collect()


def test_advisory_strategy_errors_still_fall_through(session, people_df):
    def flaky(plan, planner):
        raise ValueError("buggy extension strategy")

    _install(session, flaky)
    assert len(people_df.collect()) == 5  # basic strategy still plans
