"""Tests for the DataFrame API surface."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.sql.functions import avg, col, count, lit, max_, min_, when


class TestProjectionAndFilter:
    def test_select_by_name_and_column(self, people_df):
        rows = people_df.select("name", (col("age") + 1).alias("older")).collect()
        assert rows[0]["older"] == 31

    def test_select_star_default(self, people_df):
        assert people_df.select().columns == people_df.columns

    def test_filter_with_column(self, people_df):
        assert people_df.filter(col("age") > 30).count() == 2

    def test_filter_with_sql_string(self, people_df):
        assert people_df.filter("age > 30 AND name IS NOT NULL").count() == 1

    def test_filter_null_is_dropped(self, people_df):
        # name = NULL comparisons are NULL → row filtered out.
        assert people_df.filter(col("name") == "ann").count() == 1

    def test_chained_operations(self, people_df):
        result = (
            people_df.filter(col("age") >= 25)
            .select("name", "age")
            .order_by(col("age").desc())
            .limit(2)
            .collect()
        )
        assert [r["age"] for r in result] == [40, 35]

    def test_with_column_adds(self, people_df):
        df = people_df.with_column("double_age", col("age") * 2)
        assert df.columns[-1] == "double_age"
        assert df.collect()[0]["double_age"] == 60

    def test_with_column_replaces(self, people_df):
        df = people_df.with_column("age", col("age") + 100)
        assert df.columns == people_df.columns
        assert df.collect()[0]["age"] == 130

    def test_with_column_renamed(self, people_df):
        df = people_df.with_column_renamed("age", "years")
        assert "years" in df.columns and "age" not in df.columns

    def test_drop(self, people_df):
        assert people_df.drop("age", "country").columns == ["id", "name"]

    def test_distinct(self, people_df):
        assert people_df.select("age").distinct().count() == 4

    def test_union(self, people_df):
        assert people_df.union(people_df).count() == 10

    def test_case_when_column(self, people_df):
        df = people_df.select(
            "name",
            when(col("age") >= 30, "old").otherwise("young").alias("bucket"),
        )
        buckets = {r["name"]: r["bucket"] for r in df.collect() if r["name"]}
        assert buckets == {"ann": "old", "bob": "young", "cat": "old", "dan": "young"}

    def test_isin(self, people_df):
        assert people_df.filter(col("id").isin(1, 3, 99)).count() == 2
        assert people_df.filter(col("id").isin([1, 3])).count() == 2

    def test_between(self, people_df):
        assert people_df.filter(col("age").between(25, 30)).count() == 3

    def test_like(self, people_df):
        assert people_df.filter(col("name").like("%a%")).count() == 3

    def test_cast(self, people_df):
        rows = people_df.select(col("age").cast("string").alias("s")).collect()
        assert rows[0]["s"] == "30"

    def test_boolean_column_guard(self, people_df):
        with pytest.raises(TypeError, match="instead of and"):
            bool(col("age") > 1)


class TestActions:
    def test_collect_returns_rows(self, people_df):
        rows = people_df.collect()
        assert rows[0].name == "ann"
        assert rows[0]["id"] == 1

    def test_take_and_first(self, people_df):
        assert len(people_df.take(2)) == 2
        assert people_df.first()["id"] == 1

    def test_first_on_empty(self, people_df):
        assert people_df.filter(col("id") == -1).first() is None

    def test_count(self, people_df):
        assert people_df.count() == 5

    def test_show_renders_table(self, people_df, capsys):
        people_df.show(2)
        out = capsys.readouterr().out
        assert "| id " in out and "ann" in out and "NULL" not in out.split("\n")[1]

    def test_show_renders_null(self, people_df, capsys):
        people_df.filter(col("name").is_null()).show()
        assert "NULL" in capsys.readouterr().out

    def test_explain_has_three_sections(self, people_df):
        text = people_df.filter(col("age") > 1).explain()
        assert "== Analyzed ==" in text
        assert "== Optimized ==" in text
        assert "== Physical ==" in text


class TestOrderBy:
    def test_order_by_string_column(self, people_df):
        ages = [r["age"] for r in people_df.order_by("age").collect()]
        assert ages == sorted(ages)

    def test_order_by_multiple_directions(self, people_df):
        rows = people_df.order_by(col("age").asc(), col("id").desc()).collect()
        assert [r["id"] for r in rows[:2]] == [4, 2]  # both age 25, id desc

    def test_nulls_ordering(self, session):
        df = session.create_dataframe(
            [(1, None), (2, "b"), (3, "a")], [("id", "long"), ("v", "string")]
        )
        values = [r["v"] for r in df.order_by("v").collect()]
        assert values == [None, "a", "b"]  # nulls first by default


class TestCaching:
    def test_cache_returns_same_results(self, people_df):
        cached = people_df.cache()
        assert sorted(map(tuple, cached.collect())) == sorted(
            map(tuple, people_df.collect())
        )

    def test_cache_is_columnar_and_reusable(self, people_df):
        cached = people_df.cache()
        assert cached.is_cached
        assert cached.cached_bytes() > 0
        assert cached.filter(col("id") == 2).collect()[0]["name"] == "bob"

    def test_operations_on_cached(self, people_df):
        cached = people_df.cache()
        assert cached.select("age").distinct().count() == 4

    def test_uncached_reports_zero_bytes(self, people_df):
        assert not people_df.is_cached
        assert people_df.cached_bytes() == 0


class TestAggregation:
    def test_global_agg(self, people_df):
        row = people_df.agg(
            count().alias("n"),
            min_("age").alias("lo"),
            max_("age").alias("hi"),
            avg("age").alias("mean"),
        ).collect()[0]
        assert tuple(row) == (5, 25, 40, 31.0)

    def test_agg_on_empty_relation(self, people_df):
        row = people_df.filter(col("id") < 0).agg(count().alias("n")).collect()
        assert len(row) == 1 and row[0]["n"] == 0

    def test_count_ignores_nulls(self, people_df):
        row = people_df.agg(count(col("name")).alias("named")).collect()[0]
        assert row["named"] == 4

    def test_count_distinct(self, people_df):
        from repro.sql.functions import count_distinct

        row = people_df.agg(count_distinct("age").alias("d")).collect()[0]
        assert row["d"] == 4

    def test_grouped_min_max_sum_avg(self, people_df):
        rows = people_df.group_by("country").max("age").collect()
        table = {r[0]: r[1] for r in rows}
        assert table == {"nl": 35, "us": 40, "de": 25}
