"""Property-based tests: SQL operators vs a naive Python oracle."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import Config
from repro.sql.functions import col, count, sum_
from repro.sql.session import Session

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(-20, 20),
        st.one_of(st.none(), st.integers(-100, 100)),
        st.sampled_from(["x", "y", "z"]),
    ),
    max_size=60,
)


@pytest.fixture(scope="module")
def shared_session():
    s = Session(Config(executor_threads=2, shuffle_partitions=3, default_parallelism=2))
    yield s
    s.stop()


def make_df(session, rows):
    return session.create_dataframe(
        rows, [("k", "long"), ("v", "long"), ("tag", "string")], num_partitions=3
    )


@slow
@given(rows=rows_strategy, threshold=st.integers(-20, 20))
def test_filter_matches_oracle(shared_session, rows, threshold):
    df = make_df(shared_session, rows)
    got = sorted(map(tuple, df.filter(col("k") > threshold).collect()), key=repr)
    expected = sorted((r for r in rows if r[0] > threshold), key=repr)
    assert got == expected


@slow
@given(rows=rows_strategy)
def test_group_count_matches_oracle(shared_session, rows):
    df = make_df(shared_session, rows)
    got = dict(
        (r["k"], r["n"])
        for r in df.group_by("k").agg(count().alias("n")).collect()
    )
    expected: dict = {}
    for r in rows:
        expected[r[0]] = expected.get(r[0], 0) + 1
    assert got == expected


@slow
@given(rows=rows_strategy)
def test_group_sum_skips_nulls(shared_session, rows):
    df = make_df(shared_session, rows)
    got = dict(
        (r["k"], r["s"]) for r in df.group_by("k").agg(sum_("v").alias("s")).collect()
    )
    expected: dict = {}
    for k, v, _tag in rows:
        if k not in expected:
            expected[k] = None
        if v is not None:
            expected[k] = v if expected[k] is None else expected[k] + v
    assert got == expected


@slow
@given(rows=rows_strategy)
def test_distinct_matches_set(shared_session, rows):
    df = make_df(shared_session, rows)
    got = sorted(map(tuple, df.distinct().collect()), key=repr)
    expected = sorted(set(rows), key=repr)
    assert got == expected


@slow
@given(rows=rows_strategy)
def test_order_by_is_total_sort(shared_session, rows):
    df = make_df(shared_session, rows)
    got = [r["k"] for r in df.order_by(col("k").asc()).collect()]
    assert got == sorted(r[0] for r in rows)


@slow
@given(left=rows_strategy, right=rows_strategy)
def test_inner_join_matches_oracle(shared_session, left, right):
    ldf = make_df(shared_session, left)
    rdf = shared_session.create_dataframe(
        [(r[0], r[2]) for r in right], [("k2", "long"), ("tag2", "string")],
        num_partitions=2,
    )
    got = sorted(
        map(tuple, ldf.join(rdf, on=ldf.col("k") == rdf.col("k2")).collect()),
        key=repr,
    )
    expected = sorted(
        (
            (lk, lv, lt, rk, rt)
            for (lk, lv, lt) in left
            for (rk, _rv, rt) in right
            if lk == rk
        ),
        key=repr,
    )
    assert got == expected


@slow
@given(left=rows_strategy, right=rows_strategy)
def test_left_join_row_count(shared_session, left, right):
    ldf = make_df(shared_session, left)
    rdf = shared_session.create_dataframe(
        [(r[0],) for r in right], [("k2", "long")], num_partitions=2
    )
    joined = ldf.join(rdf, on=ldf.col("k") == rdf.col("k2"), how="left")
    right_counts: dict = {}
    for r in right:
        right_counts[r[0]] = right_counts.get(r[0], 0) + 1
    expected = sum(max(1, right_counts.get(l[0], 0)) for l in left)
    assert joined.count() == expected


@slow
@given(rows=rows_strategy, n=st.integers(0, 10))
def test_limit_bounds(shared_session, rows, n):
    df = make_df(shared_session, rows)
    assert len(df.limit(n).collect()) == min(n, len(rows))
