"""Plan-time pruning: zone maps on scans, routing, and the IN-list rule.

Every test asserts two things at once: the plan *marker* (EXPLAIN shows
what was skipped) and the *results* (pruning never changes answers —
the filter above the scan re-checks surviving rows).
"""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.sql.expressions import EqualTo, In, Literal
from repro.sql.functions import col
from repro.sql.logical import Filter
from repro.sql.session import Session
from tests.conftest import small_config


def find_filters(plan):
    out = [plan] if isinstance(plan, Filter) else []
    for child in plan.children:
        out.extend(find_filters(child))
    return out


@pytest.fixture()
def tiny_batch_session():
    """Indexed session whose geometry yields several batches per
    partition, so per-batch zone maps have something to skip."""
    session = Session(
        small_config(batch_size_bytes=1024, max_row_bytes=256, shuffle_partitions=4)
    )
    enable_indexing(session)
    yield session
    session.stop()


class TestVanillaScanPruning:
    """Partition-level zones on row/columnar relations."""

    def rows(self, n=100):
        return [(i, f"name_{i:04d}") for i in range(n)]

    def test_range_filter_prunes_partitions(self, session):
        df = session.create_dataframe(
            self.rows(), [("id", "long"), ("name", "string")]
        )
        before = session.ctx.pruning_metrics.snapshot()
        query = df.filter(col("id") < 10)
        result = sorted(t[0] for t in query.collect_tuples())
        assert result == list(range(10))
        # default_parallelism=2 → rows split in order → the second
        # partition's zone is [50, 99] and provably cannot match.
        assert "zone_pruned=1/2" in query.last_execution_plan()
        after = session.ctx.pruning_metrics.snapshot()
        assert after["partitions_pruned"] > before["partitions_pruned"]

    def test_unprunable_filter_keeps_all(self, session):
        df = session.create_dataframe(
            self.rows(), [("id", "long"), ("name", "string")]
        )
        query = df.filter(col("id") % 2 == 0)
        assert len(query.collect_tuples()) == 50
        assert "zone_pruned" not in query.last_execution_plan()

    def test_knob_off_no_pruning_same_results(self):
        session = Session(small_config(zone_maps_enabled=False))
        try:
            df = session.create_dataframe(
                self.rows(), [("id", "long"), ("name", "string")]
            )
            query = df.filter(col("id") < 10)
            assert sorted(t[0] for t in query.collect_tuples()) == list(range(10))
            assert "zone_pruned" not in query.last_execution_plan()
            assert session.ctx.pruning_metrics.snapshot()["scans"] == 0
        finally:
            session.stop()

    def test_nulls_survive_pruning(self, session):
        df = session.create_dataframe(
            [(1, "a"), (None, "b"), (50, "c"), (None, "d")],
            [("id", "long"), ("name", "string")],
        )
        assert df.filter(col("id").is_null()).count() == 2
        assert df.filter(col("id").is_not_null()).count() == 2
        assert df.filter(col("id") > 10).count() == 1


class TestIndexedScanPruning:
    """Batch-level zones + hash routing on the indexed storage."""

    def test_range_filter_skips_batches(self, tiny_batch_session):
        session = tiny_batch_session
        df = session.create_dataframe(
            [(i, f"name_{i:04d}") for i in range(500)],
            [("id", "long"), ("name", "string")],
        )
        indexed = create_index(df, "id")
        before = session.ctx.pruning_metrics.snapshot()
        query = indexed.to_df().filter((col("id") >= 100) & (col("id") < 120))
        got = sorted(t[0] for t in query.collect_tuples())
        assert got == list(range(100, 120))
        assert "batches_pruned=" in query.last_execution_plan()
        after = session.ctx.pruning_metrics.snapshot()
        assert after["batches_pruned"] > before["batches_pruned"]

    def test_old_snapshot_prunes_independently(self, tiny_batch_session):
        session = tiny_batch_session
        df = session.create_dataframe(
            [(i, "old") for i in range(200)], [("id", "long"), ("tag", "string")]
        )
        v0 = create_index(df, "id")
        v1 = v0.append_rows([(i, "new") for i in range(1000, 1200)])
        low = (col("id") >= 0) & (col("id") < 50)
        high = (col("id") >= 1000) & (col("id") < 1050)
        # The old handle never sees the appended range...
        assert v0.to_df().filter(high).count() == 0
        assert v0.to_df().filter(low).count() == 50
        # ...the new handle sees both, through its own zones.
        assert v1.to_df().filter(high).count() == 50
        assert v1.to_df().filter(low).count() == 50

    def test_key_routing_marker(self, tiny_batch_session):
        """Equality on the partitioning column routes to its hash
        partitions (exercised at the exec level: the optimizer rewrites
        top-level key lookups to IndexLookup, so routing is the net for
        shapes that rewrite misses)."""
        from repro.core.physical import IndexedScanExec

        session = tiny_batch_session
        df = session.create_dataframe(
            [(i, f"n{i}") for i in range(100)], [("id", "long"), ("name", "string")]
        )
        indexed = create_index(df, "id")
        relation_df = indexed.to_df()
        attrs = relation_df.analyzed_plan().output()
        scan = IndexedScanExec(session.ctx, indexed.version, attrs)
        scan.apply_pruning(In(attrs[0], [Literal(7)]))
        assert scan._routed
        described = scan.describe()
        assert "key_routed=" in described
        rows = session.ctx.run_job(scan.execute(), list)
        assert [t for part in rows for t in part if t[0] == 7] == [(7, "n7")]

    def test_zone_maps_disabled_indexed(self):
        session = Session(small_config(zone_maps_enabled=False))
        enable_indexing(session)
        try:
            df = session.create_dataframe(
                [(i, "x") for i in range(100)], [("id", "long"), ("v", "string")]
            )
            indexed = create_index(df, "id")
            query = indexed.to_df().filter((col("id") >= 10) & (col("id") < 20))
            assert query.count() == 10
            plan = query.last_execution_plan()
            assert "batches_pruned" not in plan and "zone_pruned" not in plan
        finally:
            session.stop()


class TestSimplifyInLists:
    def optimized_filter(self, session, df):
        optimized = session.optimizer.optimize(df.analyzed_plan())
        filters = find_filters(optimized)
        assert filters, optimized.pretty()
        return filters[0].condition

    def test_duplicate_options_deduped(self, session):
        df = session.create_dataframe([(i,) for i in range(10)], [("id", "long")])
        query = df.filter(col("id").isin(3, 7, 3, 7, 3))
        condition = self.optimized_filter(session, query)
        assert isinstance(condition, In)
        assert len(condition.options) == 2
        assert sorted(t[0] for t in query.collect_tuples()) == [3, 7]

    def test_single_option_becomes_equality(self, session):
        df = session.create_dataframe([(i,) for i in range(10)], [("id", "long")])
        query = df.filter(col("id").isin(4, 4, 4))
        condition = self.optimized_filter(session, query)
        assert isinstance(condition, EqualTo)
        assert [t[0] for t in query.collect_tuples()] == [4]

    def test_unhashable_options_left_alone(self, session):
        df = session.create_dataframe([(i,) for i in range(10)], [("id", "long")])
        query = df.filter(col("id").isin(1, 2))
        condition = self.optimized_filter(session, query)
        assert isinstance(condition, In) and len(condition.options) == 2


class TestLookupMany:
    def test_matches_planned_in_list(self, indexed_session):
        session = indexed_session
        df = session.create_dataframe(
            [(i, f"name_{i}") for i in range(200)],
            [("id", "long"), ("name", "string")],
        )
        indexed = create_index(df, "id")
        keys = [3, 50, 50, 199, 777, None]  # dupes, a miss, and a NULL
        got = sorted(indexed.lookup_many(keys))
        planned = sorted(
            indexed.to_df().filter(col("id").isin(3, 50, 199, 777)).collect_tuples()
        )
        assert got == planned == [(3, "name_3"), (50, "name_50"), (199, "name_199")]

    def test_interpreted_mode_agrees(self):
        session = Session(small_config(codegen_enabled=False))
        enable_indexing(session)
        try:
            df = session.create_dataframe(
                [(i, i * 2) for i in range(50)], [("id", "long"), ("v", "long")]
            )
            indexed = create_index(df, "id")
            assert sorted(indexed.lookup_many([1, 2, 3])) == [(1, 2), (2, 4), (3, 6)]
        finally:
            session.stop()
