"""Tests for the property graph abstraction."""

from __future__ import annotations

import pytest

from repro.errors import EngineError
from repro.graph import Graph

EDGES = [(1, 2), (2, 3), (3, 1), (3, 4), (4, 5), (6, 7)]


@pytest.fixture()
def graph(ctx):
    return Graph.from_edge_list(ctx, EDGES)


class TestConstruction:
    def test_from_edge_list_infers_vertices(self, graph):
        assert graph.num_vertices() == 7
        assert graph.num_edges() == 6

    def test_from_edge_list_with_attrs(self, ctx):
        g = Graph.from_edge_list(ctx, [(1, 2, "friend")], default_vertex_attr=0)
        assert g.edges.collect() == [(1, 2, "friend")]
        assert dict(g.vertices.collect()) == {1: 0, 2: 0}

    def test_invalid_edge_shape(self, ctx):
        with pytest.raises(EngineError):
            Graph.from_edge_list(ctx, [(1, 2, 3, 4)])

    def test_from_dataframes(self, session):
        people = session.create_dataframe(
            [(1, "ann"), (2, "bob")], [("id", "long"), ("name", "string")]
        )
        knows = session.create_dataframe(
            [(1, 2, 123)],
            [("src", "long"), ("dst", "long"), ("since", "long")],
        )
        g = Graph.from_dataframes(people, knows)
        assert dict(g.vertices.collect()) == {1: ("ann",), 2: ("bob",)}
        assert g.edges.collect() == [(1, 2, (123,))]

    def test_from_indexed_dataframe(self, indexed_session):
        from repro.core import create_index

        people = indexed_session.create_dataframe(
            [(i, f"p{i}") for i in range(10)], [("id", "long"), ("name", "string")]
        )
        knows = indexed_session.create_dataframe(
            [(i, (i + 1) % 10, 0) for i in range(10)],
            [("src", "long"), ("dst", "long"), ("w", "long")],
        )
        indexed = create_index(knows, "src")
        g = Graph.from_dataframes(people, indexed.to_df())
        assert g.num_edges() == 10


class TestDegrees:
    def test_out_degrees_include_zero(self, graph):
        deg = dict(graph.out_degrees().collect())
        assert deg == {1: 1, 2: 1, 3: 2, 4: 1, 5: 0, 6: 1, 7: 0}

    def test_in_degrees(self, graph):
        deg = dict(graph.in_degrees().collect())
        assert deg[1] == 1 and deg[5] == 1 and deg[6] == 0

    def test_total_degrees(self, graph):
        deg = dict(graph.degrees().collect())
        assert deg[3] == 3 and deg[7] == 1


class TestTransformations:
    def test_map_vertices(self, graph):
        doubled = graph.map_vertices(lambda vid, _attr: vid * 2)
        assert dict(doubled.vertices.collect())[3] == 6

    def test_reverse(self, graph):
        reversed_edges = set(
            (e[0], e[1]) for e in graph.reverse().edges.collect()
        )
        assert (2, 1) in reversed_edges and (1, 2) not in reversed_edges

    def test_subgraph_drops_dangling_edges(self, graph):
        sub = graph.subgraph(vertex_pred=lambda vid, _a: vid <= 4)
        assert sub.num_vertices() == 4
        edge_pairs = {(e[0], e[1]) for e in sub.edges.collect()}
        assert (4, 5) not in edge_pairs and (3, 4) in edge_pairs

    def test_subgraph_edge_predicate(self, graph):
        sub = graph.subgraph(edge_pred=lambda s, d, _a: s < d)
        assert all(e[0] < e[1] for e in sub.edges.collect())

    def test_repr(self, graph):
        assert "7 vertices" in repr(graph)
