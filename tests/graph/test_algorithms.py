"""Graph algorithms, cross-checked against networkx."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.graph import (
    Graph,
    connected_components,
    pagerank,
    shortest_paths,
    triangle_count,
)


def random_digraph(n: int, m: int, seed: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((a, b))
    return sorted(edges)


class TestPageRank:
    def test_cycle_is_uniform(self, ctx):
        g = Graph.from_edge_list(ctx, [(0, 1), (1, 2), (2, 0)])
        ranks = pagerank(g, iterations=30)
        assert all(abs(r - 1 / 3) < 1e-6 for r in ranks.values())

    def test_star_center_ranks_highest(self, ctx):
        g = Graph.from_edge_list(ctx, [(i, 0) for i in range(1, 6)])
        ranks = pagerank(g, iterations=30)
        assert ranks[0] == max(ranks.values())

    def test_sums_to_one_with_dangling(self, ctx):
        g = Graph.from_edge_list(ctx, [(1, 2), (2, 3)])  # 3 dangles
        ranks = pagerank(g, iterations=40)
        assert abs(sum(ranks.values()) - 1.0) < 1e-9

    def test_matches_networkx(self, ctx):
        edges = random_digraph(25, 80, seed=3)
        g = Graph.from_edge_list(ctx, edges)
        mine = pagerank(g, iterations=60)
        theirs = nx.pagerank(nx.DiGraph(edges), alpha=0.85, max_iter=200, tol=1e-12)
        for vid, expected in theirs.items():
            assert mine[vid] == pytest.approx(expected, abs=1e-3)

    def test_empty_graph(self, ctx):
        g = Graph.from_edge_list(ctx, [])
        assert pagerank(g) == {}


class TestConnectedComponents:
    def test_two_islands(self, ctx):
        g = Graph.from_edge_list(ctx, [(1, 2), (2, 3), (10, 11)])
        cc = connected_components(g)
        assert cc == {1: 1, 2: 1, 3: 1, 10: 10, 11: 10}

    def test_direction_ignored(self, ctx):
        g = Graph.from_edge_list(ctx, [(5, 1), (1, 9)])
        cc = connected_components(g)
        assert len(set(cc.values())) == 1

    def test_matches_networkx(self, ctx):
        edges = random_digraph(40, 45, seed=9)
        g = Graph.from_edge_list(ctx, edges)
        mine = connected_components(g)
        theirs = list(nx.weakly_connected_components(nx.DiGraph(edges)))
        for component in theirs:
            labels = {mine[v] for v in component}
            assert len(labels) == 1
            assert labels == {min(component)}


class TestTriangles:
    def test_single_triangle(self, ctx):
        g = Graph.from_edge_list(ctx, [(1, 2), (2, 3), (3, 1)])
        assert triangle_count(g) == 1

    def test_direction_and_duplicates_ignored(self, ctx):
        g = Graph.from_edge_list(ctx, [(1, 2), (2, 1), (2, 3), (3, 1), (1, 3)])
        assert triangle_count(g) == 1

    def test_self_loops_ignored(self, ctx):
        g = Graph.from_edge_list(ctx, [(1, 1), (1, 2), (2, 3), (3, 1)])
        assert triangle_count(g) == 1

    def test_no_triangles(self, ctx):
        g = Graph.from_edge_list(ctx, [(1, 2), (2, 3), (3, 4)])
        assert triangle_count(g) == 0

    def test_matches_networkx(self, ctx):
        edges = random_digraph(20, 70, seed=1)
        g = Graph.from_edge_list(ctx, edges)
        expected = sum(nx.triangles(nx.Graph(edges)).values()) // 3
        assert triangle_count(g) == expected


class TestShortestPaths:
    def test_chain(self, ctx):
        g = Graph.from_edge_list(ctx, [(1, 2), (2, 3), (3, 4)])
        assert shortest_paths(g, 1) == {1: 0, 2: 1, 3: 2, 4: 3}

    def test_unreachable_absent(self, ctx):
        g = Graph.from_edge_list(ctx, [(1, 2), (3, 4)])
        assert shortest_paths(g, 1) == {1: 0, 2: 1}

    def test_respects_direction(self, ctx):
        g = Graph.from_edge_list(ctx, [(2, 1), (2, 3)])
        assert shortest_paths(g, 1) == {1: 0}

    def test_matches_networkx(self, ctx):
        edges = random_digraph(25, 60, seed=7)
        g = Graph.from_edge_list(ctx, edges)
        source = edges[0][0]
        mine = shortest_paths(g, source)
        theirs = nx.single_source_shortest_path_length(nx.DiGraph(edges), source)
        assert mine == dict(theirs)


class TestOnSNBGraph:
    """The motivating workload: analytics on the social graph."""

    def test_knows_graph_analytics(self, ctx):
        from repro.snb import generate

        dataset = generate(scale_factor=0.1, seed=4)
        g = Graph.from_edge_list(
            ctx, [(a, b) for a, b, _ts in dataset.knows]
        ).cache()
        ranks = pagerank(g, iterations=10)
        assert abs(sum(ranks.values()) - 1.0) < 1e-6
        components = connected_components(g)
        assert len(components) == g.num_vertices()
        # knows is symmetric → triangle count well defined and plausible
        assert triangle_count(g) >= 0
