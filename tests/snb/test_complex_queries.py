"""Tests for the complex (multi-hop) SNB queries."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import enable_indexing
from repro.snb import generate, load_indexed, load_vanilla
from repro.snb.complex_queries import (
    COMPLEX_QUERIES,
    cq1_friends_of_friends,
    cq2_friends_recent_messages,
    cq3_top_likers,
)
from repro.sql.session import Session


@pytest.fixture(scope="module")
def world():
    session = Session(
        Config(
            executor_threads=2,
            shuffle_partitions=4,
            batch_size_bytes=256 * 1024,
            broadcast_threshold=10_000,
        )
    )
    enable_indexing(session)
    dataset = generate(scale_factor=0.3, seed=31)
    vanilla = load_vanilla(session, dataset)
    indexed = load_indexed(session, dataset)
    yield session, dataset, vanilla, indexed
    session.stop()


def busy_person(dataset):
    degree: dict[int, int] = {}
    for a, _b, _ts in dataset.knows:
        degree[a] = degree.get(a, 0) + 1
    return max(degree, key=degree.get)


class TestEquivalence:
    @pytest.mark.parametrize("name", list(COMPLEX_QUERIES))
    def test_indexed_equals_vanilla(self, world, name):
        _s, dataset, vanilla, indexed = world
        fn, _kind = COMPLEX_QUERIES[name]
        for pid in dataset.person_ids()[::97][:3]:
            expected = [tuple(r) for r in fn(vanilla, pid)]
            actual = [tuple(r) for r in fn(indexed, pid)]
            assert actual == expected, f"{name} diverged for person {pid}"

    @pytest.mark.parametrize("name", list(COMPLEX_QUERIES))
    def test_missing_person_empty(self, world, name):
        _s, _d, vanilla, indexed = world
        fn, _kind = COMPLEX_QUERIES[name]
        assert fn(vanilla, -1) == []
        assert fn(indexed, -1) == []


class TestOracles:
    def test_cq1_excludes_self_and_direct_friends(self, world):
        _s, dataset, _v, indexed = world
        pid = busy_person(dataset)
        direct = {b for a, b, _ts in dataset.knows if a == pid}
        rows = cq1_friends_of_friends(indexed, pid, limit=1000)
        ids = {r["id"] for r in rows}
        assert pid not in ids
        assert not (ids & direct)

    def test_cq1_matches_python_two_hop(self, world):
        _s, dataset, _v, indexed = world
        pid = busy_person(dataset)
        adjacency: dict[int, set[int]] = {}
        for a, b, _ts in dataset.knows:
            adjacency.setdefault(a, set()).add(b)
        direct = adjacency.get(pid, set())
        expected = set()
        for friend in direct:
            expected |= adjacency.get(friend, set())
        expected -= direct | {pid}
        rows = cq1_friends_of_friends(indexed, pid, limit=10_000)
        assert {r["id"] for r in rows} == expected

    def test_cq2_only_friend_messages_ordered(self, world):
        _s, dataset, _v, indexed = world
        pid = busy_person(dataset)
        friends = {b for a, b, _ts in dataset.knows if a == pid}
        rows = cq2_friends_recent_messages(indexed, pid, limit=50)
        assert all(r["author_id"] in friends for r in rows)
        stamps = [r["sent_at"] for r in rows]
        assert stamps == sorted(stamps, reverse=True)

    def test_cq3_counts_match_python(self, world):
        _s, dataset, _v, indexed = world
        pid = busy_person(dataset)
        my_messages = {m[0] for m in dataset.messages if m[1] == pid}
        expected: dict[int, int] = {}
        for fan, message, _ts in dataset.likes:
            if message in my_messages:
                expected[fan] = expected.get(fan, 0) + 1
        rows = cq3_top_likers(indexed, pid, limit=10_000)
        assert {r["fan_id"]: r["num_likes"] for r in rows} == expected


class TestIndexUse:
    def test_cq2_uses_index_operators(self, world):
        _s, dataset, _v, indexed = world
        pid = busy_person(dataset)
        knows = indexed.knows
        plan = knows.filter(
            knows.col("person1_id") == pid
        ).explain()
        assert "IndexLookup" in plan
