"""Tests for the SNB-style data generator."""

from __future__ import annotations

import pytest

from repro.snb import generate
from repro.snb.datagen import EPOCH_START_MS
from repro.snb.schema import (
    FORUM_ID_BASE,
    KNOWS_SCHEMA,
    MESSAGE_ID_BASE,
    MESSAGE_SCHEMA,
    PERSON_SCHEMA,
)


@pytest.fixture(scope="module")
def dataset():
    return generate(scale_factor=0.5, seed=11)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate(scale_factor=0.1, seed=3)
        b = generate(scale_factor=0.1, seed=3)
        assert a.persons == b.persons
        assert a.knows == b.knows
        assert a.messages == b.messages

    def test_different_seed_differs(self):
        a = generate(scale_factor=0.1, seed=3)
        b = generate(scale_factor=0.1, seed=4)
        assert a.persons != b.persons


class TestScaling:
    def test_scale_factor_controls_sizes(self):
        small = generate(scale_factor=0.1)
        large = generate(scale_factor=1.0)
        assert large.num_persons == 10 * small.num_persons
        assert len(large.knows) > 3 * len(small.knows)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            generate(scale_factor=0)


class TestSchemaConformance:
    def test_persons_validate(self, dataset):
        for row in dataset.persons[:100]:
            PERSON_SCHEMA.validate_row(row)

    def test_knows_validate(self, dataset):
        for row in dataset.knows[:100]:
            KNOWS_SCHEMA.validate_row(row)

    def test_messages_validate(self, dataset):
        for row in dataset.messages[:100]:
            MESSAGE_SCHEMA.validate_row(row)

    def test_id_spaces_disjoint(self, dataset):
        person_ids = set(dataset.person_ids())
        message_ids = set(dataset.message_ids())
        forum_ids = {f[0] for f in dataset.forums}
        assert max(person_ids) < FORUM_ID_BASE
        assert all(FORUM_ID_BASE < f < MESSAGE_ID_BASE for f in forum_ids)
        assert all(m > MESSAGE_ID_BASE for m in message_ids)


class TestGraphProperties:
    def test_knows_symmetric(self, dataset):
        edges = {(k[0], k[1]) for k in dataset.knows}
        assert all((b, a) in edges for a, b in edges)

    def test_no_self_edges(self, dataset):
        assert all(a != b for a, b, _ts in dataset.knows)

    def test_degree_distribution_is_skewed(self, dataset):
        degree: dict[int, int] = {}
        for a, _b, _ts in dataset.knows:
            degree[a] = degree.get(a, 0) + 1
        degrees = sorted(degree.values(), reverse=True)
        mean = sum(degrees) / len(degrees)
        # Power law: the top hub should far exceed the mean.
        assert degrees[0] > 3 * mean

    def test_messages_reference_valid_entities(self, dataset):
        person_ids = set(dataset.person_ids())
        message_ids = set(dataset.message_ids())
        forum_ids = {f[0] for f in dataset.forums}
        for m in dataset.messages:
            assert m[1] in person_ids  # creator
            if m[5]:  # post
                assert m[6] in forum_ids and m[7] is None
            else:  # comment
                assert m[6] is None and m[7] in message_ids

    def test_replies_point_backwards(self, dataset):
        created = {}
        for m in dataset.messages:
            created[m[0]] = m[0]
        for m in dataset.messages:
            if m[7] is not None:
                assert m[7] < m[0]  # reply id after its target

    def test_likes_reference_messages(self, dataset):
        message_ids = set(dataset.message_ids())
        person_ids = set(dataset.person_ids())
        for person, message, _ts in dataset.likes[:200]:
            assert person in person_ids
            assert message in message_ids

    def test_timestamps_after_epoch(self, dataset):
        assert all(p[5] >= EPOCH_START_MS for p in dataset.persons)

    def test_forum_members_exist(self, dataset):
        person_ids = set(dataset.person_ids())
        forum_ids = {f[0] for f in dataset.forums}
        for forum, person, _ts in dataset.forum_members[:200]:
            assert forum in forum_ids and person in person_ids

    def test_table_sizes_summary(self, dataset):
        sizes = dataset.table_sizes()
        assert sizes["person"] == dataset.num_persons
        assert set(sizes) == {
            "person", "knows", "message", "forum", "forum_member", "likes",
        }
