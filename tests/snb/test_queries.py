"""SNB short reads: correctness on both paths + oracle checks."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import enable_indexing
from repro.snb import (
    ALL_QUERIES,
    generate,
    load_indexed,
    load_vanilla,
    run_query,
    sq1,
    sq2,
    sq3,
    sq4,
    sq5,
    sq6,
    sq7,
)
from repro.sql.session import Session


@pytest.fixture(scope="module")
def world():
    session = Session(
        Config(
            executor_threads=2,
            shuffle_partitions=4,
            default_parallelism=2,
            batch_size_bytes=256 * 1024,
        )
    )
    enable_indexing(session)
    dataset = generate(scale_factor=0.3, seed=5)
    vanilla = load_vanilla(session, dataset)
    indexed = load_indexed(session, dataset)
    yield session, dataset, vanilla, indexed
    session.stop()


def busiest_person(dataset):
    counts: dict[int, int] = {}
    for m in dataset.messages:
        counts[m[1]] = counts.get(m[1], 0) + 1
    return max(counts, key=counts.get)


class TestEquivalence:
    """The paper's core correctness property: both systems agree."""

    @pytest.mark.parametrize("name", list(ALL_QUERIES))
    def test_indexed_equals_vanilla(self, world, name):
        _session, dataset, vanilla, indexed = world
        kind = ALL_QUERIES[name][1]
        params = (
            dataset.person_ids()[::101] if kind == "person"
            else dataset.message_ids()[::397]
        )
        for param in params[:3]:
            expected = sorted(map(tuple, run_query(vanilla, name, param)))
            actual = sorted(map(tuple, run_query(indexed, name, param)))
            assert actual == expected, f"{name} diverged for parameter {param}"

    @pytest.mark.parametrize("name", list(ALL_QUERIES))
    def test_missing_parameter_yields_empty(self, world, name):
        _session, _dataset, vanilla, indexed = world
        assert run_query(vanilla, name, -1) == []
        assert run_query(indexed, name, -1) == []


class TestOracles:
    """Spot-check query semantics against plain-Python computation."""

    def test_sq1_profile(self, world):
        _s, dataset, _v, indexed = world
        person = dataset.persons[10]
        row = sq1(indexed, person[0])[0]
        assert row["first_name"] == person[1]
        assert row["last_name"] == person[2]
        assert row["city_id"] == person[8]

    def test_sq2_recent_messages(self, world):
        _s, dataset, _v, indexed = world
        pid = busiest_person(dataset)
        rows = sq2(indexed, pid, limit=5)
        mine = sorted(
            (m for m in dataset.messages if m[1] == pid),
            key=lambda m: (m[2], m[0]),
            reverse=True,
        )
        assert [r["id"] for r in rows] == [m[0] for m in mine[:5]]

    def test_sq3_friends(self, world):
        _s, dataset, _v, indexed = world
        pid = dataset.knows[0][0]
        rows = sq3(indexed, pid)
        expected_friends = {b for a, b, _ts in dataset.knows if a == pid}
        assert {r["friend_id"] for r in rows} == expected_friends
        dates = [r["friendship_date"] for r in rows]
        assert dates == sorted(dates, reverse=True)

    def test_sq4_content(self, world):
        _s, dataset, _v, indexed = world
        message = dataset.messages[17]
        row = sq4(indexed, message[0])[0]
        assert row["content"] == message[3]
        assert row["creation_date"] == message[2]

    def test_sq5_fans(self, world):
        _s, dataset, _v, indexed = world
        liked: dict[int, int] = {}
        for _p, m, _ts in dataset.likes:
            liked[m] = liked.get(m, 0) + 1
        mid = max(liked, key=liked.get)
        rows = sq5(indexed, mid)
        expected_fans = {p for p, m, _ts in dataset.likes if m == mid}
        assert {r["fan_id"] for r in rows} == expected_fans

    def test_sq6_forum(self, world):
        _s, dataset, _v, indexed = world
        post = next(m for m in dataset.messages if m[5])
        rows = sq6(indexed, post[0])
        assert len(rows) == 1
        forum = next(f for f in dataset.forums if f[0] == post[6])
        assert rows[0]["title"] == forum[1]
        members = sum(1 for fm in dataset.forum_members if fm[0] == forum[0])
        assert rows[0]["num_members"] == members

    def test_sq6_on_comment_is_empty(self, world):
        _s, dataset, _v, indexed = world
        comment = next((m for m in dataset.messages if not m[5]), None)
        if comment is None:
            pytest.skip("dataset has no comments")
        assert sq6(indexed, comment[0]) == []

    def test_sq7_replies(self, world):
        _s, dataset, _v, indexed = world
        reply_counts: dict[int, int] = {}
        for m in dataset.messages:
            if m[7] is not None:
                reply_counts[m[7]] = reply_counts.get(m[7], 0) + 1
        if not reply_counts:
            pytest.skip("dataset has no replies")
        mid = max(reply_counts, key=reply_counts.get)
        rows = sq7(indexed, mid)
        assert len(rows) == reply_counts[mid]
        expected = {m[0] for m in dataset.messages if m[7] == mid}
        assert {r["reply_id"] for r in rows} == expected


class TestIndexUsage:
    def test_indexed_queries_use_index_operators(self, world):
        _s, dataset, _v, indexed = world
        from repro.sql.functions import col

        plan = (
            indexed.person.filter(col("id") == dataset.person_ids()[0]).explain()
        )
        assert "IndexLookup" in plan

    def test_sq5_does_not_use_index_on_likes(self, world):
        """The likes scan dominates SQ5 and has no index (the paper's
        'Q5 cannot make use of the index')."""
        _s, _dataset, _v, indexed = world
        assert not indexed.likes.explain().count("IndexedScan")


class TestUpdatesVisibleToQueries:
    def test_appended_message_appears_in_sq2(self, world):
        session, dataset, _v, indexed = world
        pid = dataset.person_ids()[0]
        new_message_id = max(dataset.message_ids()) + 777
        fresh = indexed.with_appended(
            messages=[
                (
                    new_message_id,
                    pid,
                    99_999_999_999_999,
                    "hot off the stream",
                    18,
                    True,
                    dataset.forums[0][0],
                    None,
                    "1.2.3.4",
                    "Firefox",
                )
            ]
        )
        rows = sq2(fresh, pid, limit=1)
        assert rows[0]["id"] == new_message_id
        # The old context still answers from its version.
        old_rows = sq2(indexed, pid, limit=1)
        assert not old_rows or old_rows[0]["id"] != new_message_id
