"""Tests for the SNB update stream generator."""

from __future__ import annotations

import pytest

from repro.snb import generate, update_stream
from repro.snb.schema import KNOWS_SCHEMA, MESSAGE_SCHEMA, PERSON_SCHEMA


@pytest.fixture(scope="module")
def dataset():
    return generate(scale_factor=0.2, seed=9)


class TestUpdateStream:
    def test_deterministic(self, dataset):
        a = [b.total_rows() for b in update_stream(dataset, 5, 50, seed=1)]
        b = [b.total_rows() for b in update_stream(dataset, 5, 50, seed=1)]
        assert a == b

    def test_batch_count_and_size(self, dataset):
        batches = list(update_stream(dataset, 4, 100))
        assert len(batches) == 4
        # Each knows draw emits a symmetric edge pair, so batches hold
        # between rows_per_batch and 2x rows_per_batch rows.
        assert all(100 <= b.total_rows() <= 200 for b in batches)
        assert [b.sequence for b in batches] == [0, 1, 2, 3]

    def test_rows_validate_against_schemas(self, dataset):
        for batch in update_stream(dataset, 3, 60):
            for row in batch.persons:
                PERSON_SCHEMA.validate_row(row)
            for row in batch.knows:
                KNOWS_SCHEMA.validate_row(row)
            for row in batch.messages:
                MESSAGE_SCHEMA.validate_row(row)

    def test_new_ids_extend_id_spaces(self, dataset):
        max_person = max(dataset.person_ids())
        max_message = max(dataset.message_ids())
        new_person_ids = set()
        new_message_ids = set()
        for batch in update_stream(dataset, 5, 100):
            new_person_ids.update(p[0] for p in batch.persons)
            new_message_ids.update(m[0] for m in batch.messages)
        assert all(p > max_person for p in new_person_ids)
        assert all(m > max_message for m in new_message_ids)
        assert len(new_person_ids) > 0 and len(new_message_ids) > 0

    def test_knows_edges_are_symmetric_pairs(self, dataset):
        for batch in update_stream(dataset, 2, 80):
            edges = {(a, b) for a, b, _ts in batch.knows}
            assert all((b, a) in edges for a, b in edges)

    def test_messages_reference_known_or_new_ids(self, dataset):
        known_persons = set(dataset.person_ids())
        known_messages = set(dataset.message_ids())
        for batch in update_stream(dataset, 5, 100):
            known_persons.update(p[0] for p in batch.persons)
            for m in batch.messages:
                assert m[1] in known_persons
                if m[7] is not None:
                    assert m[7] in known_messages
                known_messages.add(m[0])

    def test_fraction_validation(self, dataset):
        with pytest.raises(ValueError):
            list(update_stream(dataset, 1, 10, person_fraction=0.9, knows_fraction=0.5))

    def test_stream_time_is_monotonic(self, dataset):
        last = 0
        for batch in update_stream(dataset, 3, 50):
            for m in batch.messages:
                assert m[2] >= last
                last = m[2]
