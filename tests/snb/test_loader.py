"""Tests for SNB loading into vanilla / indexed contexts."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import enable_indexing
from repro.snb import generate, load_indexed, load_vanilla, update_stream
from repro.sql.session import Session


@pytest.fixture(scope="module")
def world():
    session = Session(
        Config(
            executor_threads=2,
            shuffle_partitions=4,
            default_parallelism=2,
            batch_size_bytes=256 * 1024,
        )
    )
    enable_indexing(session)
    dataset = generate(scale_factor=0.2, seed=21)
    yield session, dataset
    session.stop()


class TestLoadVanilla:
    def test_tables_cached_and_complete(self, world):
        session, dataset = world
        ctx = load_vanilla(session, dataset)
        assert not ctx.indexed
        assert ctx.person.is_cached
        assert ctx.person.count() == len(dataset.persons)
        assert ctx.knows.count() == len(dataset.knows)
        assert ctx.message_by_id.count() == len(dataset.messages)
        # all three message views are the SAME cached frame
        assert ctx.message_by_creator is ctx.message_by_id is ctx.message_by_reply


class TestLoadIndexed:
    def test_indexes_built_with_right_keys(self, world):
        session, dataset = world
        ctx = load_indexed(session, dataset)
        assert ctx.indexed
        assert ctx.person_idx.key_column == "id"
        assert ctx.knows_idx.key_column == "person1_id"
        assert ctx.message_by_creator_idx.key_column == "creator_id"
        assert ctx.message_by_id_idx.key_column == "id"
        assert ctx.message_by_reply_idx.key_column == "reply_of_id"
        assert ctx.person_idx.count() == len(dataset.persons)

    def test_forum_tables_never_indexed(self, world):
        session, dataset = world
        ctx = load_indexed(session, dataset)
        assert "IndexedScan" not in ctx.forum.explain()
        assert "IndexedScan" not in ctx.likes.explain()


class TestWithAppended:
    def test_indexed_append_creates_new_versions(self, world):
        session, dataset = world
        ctx = load_indexed(session, dataset)
        batch = next(iter(update_stream(dataset, 1, 60)))
        fresh = ctx.with_appended(
            persons=batch.persons, knows=batch.knows, messages=batch.messages
        )
        assert fresh.person_idx.count() == ctx.person_idx.count() + len(batch.persons)
        assert fresh.knows_idx.count() == ctx.knows_idx.count() + len(batch.knows)
        # all three message indexes advanced together
        assert (
            fresh.message_by_id_idx.count()
            == fresh.message_by_creator_idx.count()
            == fresh.message_by_reply_idx.count()
            == ctx.message_by_id_idx.count() + len(batch.messages)
        )
        # the old context is frozen at its version
        assert ctx.person_idx.count() == len(dataset.persons)

    def test_vanilla_append_rebuilds_cache(self, world):
        session, dataset = world
        ctx = load_vanilla(session, dataset)
        batch = next(iter(update_stream(dataset, 1, 60)))
        fresh = ctx.with_appended(
            persons=batch.persons, knows=batch.knows, messages=batch.messages
        )
        assert fresh.person.count() == ctx.person.count() + len(batch.persons)
        assert fresh.person is not ctx.person  # a re-cached frame

    def test_empty_batch_is_noop_shape(self, world):
        session, dataset = world
        ctx = load_indexed(session, dataset)
        fresh = ctx.with_appended()
        assert fresh.person_idx.count() == ctx.person_idx.count()
