"""Adaptive-vs-static differential: SNB short reads must be invariant.

Two sessions run the whole SNB query suite over the same generated
world: one with the statistics/adaptivity layer fully on (zone maps +
adaptive exchange), one with both knobs off. Every query must return
identical rows on both — pruning and runtime replanning are pure
execution-strategy changes.
"""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import enable_indexing
from repro.snb import ALL_QUERIES, generate, load_indexed, run_query
from repro.sql.session import Session


def make_session(enabled: bool) -> Session:
    session = Session(
        Config(
            executor_threads=2,
            shuffle_partitions=4,
            default_parallelism=2,
            batch_size_bytes=8 * 1024,  # several batches per partition
            zone_maps_enabled=enabled,
            adaptive_enabled=enabled,
        )
    )
    enable_indexing(session)
    return session


@pytest.fixture(scope="module")
def worlds():
    dataset = generate(scale_factor=0.2, seed=11)
    adaptive_session = make_session(True)
    static_session = make_session(False)
    adaptive = load_indexed(adaptive_session, dataset)
    static = load_indexed(static_session, dataset)
    yield dataset, adaptive, static
    adaptive_session.stop()
    static_session.stop()


@pytest.mark.parametrize("name", list(ALL_QUERIES))
def test_adaptive_equals_static(worlds, name):
    dataset, adaptive, static = worlds
    kind = ALL_QUERIES[name][1]
    params = (
        dataset.person_ids()[::61] if kind == "person"
        else dataset.message_ids()[::211]
    )
    for param in params[:3]:
        expected = sorted(map(tuple, run_query(static, name, param)))
        actual = sorted(map(tuple, run_query(adaptive, name, param)))
        assert actual == expected, f"{name} diverged for parameter {param}"


def test_updates_visible_on_both(worlds):
    dataset, adaptive, static = worlds
    pid = dataset.person_ids()[0]
    new_id = max(dataset.message_ids()) + 555
    message = (
        new_id, pid, 88_888_888_888_888, "differential", 12, True,
        dataset.forums[0][0], None, "9.9.9.9", "Lynx",
    )
    fresh_adaptive = adaptive.with_appended(messages=[message])
    fresh_static = static.with_appended(messages=[message])
    got_a = sorted(map(tuple, run_query(fresh_adaptive, "SQ2", pid)))
    got_s = sorted(map(tuple, run_query(fresh_static, "SQ2", pid)))
    assert got_a == got_s
    assert any(new_id in row for row in got_a)
