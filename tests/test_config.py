"""Tests for engine configuration."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.errors import CapacityError


class TestConfig:
    def test_defaults_match_paper_geometry(self):
        config = Config()
        assert config.batch_size_bytes == 4 * 1024 * 1024  # paper: 4 MB batches
        assert config.max_row_bytes == 1024  # paper: rows up to 1 KB

    def test_with_options_returns_modified_copy(self):
        base = Config()
        derived = base.with_options(shuffle_partitions=16)
        assert derived.shuffle_partitions == 16
        assert base.shuffle_partitions == 8  # original untouched

    def test_rejects_invalid_parallelism(self):
        with pytest.raises(ValueError):
            Config(shuffle_partitions=0)
        with pytest.raises(ValueError):
            Config(executor_threads=0)
        with pytest.raises(ValueError):
            Config(default_parallelism=-1)

    def test_rejects_row_larger_than_batch(self):
        with pytest.raises(CapacityError):
            Config(batch_size_bytes=2048, max_row_bytes=4096)

    def test_rejects_tiny_batches(self):
        with pytest.raises(CapacityError):
            Config(batch_size_bytes=100)

    def test_extra_options(self):
        config = Config(extra={"demo.dashboard": True})
        assert config.get("demo.dashboard") is True
        assert config.get("missing", "fallback") == "fallback"


class TestEnvFlags:
    """Shared REPRO_* boolean parsing (`_env_flag`)."""

    def test_true_spellings(self, monkeypatch):
        from repro.config import _env_flag

        for raw in ("1", "true", "TRUE", "Yes", "on", " ON "):
            monkeypatch.setenv("REPRO_X", raw)
            assert _env_flag("REPRO_X") is True, raw

    def test_false_spellings(self, monkeypatch):
        from repro.config import _env_flag

        for raw in ("0", "false", "FALSE", "No", "off", ""):
            monkeypatch.setenv("REPRO_X", raw)
            assert _env_flag("REPRO_X", default=True) is False, raw

    def test_unset_uses_default(self, monkeypatch):
        from repro.config import _env_flag

        monkeypatch.delenv("REPRO_X", raising=False)
        assert _env_flag("REPRO_X") is False
        assert _env_flag("REPRO_X", default=True) is True

    def test_typo_is_loud(self, monkeypatch):
        from repro.config import _env_flag

        monkeypatch.setenv("REPRO_X", "yse")
        with pytest.raises(ValueError, match="REPRO_X"):
            _env_flag("REPRO_X")

    def test_sanitizers_default_tracks_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZERS", "1")
        assert Config().sanitizers_enabled is True
        monkeypatch.delenv("REPRO_SANITIZERS")
        assert Config().sanitizers_enabled is False

    def test_durability_default_tracks_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DURABILITY", "on")
        assert Config().durability_enabled is True
        monkeypatch.delenv("REPRO_DURABILITY")
        assert Config().durability_enabled is False

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DURABILITY", "1")
        assert Config(durability_enabled=False).durability_enabled is False


class TestDurabilityKnobs:
    def test_defaults(self):
        config = Config()
        assert config.durability_enabled is False
        assert config.wal_fsync is True
        assert config.wal_checkpoint_bytes == 4 * 1024 * 1024

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            Config(wal_checkpoint_bytes=0)
        with pytest.raises(ValueError):
            Config(wal_checkpoint_age_s=0)
        with pytest.raises(ValueError):
            Config(checkpoint_poll_s=0)


class TestServingKnobs:
    def test_defaults(self):
        config = Config()
        assert config.serving_enabled is False
        assert config.serving_max_concurrent == 4
        assert config.serving_queue_depth == 16
        assert config.serving_memory_budget_bytes == 256 * 1024 * 1024

    def test_serving_default_tracks_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING", "1")
        assert Config().serving_enabled is True
        monkeypatch.delenv("REPRO_SERVING")
        assert Config().serving_enabled is False

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING", "1")
        assert Config(serving_enabled=False).serving_enabled is False

    def test_rejects_bad_time_and_size_knobs(self):
        from repro.errors import ConfigError

        bad = [
            dict(serving_max_concurrent=0),
            dict(serving_queue_depth=-1),
            dict(serving_queue_timeout_s=0),
            dict(serving_tenant_max_concurrent=0),
            dict(serving_default_deadline_s=-1.0),
            dict(serving_memory_budget_bytes=0),
            dict(serving_query_memory_bytes=-5),
            dict(serving_breaker_failures=0),
            dict(serving_breaker_reset_s=-0.1),
            dict(serving_scan_rows_per_s=0),
            dict(serving_min_sample_fraction=0),
            dict(serving_min_sample_fraction=1.5),
            dict(stage_timeout_s=0),
            dict(target_reduce_bytes=0),
        ]
        for overrides in bad:
            with pytest.raises(ConfigError):
                Config(**overrides)

    def test_config_error_is_a_value_error(self):
        from repro.errors import ConfigError

        with pytest.raises(ValueError):
            Config(serving_max_concurrent=0)
        assert issubclass(ConfigError, ValueError)

    def test_error_names_the_knob_and_value(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="serving_queue_timeout_s"):
            Config(serving_queue_timeout_s=-2)


class TestClusterLivenessKnobs:
    def test_defaults_are_valid(self):
        config = Config()
        assert config.heartbeat_interval > 0
        assert config.heartbeat_timeout > config.heartbeat_interval
        assert config.rpc_deadline is None
        assert config.rpc_max_retries >= 0
        assert config.fault_schedule is None

    def test_zero_interval_disables_heartbeats(self):
        assert Config(heartbeat_interval=0.0).heartbeat_interval == 0.0

    def test_rejects_bad_liveness_knobs(self):
        from repro.errors import ConfigError

        bad = [
            dict(heartbeat_interval=-0.1),
            dict(heartbeat_timeout=0.0),
            dict(heartbeat_timeout=-1.0),
            # several beats must fit inside the timeout window
            dict(heartbeat_interval=1.0, heartbeat_timeout=0.5),
            dict(heartbeat_interval=1.0, heartbeat_timeout=1.0),
            dict(rpc_deadline=0.0),
            dict(rpc_deadline=-2.0),
            dict(rpc_max_retries=-1),
        ]
        for overrides in bad:
            with pytest.raises(ConfigError):
                Config(**overrides)

    def test_error_names_the_liveness_knob(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="heartbeat_timeout"):
            Config(heartbeat_interval=1.0, heartbeat_timeout=0.25)
        with pytest.raises(ConfigError, match="rpc_deadline"):
            Config(rpc_deadline=0)

    def test_fault_schedule_travels_in_config(self):
        from repro.faults import FaultSchedule

        schedule = FaultSchedule(seed=9, hang_p=0.5)
        assert Config(fault_schedule=schedule).fault_schedule is schedule
