"""Tests for engine configuration."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.errors import CapacityError


class TestConfig:
    def test_defaults_match_paper_geometry(self):
        config = Config()
        assert config.batch_size_bytes == 4 * 1024 * 1024  # paper: 4 MB batches
        assert config.max_row_bytes == 1024  # paper: rows up to 1 KB

    def test_with_options_returns_modified_copy(self):
        base = Config()
        derived = base.with_options(shuffle_partitions=16)
        assert derived.shuffle_partitions == 16
        assert base.shuffle_partitions == 8  # original untouched

    def test_rejects_invalid_parallelism(self):
        with pytest.raises(ValueError):
            Config(shuffle_partitions=0)
        with pytest.raises(ValueError):
            Config(executor_threads=0)
        with pytest.raises(ValueError):
            Config(default_parallelism=-1)

    def test_rejects_row_larger_than_batch(self):
        with pytest.raises(CapacityError):
            Config(batch_size_bytes=2048, max_row_bytes=4096)

    def test_rejects_tiny_batches(self):
        with pytest.raises(CapacityError):
            Config(batch_size_bytes=100)

    def test_extra_options(self):
        config = Config(extra={"demo.dashboard": True})
        assert config.get("demo.dashboard") is True
        assert config.get("missing", "fallback") == "fallback"
