"""Tests for JSON-lines read/write."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.io import read_jsonl, write_jsonl

SCHEMA = [("id", "long"), ("name", "string"), ("raw", "binary")]


class TestRoundTrip:
    def test_exact_values(self, session, tmp_path):
        rows = [
            (1, "ann", b"\x00\x01"),
            (2, "", b""),  # empty string survives (unlike CSV)
            (3, None, None),
            (4, "ünïcode ✓", b"\xff" * 4),
        ]
        df = session.create_dataframe(rows, SCHEMA)
        path = str(tmp_path / "data.jsonl")
        assert write_jsonl(df, path) == 4
        back = read_jsonl(session, path, SCHEMA)
        assert sorted(map(tuple, back.collect())) == sorted(rows)

    def test_missing_keys_become_null(self, session, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text('{"id": 1}\n{"id": 2, "name": "x", "extra": true}\n')
        rows = read_jsonl(session, str(path), SCHEMA).collect()
        assert rows[0]["name"] is None
        assert rows[1]["name"] == "x"

    def test_blank_lines_skipped(self, session, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"id": 1}\n\n{"id": 2}\n')
        assert read_jsonl(session, str(path), [("id", "long")]).count() == 2


class TestErrors:
    def test_invalid_json(self, session, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(SchemaError, match="invalid JSON"):
            read_jsonl(session, str(path), SCHEMA)

    def test_non_object_line(self, session, tmp_path):
        path = tmp_path / "bad2.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(SchemaError, match="expected an object"):
            read_jsonl(session, str(path), SCHEMA)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(-(2**40), 2**40),
            st.one_of(st.none(), st.text(max_size=20)),
        ),
        max_size=30,
    )
)
def test_jsonl_roundtrip_property(session, tmp_path, rows):
    schema = [("k", "long"), ("s", "string")]
    df = session.create_dataframe(rows, schema)
    path = str(tmp_path / "prop.jsonl")
    write_jsonl(df, path)
    back = read_jsonl(session, path, schema)
    assert sorted(map(tuple, back.collect()), key=repr) == sorted(
        (tuple(r) for r in rows), key=repr
    )
