"""Tests for SNB dataset persistence."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import SchemaError
from repro.io import load_dataset, save_dataset
from repro.snb import generate


@pytest.fixture(scope="module")
def dataset():
    return generate(scale_factor=0.1, seed=13)


class TestSaveLoad:
    def test_roundtrip_identical(self, dataset, tmp_path):
        directory = str(tmp_path / "snb")
        save_dataset(dataset, directory)
        back = load_dataset(directory)
        assert back.persons == dataset.persons
        assert back.knows == dataset.knows
        assert back.messages == dataset.messages
        assert back.forums == dataset.forums
        assert back.forum_members == dataset.forum_members
        assert back.likes == dataset.likes
        assert back.scale_factor == dataset.scale_factor
        assert back.seed == dataset.seed

    def test_one_csv_per_table_plus_manifest(self, dataset, tmp_path):
        directory = tmp_path / "snb"
        save_dataset(dataset, str(directory))
        files = sorted(os.listdir(directory))
        assert files == [
            "forum.csv", "forum_member.csv", "knows.csv", "likes.csv",
            "manifest.json", "message.csv", "person.csv",
        ]

    def test_loaded_dataset_loads_into_session(self, dataset, tmp_path, indexed_session):
        from repro.snb import load_indexed, sq1

        directory = str(tmp_path / "snb")
        save_dataset(dataset, directory)
        back = load_dataset(directory)
        ctx = load_indexed(indexed_session, back)
        pid = back.person_ids()[0]
        assert len(sq1(ctx, pid)) == 1


class TestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SchemaError, match="manifest"):
            load_dataset(str(tmp_path))

    def test_size_mismatch_detected(self, dataset, tmp_path):
        directory = tmp_path / "snb"
        save_dataset(dataset, str(directory))
        manifest_path = directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["sizes"]["person"] += 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SchemaError, match="sizes"):
            load_dataset(str(directory))

    def test_header_mismatch_detected(self, dataset, tmp_path):
        directory = tmp_path / "snb"
        save_dataset(dataset, str(directory))
        person = directory / "person.csv"
        content = person.read_text().splitlines()
        content[0] = "wrong,header"
        person.write_text("\n".join(content))
        with pytest.raises(SchemaError, match="header"):
            load_dataset(str(directory))
