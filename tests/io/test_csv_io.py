"""Tests for CSV read/write."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.io import read_csv, write_csv

SCHEMA = [("id", "long"), ("name", "string"), ("score", "double"), ("ok", "boolean")]
ROWS = [
    (1, "ann", 1.5, True),
    (2, "bob, jr.", -2.0, False),  # comma forces quoting
    (3, None, None, None),
    (4, 'quote "me"', 0.0, True),
]


@pytest.fixture()
def csv_file(session, tmp_path):
    df = session.create_dataframe(ROWS, SCHEMA)
    path = str(tmp_path / "data.csv")
    assert write_csv(df, path) == 4
    return path


class TestRoundTrip:
    def test_values_survive(self, session, csv_file):
        back = read_csv(session, csv_file, SCHEMA)
        assert sorted(map(tuple, back.collect()), key=repr) == sorted(
            ROWS, key=repr
        )

    def test_types_restored(self, session, csv_file):
        row = read_csv(session, csv_file, SCHEMA).order_by("id").first()
        assert isinstance(row["id"], int)
        assert isinstance(row["score"], float)
        assert row["ok"] is True

    def test_quoting_and_commas(self, session, csv_file):
        rows = {r["id"]: r["name"] for r in read_csv(session, csv_file, SCHEMA).collect()}
        assert rows[2] == "bob, jr."
        assert rows[4] == 'quote "me"'

    def test_nulls_read_back(self, session, csv_file):
        row = next(
            r for r in read_csv(session, csv_file, SCHEMA).collect() if r["id"] == 3
        )
        assert row["name"] is None and row["score"] is None and row["ok"] is None

    def test_column_subset_by_schema(self, session, csv_file):
        partial = read_csv(session, csv_file, [("name", "string"), ("id", "long")])
        assert partial.columns == ["name", "id"]
        assert partial.order_by("id").first()["name"] == "ann"


class TestErrors:
    def test_empty_file(self, session, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="header"):
            read_csv(session, str(path), SCHEMA)

    def test_missing_column(self, session, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,name\n1,x\n")
        with pytest.raises(SchemaError, match="missing"):
            read_csv(session, str(path), SCHEMA)

    def test_unparsable_value(self, session, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("id\nnot-a-number\n")
        with pytest.raises(SchemaError, match=":2"):
            read_csv(session, str(path), [("id", "long")])

    def test_bad_boolean(self, session, tmp_path):
        path = tmp_path / "bad3.csv"
        path.write_text("ok\nmaybe\n")
        with pytest.raises(SchemaError):
            read_csv(session, str(path), [("ok", "boolean")])
