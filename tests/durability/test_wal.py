"""Unit tests for the write-ahead log: framing, torn tails, faults."""

from __future__ import annotations

import struct

import pytest

from repro.durability.wal import (
    RT_OFFSETS,
    RT_ROW,
    WALWriter,
    encode_record,
    latest_offsets,
    replay_rows,
    replay_wal,
)
from repro.errors import DurabilityError, SimulatedCrash
from repro.faults import FaultInjector, FaultProfile


def rows_in(path):
    return replay_rows(replay_wal(path))


class TestRoundTrip:
    def test_append_and_replay(self, tmp_path):
        path = tmp_path / "p.wal"
        writer = WALWriter(path)
        writer.append_rows([b"row-a", b"row-b"])
        writer.append_rows([b"row-c"])
        writer.close()
        assert rows_in(path) == [b"row-a", b"row-b", b"row-c"]

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert replay_wal(tmp_path / "nope.wal") == []

    def test_size_tracks_bytes(self, tmp_path):
        writer = WALWriter(tmp_path / "p.wal")
        assert writer.size_bytes() == 0
        writer.append_rows([b"abc"])
        assert writer.size_bytes() == (tmp_path / "p.wal").stat().st_size
        writer.close()

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = tmp_path / "p.wal"
        first = WALWriter(path)
        first.append_rows([b"one"])
        first.close()
        second = WALWriter(path)
        second.append_rows([b"two"])
        second.close()
        assert rows_in(path) == [b"one", b"two"]


class TestTornTail:
    def test_partial_frame_is_truncated(self, tmp_path):
        path = tmp_path / "p.wal"
        writer = WALWriter(path)
        writer.append_rows([b"good"])
        writer.close()
        intact = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(encode_record(RT_ROW, b"torn-victim")[:7])  # mid-header
        assert rows_in(path) == [b"good"]
        assert path.stat().st_size == intact  # physically truncated

    def test_bad_crc_stops_replay(self, tmp_path):
        path = tmp_path / "p.wal"
        writer = WALWriter(path)
        writer.append_rows([b"good", b"soon-bad"])
        writer.close()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        assert rows_in(path) == [b"good"]

    def test_truncation_then_append_stays_clean(self, tmp_path):
        path = tmp_path / "p.wal"
        writer = WALWriter(path)
        writer.append_rows([b"good"])
        writer.close()
        with open(path, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef")  # garbage tail
        replay_wal(path)  # truncates
        writer = WALWriter(path)
        writer.append_rows([b"after"])
        writer.close()
        assert rows_in(path) == [b"good", b"after"]

    def test_zero_length_frame_is_torn(self, tmp_path):
        path = tmp_path / "p.wal"
        with open(path, "wb") as fh:
            fh.write(struct.pack("<II", 0, 0))
        assert replay_wal(path) == []
        assert path.stat().st_size == 0


class TestInjectedFaults:
    def test_torn_write_leaves_prefix_and_raises_crash(self, tmp_path):
        path = tmp_path / "p.wal"
        clean = WALWriter(path)
        clean.append_rows([b"committed"])
        clean.close()
        injector = FaultInjector(
            FaultProfile(seed=7, disk_torn_write_p=1.0, max_fires_per_site=1)
        )
        writer = WALWriter(path, injector)
        with pytest.raises(SimulatedCrash):
            writer.append_rows([b"torn"])
        # Torn bytes stay on disk (that's the point) but replay drops them.
        assert path.stat().st_size > 0
        assert rows_in(path) == [b"committed"]

    def test_torn_write_cut_is_seeded(self, tmp_path):
        sizes = []
        for run in range(2):
            path = tmp_path / f"p{run}.wal"
            injector = FaultInjector(
                FaultProfile(seed=42, disk_torn_write_p=1.0, max_fires_per_site=1)
            )
            writer = WALWriter(path, injector)
            with pytest.raises(SimulatedCrash):
                writer.append_rows([b"x" * 100])
            sizes.append(path.stat().st_size)
        assert sizes[0] == sizes[1]  # same seed → same cut point

    def test_fsync_failure_rolls_back_so_retry_cannot_double_log(self, tmp_path):
        path = tmp_path / "p.wal"
        injector = FaultInjector(
            FaultProfile(seed=3, disk_fsync_p=1.0, max_fires_per_site=1)
        )
        writer = WALWriter(path, injector)
        with pytest.raises(DurabilityError):
            writer.append_rows([b"row"])
        assert path.stat().st_size == 0  # undone
        writer.append_rows([b"row"])  # caller-level retry
        writer.close()
        assert rows_in(path) == [b"row"]  # exactly once

    def test_short_read_is_retried(self, tmp_path):
        path = tmp_path / "p.wal"
        writer = WALWriter(path)
        writer.append_rows([b"row"])
        writer.close()
        injector = FaultInjector(
            FaultProfile(seed=5, disk_short_read_p=1.0, max_fires_per_site=2)
        )
        assert replay_rows(replay_wal(path, injector)) == [b"row"]

    def test_short_read_exhaustion_raises_transient_error(self, tmp_path):
        path = tmp_path / "p.wal"
        writer = WALWriter(path)
        writer.append_rows([b"row"])
        writer.close()
        injector = FaultInjector(FaultProfile(seed=5, disk_short_read_p=1.0))
        with pytest.raises(DurabilityError):
            replay_wal(path, injector)
        # Crucially the data was NOT truncated by the failed read.
        assert rows_in(path) == [b"row"]


class TestOffsetMarkers:
    def test_markers_interleave_with_rows(self, tmp_path):
        path = tmp_path / "meta.wal"
        writer = WALWriter(path)
        writer.append_rows([b"r1"])
        writer.append_offsets("g", "topic", {0: 5, 1: 2})
        writer.append_rows([b"r2"])
        writer.append_offsets("g", "topic", {0: 9})
        writer.close()
        records = replay_wal(path)
        assert replay_rows(records) == [b"r1", b"r2"]
        assert latest_offsets(records) == {("g", "topic"): {0: 9, 1: 2}}

    def test_fold_is_advance_only(self, tmp_path):
        path = tmp_path / "meta.wal"
        writer = WALWriter(path)
        writer.append_offsets("g", "t", {0: 9})
        writer.append_offsets("g", "t", {0: 4})  # laggy writer, stale marker
        writer.close()
        assert latest_offsets(replay_wal(path)) == {("g", "t"): {0: 9}}

    def test_fold_into_existing_map(self, tmp_path):
        path = tmp_path / "meta.wal"
        writer = WALWriter(path)
        writer.append_offsets("g", "t", {0: 4, 1: 7})
        writer.close()
        base = {("g", "t"): {0: 6}}
        merged = latest_offsets(replay_wal(path), into=base)
        assert merged is base
        assert merged == {("g", "t"): {0: 6, 1: 7}}

    def test_record_types_are_distinct(self):
        assert RT_ROW != RT_OFFSETS
