"""Tests for DurableStore: layout, checkpoint commit protocol, GC."""

from __future__ import annotations

import pytest

from repro.core import create_index
from repro.durability import CURRENT_FILE, DurableStore
from repro.errors import DurabilityError, RecoveryError
from repro.faults import FaultInjector, FaultProfile

SCHEMA = [("id", "long"), ("name", "string")]


def build(session, rows, name="t"):
    df = session.create_dataframe(rows, SCHEMA)
    return create_index(df, "id", durable_name=name)


def some_rows(n, base=0):
    return [(base + i, f"v{base + i}") for i in range(n)]


class TestLayout:
    def test_initialize_writes_meta(self, make_session, state_dir):
        session = make_session()
        build(session, some_rows(10))
        store = session.durability.store("t")
        assert store.exists()
        meta = store.read_meta()
        assert meta["num_partitions"] == 4
        assert meta["key_ordinal"] == 0
        assert [f[0] for f in meta["schema"]] == ["id", "name"]
        assert (state_dir / "t" / "wal" / "e00000000").is_dir()

    def test_store_name_validation(self, make_session):
        session = make_session()
        for bad in ("", "../escape", ".hidden", "a/b"):
            with pytest.raises(DurabilityError):
                session.durability.store(bad)

    def test_rebinding_existing_store_is_refused(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(5))
        with pytest.raises(DurabilityError):
            session.durability.make_durable(indexed, "t")

    def test_wal_grows_with_appends(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(10))
        store = session.durability.store("t")
        before = store.wal_bytes()
        indexed.append_rows(some_rows(10, base=100))
        assert store.wal_bytes() > before


class TestCheckpointCommit:
    def test_checkpoint_swings_current_and_retires_wal(self, make_session, state_dir):
        session = make_session()
        build(session, some_rows(20))
        store = session.durability.store("t")
        assert store.current_checkpoint_epoch() is None
        epoch = store.checkpoint()
        assert store.current_checkpoint_epoch() == epoch
        assert store.checkpoint_epochs() == [epoch]
        assert store.wal_epochs() == [epoch]  # older epochs deleted
        assert store.wal_bytes() == 0  # fresh segments
        assert (state_dir / "t" / CURRENT_FILE).exists()

    def test_appends_continue_after_checkpoint(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(10))
        store = session.durability.store("t")
        store.checkpoint()
        indexed.append_rows(some_rows(10, base=50))
        assert store.wal_bytes() > 0

    def test_second_checkpoint_supersedes_first(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(10))
        store = session.durability.store("t")
        first = store.checkpoint()
        indexed.append_rows(some_rows(5, base=50))
        second = store.checkpoint()
        assert second > first
        assert store.checkpoint_epochs() == [second]
        assert store.wal_epochs() == [second]

    def test_failed_checkpoint_burns_its_epoch(self, make_session):
        """A transient failure mid-checkpoint must not let a retry mix
        rotated-and-already-exported rows back into a live segment."""
        session = make_session()
        build(session, some_rows(30))
        store = session.durability.store("t")
        # Arm the fault after the load so it hits the checkpoint itself.
        store._injector = FaultInjector(
            FaultProfile(seed=11, disk_fsync_p=1.0, max_fires_per_site=1)
        )
        with pytest.raises(DurabilityError):
            store.checkpoint()
        assert store.current_checkpoint_epoch() is None  # not committed
        epoch = store.checkpoint()  # retry works, on a fresh epoch
        assert epoch == 2
        recovered = make_session().durability.recover("t")
        assert recovered.count() == 30

    def test_checkpoint_is_recoverable_without_wal_replay(self, make_session):
        session = make_session()
        build(session, some_rows(25))
        session.durability.store("t").checkpoint()
        recovered = make_session().durability.recover("t")
        assert recovered.count() == 25
        assert recovered.get_rows_local(7) == [(7, "v7")]


class TestCorruptionDetection:
    def test_damaged_current_raises_recovery_error(self, make_session, state_dir):
        session = make_session()
        build(session, some_rows(10))
        session.durability.store("t").checkpoint()
        (state_dir / "t" / CURRENT_FILE).write_bytes(b"garbage-not-a-seal")
        with pytest.raises(RecoveryError):
            make_session().durability.recover("t")

    def test_dangling_current_raises_recovery_error(self, make_session, state_dir):
        import shutil

        session = make_session()
        build(session, some_rows(10))
        epoch = session.durability.store("t").checkpoint()
        shutil.rmtree(state_dir / "t" / "checkpoints" / f"ckpt-{epoch:08d}")
        with pytest.raises(RecoveryError):
            make_session().durability.recover("t")

    def test_bitrot_in_committed_blob_raises_recovery_error(
        self, make_session, state_dir
    ):
        session = make_session()
        build(session, some_rows(10))
        epoch = session.durability.store("t").checkpoint()
        blob = state_dir / "t" / "checkpoints" / f"ckpt-{epoch:08d}" / "p00000.bin"
        data = bytearray(blob.read_bytes())
        data[-1] ^= 0xFF
        blob.write_bytes(bytes(data))
        with pytest.raises(RecoveryError):
            make_session().durability.recover("t")

    def test_recovery_error_is_not_absorbable(self):
        from repro.errors import ReproError

        assert not issubclass(RecoveryError, ReproError)


class TestOffsets:
    def test_log_offsets_survive_checkpoint(self, make_session):
        session = make_session()
        build(session, some_rows(5))
        store = session.durability.store("t")
        store.log_offsets("g", "topic", {0: 7})
        store.checkpoint()
        store.log_offsets("g", "topic", {0: 9, 1: 3})
        recovered_store = make_session()
        recovered_store.durability.recover("t")
        offsets = recovered_store.durability.store("t").offsets()
        assert offsets == {("g", "topic"): {0: 9, 1: 3}}

    def test_in_memory_fold_is_advance_only(self, make_session):
        session = make_session()
        build(session, some_rows(5))
        store = session.durability.store("t")
        store.log_offsets("g", "t1", {0: 9})
        store.log_offsets("g", "t1", {0: 4})
        assert store.offsets() == {("g", "t1"): {0: 9}}


class TestBackgroundCheckpointer:
    def test_size_threshold_triggers_checkpoint(self, make_session):
        import time

        session = make_session(
            wal_checkpoint_bytes=256, checkpoint_poll_s=0.005
        )
        indexed = build(session, some_rows(30))
        store = session.durability.store("t")
        indexed.append_rows(some_rows(30, base=100))
        deadline = time.monotonic() + 5.0
        while store.current_checkpoint_epoch() is None:
            assert time.monotonic() < deadline, "checkpointer never fired"
            time.sleep(0.01)
        assert make_session().durability.recover("t").count() == 60

    def test_age_threshold_triggers_checkpoint(self, make_session):
        import time

        session = make_session(
            wal_checkpoint_age_s=0.02, checkpoint_poll_s=0.005
        )
        build(session, some_rows(10))
        store = session.durability.store("t")
        deadline = time.monotonic() + 5.0
        while store.current_checkpoint_epoch() is None:
            assert time.monotonic() < deadline, "checkpointer never fired"
            time.sleep(0.01)

    def test_idle_store_is_not_checkpointed(self, make_session):
        import time

        session = make_session(
            wal_checkpoint_age_s=0.02, checkpoint_poll_s=0.005
        )
        build(session, some_rows(10))
        store = session.durability.store("t")
        deadline = time.monotonic() + 5.0
        while store.current_checkpoint_epoch() is None:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        first = store.current_checkpoint_epoch()
        time.sleep(0.1)  # several age windows with an empty WAL
        assert store.current_checkpoint_epoch() == first
