"""Fixtures for the durability suite: sessions with on-disk state."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.sql.session import Session


def durable_config(state_dir, **overrides) -> Config:
    """Small deterministic config with durability on, rooted at
    ``state_dir``. Checkpoint thresholds default high enough that only
    explicit ``checkpoint()`` calls cut one."""
    base = dict(
        executor_threads=2,
        shuffle_partitions=4,
        default_parallelism=2,
        batch_size_bytes=64 * 1024,
        durability_enabled=True,
        durability_dir=str(state_dir),
    )
    base.update(overrides)
    return Config(**base)


@pytest.fixture()
def state_dir(tmp_path):
    return tmp_path / "state"


@pytest.fixture()
def make_session(state_dir):
    """Factory for durable sessions sharing one state root — calling it
    twice models a process restart over the same disk. Crashed sessions
    are still stopped on teardown (closing leaked WAL handles)."""
    created: list[Session] = []

    def factory(**overrides) -> Session:
        session = Session(durable_config(state_dir, **overrides))
        created.append(session)
        return session

    yield factory
    for session in created:
        session.stop()
