"""Crash-recovery chaos: seeded kill/restart, verified differentially.

The harness runs a fixed append workload (8 micro-batches with unique
keys, a manual checkpoint after batches 2 and 5) against a durable
store while exactly one seeded crash site is armed. Wherever the
simulated process death lands — before the WAL write, after it, mid-
checkpoint, post-checkpoint-commit, or inside a torn ``write(2)`` —
a fresh session recovers the store and the result is checked against
the uninterrupted reference run:

* **no committed row lost** — every row of every acknowledged batch is
  present after recovery;
* **no uncommitted row resurrected** — recovered rows beyond the
  acknowledged prefix can only come from the single in-flight batch
  (``append_rows`` is atomic per partition, not across partitions, so
  a crash mid-batch may legally persist the partitions it finished);
* **no duplicates, consistent store** — counts, scans, and index
  lookups agree, and appending after recovery works and is durable.

Every (site × seed) combination replays identically: the injector
draws each site from its own seeded stream.
"""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import create_index
from repro.errors import DurabilityError, SimulatedCrash
from repro.faults import FaultProfile
from repro.sql.session import Session

SCHEMA = [("id", "long"), ("name", "string")]
NUM_BATCHES = 8
BATCH_ROWS = 10
CHECKPOINT_AFTER = {2, 5}
SEEDS = range(20)

#: site → (FaultProfile field, probability). Probabilities are tuned so
#: that across 20 seeds each site both fires at varying points of the
#: workload and, for some seeds, never fires (exercising the clean path
#: through the same differential assertions).
CRASH_SITES = {
    "crash.pre_wal": ("crash_pre_wal_p", 0.08),
    "crash.post_wal": ("crash_post_wal_p", 0.08),
    "crash.mid_checkpoint": ("crash_mid_checkpoint_p", 0.25),
    "crash.post_checkpoint": ("crash_post_checkpoint_p", 0.5),
    "disk.write.torn": ("disk_torn_write_p", 0.08),
}


def batch_rows(batch: int) -> list[tuple]:
    return [
        (batch * 1000 + i, f"b{batch}r{i}") for i in range(BATCH_ROWS)
    ]


def reference_rows(num_batches: int) -> set[tuple]:
    return {row for b in range(num_batches) for row in batch_rows(b)}


def durable_session(state_dir, profile: FaultProfile | None = None) -> Session:
    return Session(
        Config(
            executor_threads=1,
            shuffle_partitions=4,
            default_parallelism=1,
            batch_size_bytes=64 * 1024,
            durability_enabled=True,
            durability_dir=str(state_dir),
            faults=profile,
        )
    )


def run_workload(session: Session, name: str):
    """Apply the workload until completion or simulated death.

    Returns ``(acked_batches, in_flight_rows)``: the number of batches
    whose ``append_rows`` returned, and the rows of the batch that was
    mid-append when the crash hit (empty when the crash hit a
    checkpoint instead, or never hit).
    """
    df = session.create_dataframe([], SCHEMA)
    indexed = create_index(df, "id", durable_name=name)
    store = session.durability.store(name)
    acked = 0
    for batch in range(NUM_BATCHES):
        rows = batch_rows(batch)
        try:
            indexed = indexed.append_rows(rows)
        except SimulatedCrash:
            return acked, rows
        acked += 1
        if batch in CHECKPOINT_AFTER:
            try:
                store.checkpoint()
            except SimulatedCrash:
                return acked, []
            except DurabilityError:
                pass  # transient checkpoint failure; WAL still covers us
    return acked, []


@pytest.mark.parametrize("site", sorted(CRASH_SITES))
@pytest.mark.parametrize("seed", SEEDS)
def test_crash_recovery_differential(tmp_path, site, seed):
    field, probability = CRASH_SITES[site]
    profile = FaultProfile(
        seed=seed, max_fires_per_site=1, **{field: probability}
    )
    # --- incarnation 1: run under chaos until (simulated) death.
    chaos = durable_session(tmp_path / "state", profile)
    acked, in_flight = run_workload(chaos, "t")
    # Simulated process death: the session is abandoned, not stopped —
    # WAL handles stay open and nothing is flushed beyond what the
    # protocol already made durable.

    # --- incarnation 2: recover and verify against the reference.
    survivor = durable_session(tmp_path / "state")
    try:
        recovered = survivor.durability.recover("t")
        assert recovered is not None
        got = list(recovered.scan_tuples())
        got_set = set(got)
        committed = reference_rows(acked)
        # No committed row lost.
        assert committed <= got_set, (
            f"{site} seed={seed}: lost {sorted(committed - got_set)[:5]}"
        )
        # No uncommitted row resurrected (in-flight partials allowed).
        assert got_set <= committed | set(in_flight), (
            f"{site} seed={seed}: resurrected "
            f"{sorted(got_set - committed - set(in_flight))[:5]}"
        )
        # No duplicates; count/index/scan agree.
        assert len(got) == len(got_set)
        assert recovered.count() == len(got)
        for row in list(committed)[:10]:
            assert recovered.get_rows_local(row[0]) == [row]
        # Life goes on: appends after recovery are applied and durable.
        extra = [(99_000 + i, "after") for i in range(5)]
        recovered.append_rows(extra)
    finally:
        survivor.stop()

    # --- incarnation 3: the post-recovery appends survived too.
    final_session = durable_session(tmp_path / "state")
    try:
        final = final_session.durability.recover("t")
        assert set(final.scan_tuples()) == got_set | set(extra)
    finally:
        final_session.stop()
    chaos.stop()


def test_reference_run_is_complete(tmp_path):
    """The uninterrupted workload itself recovers bit-for-bit — the
    baseline the chaos assertions compare against."""
    session = durable_session(tmp_path / "state")
    acked, in_flight = run_workload(session, "t")
    assert acked == NUM_BATCHES and in_flight == []
    session.stop()
    survivor = durable_session(tmp_path / "state")
    try:
        recovered = survivor.durability.recover("t")
        assert set(recovered.scan_tuples()) == reference_rows(NUM_BATCHES)
        assert recovered.count() == NUM_BATCHES * BATCH_ROWS
    finally:
        survivor.stop()


def test_each_site_fires_for_some_seed(tmp_path):
    """Meta-check: the tuned probabilities actually exercise every
    crash point across the seed range (guards against a silent no-op
    chaos suite if sites are renamed). The clean path is covered
    separately by test_reference_run_is_complete."""
    from repro.faults import FaultInjector

    for site, (field, probability) in CRASH_SITES.items():
        fired = 0
        for seed in SEEDS:
            profile = FaultProfile(
                seed=seed, max_fires_per_site=1, **{field: probability}
            )
            injector = FaultInjector(profile)
            if any(injector.should_fire(site) for _ in range(30)):
                fired += 1
        assert fired, f"site {site} never fires across seeds {SEEDS}"
