"""Tests for RecoveryManager: restart semantics, MVCC, streaming."""

from __future__ import annotations

import pytest

from repro.core import create_index
from repro.errors import IndexError_
from repro.streaming import Broker, IndexedIngest, Producer

SCHEMA = [("id", "long"), ("name", "string")]


def build(session, rows, name="t"):
    df = session.create_dataframe(rows, SCHEMA)
    return create_index(df, "id", durable_name=name)


def some_rows(n, base=0):
    return [(base + i, f"v{base + i}") for i in range(n)]


class TestBasicRecovery:
    def test_missing_store_recovers_to_none(self, make_session):
        assert make_session().durability.recover("nothing") is None

    def test_wal_only_recovery(self, make_session):
        build(make_session(), some_rows(40))
        recovered = make_session().durability.recover("t")
        assert recovered.count() == 40
        assert sorted(recovered.scan_tuples()) == sorted(some_rows(40))

    def test_checkpoint_plus_wal_recovery(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(20))
        session.durability.store("t").checkpoint()
        indexed.append_rows(some_rows(15, base=100))
        recovered = make_session().durability.recover("t")
        assert recovered.count() == 35
        assert recovered.get_rows_local(5) == [(5, "v5")]
        assert recovered.get_rows_local(110) == [(110, "v110")]

    def test_backward_chains_survive(self, make_session):
        """Multiple rows per key come back newest-first, across the
        checkpoint/WAL boundary."""
        session = make_session()
        indexed = build(session, [(1, "oldest"), (1, "older")])
        session.durability.store("t").checkpoint()
        indexed.append_rows([(1, "newest")])
        recovered = make_session().durability.recover("t")
        assert recovered.get_rows_local(1) == [
            (1, "newest"),
            (1, "older"),
            (1, "oldest"),
        ]
        assert recovered.lookup_latest(1) == (1, "newest")

    def test_create_index_recovers_existing_store(self, make_session):
        build(make_session(), some_rows(30))
        session = make_session()
        # Same durable_name: the on-disk state wins over the (different)
        # DataFrame passed in.
        df = session.create_dataframe(some_rows(3, base=900), SCHEMA)
        recovered = create_index(df, "id", durable_name="t")
        assert recovered.count() == 30
        assert recovered.get_rows_local(900) == []

    def test_recovery_is_repeatable(self, make_session):
        build(make_session(), some_rows(25))
        first = make_session().durability.recover("t")
        second = make_session().durability.recover("t")
        assert sorted(first.scan_tuples()) == sorted(second.scan_tuples())

    def test_appends_after_recovery_are_durable(self, make_session):
        build(make_session(), some_rows(10))
        middle = make_session()
        recovered = middle.durability.recover("t")
        recovered.append_rows(some_rows(10, base=500))
        final = make_session().durability.recover("t")
        assert final.count() == 20
        assert final.get_rows_local(505) == [(505, "v505")]

    def test_queries_work_after_recovery(self, make_session):
        build(make_session(), some_rows(30))
        recovered = make_session().durability.recover("t")
        df = recovered.to_df()
        out = df.filter(df.col("id") < 5).collect()
        assert len(out) == 5


class TestEngineStateAfterRecovery:
    def test_mvcc_versions_isolate_over_recovered_store(self, make_session):
        build(make_session(), some_rows(10))
        session = make_session()
        v1 = session.durability.recover("t")
        v2 = v1.append_rows(some_rows(5, base=100))
        assert v1.count() == 10  # old handle keeps its snapshot
        assert v2.count() == 15

    def test_recovery_invalidates_block_cache(self, make_session):
        session = make_session()
        session.ctx.block_manager.put(("stale", 0), [1, 2, 3])
        build(make_session(), some_rows(5))
        session.durability.recover("t")
        stats = session.ctx.block_manager.stats.snapshot()
        assert stats["recovery_invalidations"] == 1
        assert session.ctx.block_manager.get(("stale", 0)) is None

    def test_zone_maps_rebuilt_for_pruning(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(50))
        session.durability.store("t").checkpoint()
        recovered = make_session(zone_maps_enabled=True).durability.recover("t")
        for snapshot in recovered.version.snapshots:
            assert snapshot.zone is not None
            assert snapshot.zone.rows == len(snapshot)

    def test_sanitized_recovery_reseals_batches(self, make_session):
        session = make_session(sanitizers_enabled=True)
        indexed = build(session, some_rows(40))
        session.durability.store("t").checkpoint()
        indexed.append_rows(some_rows(10, base=100))
        recovered = make_session(sanitizers_enabled=True).durability.recover("t")
        # snapshot() runs verify_seals() under sanitizers — it must hold
        # on restored batches, and appends must keep working.
        after = recovered.append_rows(some_rows(5, base=200))
        assert after.count() == 55

    def test_durable_store_plumbed_through_versioned_store(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(5))
        assert indexed.store.durable_store is session.durability.store("t")
        recovered = make_session().durability.recover("t")
        assert recovered.store.durable_store is not None


class TestDisabledByDefault:
    def test_sessions_carry_no_durability_by_default(self, tmp_path):
        from repro.config import Config
        from repro.sql.session import Session

        session = Session(Config(durability_enabled=False))
        try:
            assert session.durability is None
        finally:
            session.stop()

    def test_durable_name_requires_the_flag(self, tmp_path):
        from repro.config import Config
        from repro.sql.session import Session

        session = Session(Config(durability_enabled=False))
        try:
            df = session.create_dataframe(some_rows(3), SCHEMA)
            with pytest.raises(IndexError_):
                create_index(df, "id", durable_name="t")
        finally:
            session.stop()

    def test_no_state_dir_created_without_durable_name(
        self, make_session, state_dir
    ):
        session = make_session()
        df = session.create_dataframe(some_rows(3), SCHEMA)
        create_index(df, "id")  # durability on, but unnamed index
        assert not (state_dir / "t").exists()


class TestStreamingRecovery:
    def make_world(self, session, records):
        broker = Broker()
        broker.create_topic("rows", partitions=2)
        Producer(broker, "rows").send_all(records, key_fn=lambda r: r[0])
        return broker

    def test_committed_batches_dedupe_after_restart(self, make_session):
        records = [(100 + i, f"s{i}") for i in range(40)]
        session = make_session()
        broker = self.make_world(session, records)
        indexed = build(session, some_rows(10))
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=25)
        ingest.step()  # 25 rows applied, watermark logged, committed
        # --- process dies; restart with a fresh broker incarnation that
        # holds the same log (Kafka survives; its committed offsets for
        # our group are restored from the durable watermark).
        session2 = make_session()
        broker2 = self.make_world(session2, records)
        recovered = session2.durability.recover("t", broker=broker2)
        assert recovered.count() == 35  # 10 base + 25 applied
        ingest2 = IndexedIngest(broker2, "rows", recovered, batch_size=25)
        ingest2.drain()
        final = ingest2.current
        # Exactly once: the first 25 were not re-applied.
        assert final.count() == 50
        assert len(list(final.scan_tuples())) == len(set(final.scan_tuples()))

    def test_restored_offsets_are_advance_only_on_broker(self, make_session):
        records = [(100 + i, "x") for i in range(10)]
        session = make_session()
        broker = self.make_world(session, records)
        indexed = build(session, some_rows(2))
        ingest = IndexedIngest(broker, "rows", indexed, batch_size=50)
        ingest.drain()
        session2 = make_session()
        broker2 = self.make_world(session2, records)
        # The new broker already has *newer* commits for the group (e.g.
        # another consumer advanced it); restore must not rewind them.
        newer = {p: 99 for p in range(2)}
        broker2.commit_offsets("ingest", "rows", newer)
        session2.durability.recover("t", broker=broker2)
        assert broker2.committed_offsets("ingest", "rows") == newer
