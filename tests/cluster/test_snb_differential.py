"""SNB differential: every short-read query bit-identical across
in-process and multi-process backends, on both storage paths."""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import enable_indexing
from repro.snb import ALL_QUERIES, generate, load_indexed, load_vanilla, run_query
from repro.sql.session import Session


@pytest.fixture(scope="module")
def dataset():
    return generate(scale_factor=0.15, seed=11)


def _session(executors: int) -> Session:
    session = Session(
        Config(
            executors=executors,
            executor_threads=2,
            shuffle_partitions=4,
            default_parallelism=2,
            batch_size_bytes=256 * 1024,
        )
    )
    enable_indexing(session)
    return session


def _params(dataset, kind: str) -> list:
    ids = dataset.person_ids() if kind == "person" else dataset.message_ids()
    return ids[:: max(1, len(ids) // 2)][:2]


def _run_all(session, dataset) -> dict:
    vanilla = load_vanilla(session, dataset)
    indexed = load_indexed(session, dataset)
    results: dict = {}
    for name, (_fn, kind) in ALL_QUERIES.items():
        for param in _params(dataset, kind):
            results[("vanilla", name, param)] = sorted(
                map(tuple, run_query(vanilla, name, param))
            )
            results[("indexed", name, param)] = sorted(
                map(tuple, run_query(indexed, name, param))
            )
    return results


@pytest.fixture(scope="module")
def local_results(dataset):
    session = _session(0)
    try:
        return _run_all(session, dataset)
    finally:
        session.stop()


@pytest.mark.parametrize("executors", [2, 4])
def test_snb_bit_identical(dataset, local_results, executors):
    session = _session(executors)
    try:
        actual = _run_all(session, dataset)
        stats = session.ctx.backend.stats()
    finally:
        session.stop()
    assert actual == local_results
    assert stats["workers_lost"] == 0
