"""Worker-local WAL replay: ``("wal", ...)`` tokens rebuild the exact
MVCC snapshot from checkpoint + WAL instead of a shipped shm segment."""

from __future__ import annotations

import pytest

from repro.cluster.codec import TaskCodec, loads_envelope
from repro.cluster.shm import DriverShipStore, WorkerShipCache
from repro.cluster.walship import WorkerWalCache
from repro.core import create_index
from repro.errors import DurabilityError, WalReplayError
from tests.durability.conftest import durable_config, make_session, state_dir  # noqa: F401

SCHEMA = [("id", "long"), ("name", "string")]


def build(session, rows, name="t"):
    df = session.create_dataframe(rows, SCHEMA)
    return create_index(df, "id", durable_name=name)


def some_rows(n, base=0):
    return [(base + i, f"v{base + i}") for i in range(n)]


def _nonempty_shard(indexed):
    """(partition, snapshot) of the first shard that holds rows."""
    for partition in indexed.store.partitions:
        snap = partition.snapshot()
        if snap.row_count:
            return partition, snap
    raise AssertionError("no shard holds rows")


class TestCacheRebuild:
    def test_wal_only_rebuild_matches_driver_snapshot(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(40))
        partition, snap = _nonempty_shard(indexed)
        assert partition.durable_ref is not None
        cache = WorkerWalCache(session.config)
        rebuilt = cache.load(*partition.durable_ref, snap.row_count, snap.watermark)
        assert rebuilt.row_count == snap.row_count
        assert rebuilt.watermark == snap.watermark
        assert sorted(rebuilt.trie.to_dict()) == sorted(snap.trie.to_dict())
        assert cache.rows_replayed == snap.row_count

    def test_checkpoint_plus_wal_rebuild(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(20))
        session.durability.store("t").checkpoint()
        indexed.append_rows(some_rows(15, base=100))
        partition, snap = _nonempty_shard(indexed)
        cache = WorkerWalCache(session.config)
        rebuilt = cache.load(*partition.durable_ref, snap.row_count, snap.watermark)
        assert rebuilt.watermark == snap.watermark
        assert sorted(rebuilt.trie.to_dict()) == sorted(snap.trie.to_dict())
        # Only the post-checkpoint tail came from the log.
        assert 0 < cache.rows_replayed < snap.row_count

    def test_incremental_replay_appends_only_the_delta(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(30))
        partition, first = _nonempty_shard(indexed)
        cache = WorkerWalCache(session.config)
        cache.load(*partition.durable_ref, first.row_count, first.watermark)
        replayed_before = cache.rows_replayed

        indexed.append_rows(some_rows(30, base=500))
        second = partition.snapshot()
        rebuilt = cache.load(
            *partition.durable_ref, second.row_count, second.watermark
        )
        assert rebuilt.watermark == second.watermark
        delta = cache.rows_replayed - replayed_before
        assert delta == second.row_count - first.row_count

        # MVCC: the older cached snapshot is still servable, bit-exact.
        again = cache.load(*partition.durable_ref, first.row_count, first.watermark)
        assert again.row_count == first.row_count
        assert again.watermark == first.watermark

    def test_snapshot_cache_hit_is_identity(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(10))
        partition, snap = _nonempty_shard(indexed)
        cache = WorkerWalCache(session.config)
        a = cache.load(*partition.durable_ref, snap.row_count, snap.watermark)
        b = cache.load(*partition.durable_ref, snap.row_count, snap.watermark)
        assert a is b
        assert cache.replays == 1


class TestReplayFailures:
    def test_impossible_row_count_is_wal_replay_error(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(10))
        partition, snap = _nonempty_shard(indexed)
        cache = WorkerWalCache(session.config)
        with pytest.raises(WalReplayError) as err:
            cache.load(
                *partition.durable_ref, snap.row_count + 999, snap.watermark
            )
        assert "WAL holds only" in str(err.value)

    def test_checkpoint_ahead_of_snapshot_is_wal_replay_error(self, make_session):
        """A checkpoint cut *past* the requested MVCC version cannot be
        unwound — the durable state no longer reproduces it."""
        session = make_session()
        indexed = build(session, some_rows(10))
        partition, old = _nonempty_shard(indexed)
        indexed.append_rows(some_rows(10, base=300))
        session.durability.store("t").checkpoint()
        cache = WorkerWalCache(session.config)
        with pytest.raises(WalReplayError) as err:
            cache.load(*partition.durable_ref, old.row_count, old.watermark)
        assert "checkpoint already holds" in str(err.value)

    def test_missing_store_is_wal_replay_error(self, make_session, tmp_path):
        session = make_session()
        cache = WorkerWalCache(session.config)
        with pytest.raises(WalReplayError):
            cache.load(str(tmp_path / "nowhere"), 0, 5, (0, 5))

    def test_wal_replay_error_is_transient_durability_error(self):
        err = WalReplayError("/x", 3, "torn")
        assert isinstance(err, DurabilityError)
        from repro.engine.scheduler import _find_transient
        assert _find_transient(err) is err


class TestCodecIntegration:
    def test_durable_snapshot_ships_as_wal_token(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(25))
        partition, snap = _nonempty_shard(indexed)
        ship = DriverShipStore()
        codec = TaskCodec(ship)
        worker = _FakeWalWorker(session.config)
        try:
            payload = loads_envelope(
                codec.dumps_envelope({"snap": snap}), worker
            )
            rebuilt = payload["snap"]
            assert rebuilt.row_count == snap.row_count
            assert rebuilt.watermark == snap.watermark
            assert worker.wal_cache.replays == 1
            # No shm segment was published for the snapshot.
            assert len(ship._segments) == 0
        finally:
            worker.ship_cache.close()
            ship.close()

    def test_disable_wal_ship_falls_back_to_shm(self, make_session):
        session = make_session()
        indexed = build(session, some_rows(25))
        partition, snap = _nonempty_shard(indexed)
        ship = DriverShipStore()
        assert ship.allows_wal_ship(partition.durable_ref)
        ship.disable_wal_ship(partition.durable_ref)
        assert not ship.allows_wal_ship(partition.durable_ref)
        codec = TaskCodec(ship)
        worker = _FakeWalWorker(session.config)
        try:
            payload = loads_envelope(
                codec.dumps_envelope({"snap": snap}), worker
            )
            rebuilt = payload["snap"]
            assert rebuilt.row_count == snap.row_count
            assert worker.wal_cache.replays == 0  # shm path, not replay
            assert len(ship._segments) > 0
        finally:
            worker.ship_cache.close()
            ship.close()

    def test_non_durable_snapshot_still_ships_shm(self, session):
        """No durable_ref → the classic segment path, untouched."""
        from repro.core import enable_indexing

        enable_indexing(session)
        df = session.create_dataframe(some_rows(10), SCHEMA)
        indexed = create_index(df, "id")
        partition, snap = _nonempty_shard(indexed)
        assert getattr(partition, "durable_ref", None) is None
        ship = DriverShipStore()
        codec = TaskCodec(ship)
        worker = _FakeWalWorker(session.config)
        try:
            payload = loads_envelope(
                codec.dumps_envelope({"snap": snap}), worker
            )
            assert payload["snap"].row_count == snap.row_count
            assert len(ship._segments) > 0
        finally:
            worker.ship_cache.close()
            ship.close()


class _FakeWalWorker:
    """The surface TaskUnpickler.persistent_load resolves, wal included."""

    def __init__(self, config) -> None:
        self.ship_cache = WorkerShipCache()
        self.wal_cache = WorkerWalCache(config)

    def accumulator_proxy(self, accumulator_id):  # pragma: no cover
        raise AssertionError("no accumulators in these envelopes")


class TestEndToEndDurableCluster:
    def test_durable_lookup_on_cluster_backend(self, state_dir):
        """A multi-process session over a durable table: the worker
        rebuilds shards from the WAL, and lookups are exact."""
        from repro.sql.session import Session

        config = durable_config(
            state_dir,
            executors=2,
            default_parallelism=4,
            shuffle_partitions=4,
        )
        session = Session(config)
        try:
            indexed = build(session, some_rows(60))
            assert indexed.count() == 60
            assert indexed.get_rows_local(7) == [(7, "v7")]
            # A planned query ships the shards — as wal tokens, rebuilt
            # worker-side from checkpoint + WAL, never as shm segments.
            rows = sorted(
                tuple(r) for r in indexed.get_rows(7).collect()
            )
            assert rows == [(7, "v7")]
            stats = session.ctx.backend.stats()
            assert stats["wal_replay_fallbacks"] == 0
        finally:
            session.stop()
