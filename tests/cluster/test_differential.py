"""Differential suite: multi-process backends must be bit-identical
to in-process execution — same rows, same aggregates, same metadata —
for RDD pipelines, SQL, and seeded random predicates."""

from __future__ import annotations

import random

import pytest

from repro.engine.context import EngineContext
from repro.sql.session import Session
from tests.conftest import small_config

WORKER_COUNTS = [2, 4]

ROWS = [(i, f"n{i % 7}", (i * 13) % 101, i * 0.5) for i in range(400)]
SCHEMA = [("id", "long"), ("name", "string"), ("bucket", "long"), ("score", "double")]


def _cluster_config(executors: int):
    return small_config(
        executors=executors,
        default_parallelism=4,
        shuffle_partitions=4,
    )


def _run_rdd_pipelines(ctx: EngineContext) -> dict:
    base = ctx.parallelize(list(range(1000)), 8)
    pairs = base.map(lambda x: (x % 10, x))
    return {
        "map_filter": base.map(lambda x: x * 3).filter(lambda x: x % 7 == 0).collect(),
        "sum": base.map(lambda x: x * x).sum(),
        "reduce_by_key": sorted(pairs.reduce_by_key(lambda a, b: a + b).collect()),
        "group_sizes": sorted(
            (k, len(list(v))) for k, v in pairs.group_by_key().collect()
        ),
        "distinct": sorted(base.map(lambda x: x % 13).distinct().collect()),
        "count": base.filter(lambda x: x > 500).count(),
    }


@pytest.mark.parametrize("executors", WORKER_COUNTS)
def test_rdd_pipelines_bit_identical(executors):
    with EngineContext(_cluster_config(0)) as local_ctx:
        expected = _run_rdd_pipelines(local_ctx)
    with EngineContext(_cluster_config(executors)) as cluster_ctx:
        actual = _run_rdd_pipelines(cluster_ctx)
        stats = cluster_ctx.backend.stats()
    assert actual == expected
    assert stats["tasks_dispatched"] > 0, "nothing actually ran on workers"
    assert stats["workers_lost"] == 0


def _run_sql_suite(session: Session) -> dict:
    df = session.create_dataframe(ROWS, SCHEMA)
    df.create_or_replace_temp_view("t")
    small = session.create_dataframe(
        [(i, f"g{i}") for i in range(7)], [("bid", "long"), ("label", "string")]
    )
    small.create_or_replace_temp_view("labels")
    queries = {
        "filter": "SELECT id, name FROM t WHERE bucket < 30",
        "aggregate": "SELECT name, count(*), sum(score) FROM t GROUP BY name",
        "join": (
            "SELECT t.id, labels.label FROM t JOIN labels "
            "ON t.bucket % 7 = labels.bid WHERE t.id < 50"
        ),
        "distinct": "SELECT DISTINCT name FROM t",
        "order_limit": "SELECT id FROM t ORDER BY score DESC LIMIT 25",
    }
    return {
        key: sorted(session.sql(text).collect_tuples())
        for key, text in queries.items()
    }


@pytest.mark.parametrize("executors", WORKER_COUNTS)
def test_sql_bit_identical(executors):
    with Session(_cluster_config(0)) as local:
        expected = _run_sql_suite(local)
    with Session(_cluster_config(executors)) as clustered:
        actual = _run_sql_suite(clustered)
    assert actual == expected


@pytest.mark.parametrize("executors", WORKER_COUNTS)
def test_seeded_random_predicates(executors):
    """Fuzzed comparison predicates agree across backends."""
    rng = random.Random(2026)
    predicates = []
    for _ in range(12):
        column = rng.choice(["id", "bucket"])
        op = rng.choice(["<", "<=", ">", ">=", "=", "<>"])
        value = rng.randrange(0, 120)
        predicates.append(f"{column} {op} {value}")

    def run(session: Session) -> list:
        df = session.create_dataframe(ROWS, SCHEMA)
        df.create_or_replace_temp_view("t")
        return [
            sorted(
                session.sql(
                    f"SELECT id, bucket FROM t WHERE {predicate}"
                ).collect_tuples()
            )
            for predicate in predicates
        ]

    with Session(_cluster_config(0)) as local:
        expected = run(local)
    with Session(_cluster_config(executors)) as clustered:
        actual = run(clustered)
    assert actual == expected


def test_accumulators_and_broadcast_cross_process():
    with EngineContext(_cluster_config(2)) as ctx:
        acc = ctx.long_accumulator("seen")
        shared = ctx.broadcast({"offset": 1000})

        def bump(x, _acc=acc, _b=shared):
            _acc.add(1)
            return x + _b.value["offset"]

        out = ctx.parallelize(list(range(100)), 4).map(bump).collect()
        assert sorted(out) == [1000 + i for i in range(100)]
        assert acc.value == 100


def test_zero_executors_uses_local_backend():
    from repro.cluster.backend import LocalBackend

    with EngineContext(_cluster_config(0)) as ctx:
        assert isinstance(ctx.backend, LocalBackend)
        assert ctx.parallelize([1, 2, 3], 2).sum() == 6
