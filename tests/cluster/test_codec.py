"""Unit tests for the task codec and the shared-memory ship store."""

from __future__ import annotations

import struct
import threading

import pytest

from repro.cluster.codec import TaskCodec, dumps_reply, loads_envelope, loads_reply
from repro.cluster.shm import DriverShipStore, WorkerShipCache
from repro.cluster.worker import _AccumulatorProxy
from repro.engine.accumulators import long_accumulator
from repro.errors import EngineError

MODULE_GLOBAL = 17


def module_level_helper(x):
    return x + MODULE_GLOBAL


class _FakeWorker:
    """Just the surface TaskUnpickler.persistent_load resolves."""

    def __init__(self) -> None:
        self.ship_cache = WorkerShipCache()
        self._proxies: dict[int, _AccumulatorProxy] = {}

    def accumulator_proxy(self, accumulator_id: int) -> _AccumulatorProxy:
        proxy = self._proxies.get(accumulator_id)
        if proxy is None:
            proxy = self._proxies[accumulator_id] = _AccumulatorProxy(accumulator_id)
        return proxy


@pytest.fixture()
def ship():
    store = DriverShipStore()
    yield store
    store.close()


def roundtrip(ship, payload):
    codec = TaskCodec(ship)
    worker = _FakeWorker()
    try:
        return loads_envelope(codec.dumps_envelope(payload), worker), worker, codec
    finally:
        worker.ship_cache.close()


def test_lambda_with_closure_and_globals(ship):
    offset = 5
    fn = lambda x: module_level_helper(x) + offset + MODULE_GLOBAL  # noqa: E731
    out, _worker, _codec = roundtrip(ship, {"fn": fn})
    assert out["fn"](1) == (1 + 17) + 5 + 17


def test_nested_function_with_defaults(ship):
    def make(base):
        def inner(x, scale=3, *, bias=base):
            return x * scale + bias

        return inner

    out, _worker, _codec = roundtrip(ship, {"fn": make(100)})
    assert out["fn"](2) == 106
    assert out["fn"](2, scale=1, bias=0) == 2


def test_module_level_function_by_reference(ship):
    out, _worker, _codec = roundtrip(ship, {"fn": module_level_helper})
    assert out["fn"] is module_level_helper


def test_struct_objects_roundtrip(ship):
    packer = struct.Struct("<qd")

    def pack(row, _s=packer):
        return _s.pack(*row)

    out, _worker, _codec = roundtrip(ship, {"fn": pack})
    assert out["fn"]((7, 2.5)) == packer.pack(7, 2.5)


def test_accumulator_becomes_write_only_proxy(ship):
    acc = long_accumulator("rows")

    def bump(n, _acc=acc):
        _acc.add(n)
        return n

    out, worker, codec = roundtrip(ship, {"fn": bump})
    assert out["fn"](4) == 4
    proxy = worker._proxies[acc.accumulator_id]
    assert proxy.deltas == [4]
    with pytest.raises(EngineError):
        _ = proxy.value
    # driver side registered the real accumulator for delta replay
    assert codec.accumulators[acc.accumulator_id] is acc


def test_reply_falls_back_on_unpicklable_payload():
    status, payload, deltas, generation = loads_reply(
        dumps_reply("ok", threading.Lock(), [(1, [2])], 3)
    )
    assert status == "err"
    assert isinstance(payload, EngineError)
    assert "unpicklable" in str(payload)
    assert deltas == [(1, [2])]  # deltas survive the substitution
    assert generation == 3  # the fencing stamp survives too


def test_reply_ok_roundtrip():
    status, payload, deltas, generation = loads_reply(
        dumps_reply("ok", [1, 2, 3], [], 2)
    )
    assert (status, payload, deltas, generation) == ("ok", [1, 2, 3], [], 2)


def test_ship_store_publishes_once(ship):
    from repro.engine.broadcast import Broadcast

    value = Broadcast({"a": 1})
    token_a = ship.token_for_object(value)
    token_b = ship.token_for_object(value)
    assert token_a == token_b

    cache = WorkerShipCache()
    try:
        loaded = cache.load(token_a)
        assert loaded.value == {"a": 1}
        assert cache.load(token_a) is loaded  # cached, one attach
    finally:
        cache.close()


def test_unpicklable_closure_raises_for_fallback(ship):
    """Closures over live locks must *fail* to encode — the backend's
    local-execution fallback (mutating ingest tasks) depends on it."""
    lock = threading.Lock()

    def guarded(x, _lock=lock):
        with _lock:
            return x

    codec = TaskCodec(ship)
    with pytest.raises(Exception):
        codec.dumps_envelope({"fn": guarded})
