"""Gray-failure acceptance sweep: deterministic hang/delay/drop
schedules across 20 seeds.

Three properties per seed, all implied by exact-multiset results plus
the resource checks:

* **zero stale rows** — a fenced generation's late map outputs or
  zombie replies never reach a reduce (a stale row would skew an
  aggregate, and the expected dict is exact);
* **zero leaked shm segments** — every kill path reaps its
  ``/dev/shm/repro_{pid}_*`` segments and spill files;
* **deterministic replay** — the same seed draws the same schedule
  (trace equality) and produces the same result, run to run.
"""

from __future__ import annotations

import dataclasses
import glob
import os

import pytest

from repro.engine.context import EngineContext
from repro.faults import FaultSchedule, cluster_chaos_profile, gray_failure_schedule
from tests.conftest import small_config

SEEDS = list(range(20))

#: 600 rows over 40 keys; value multiset per key is exact, so one stale
#: or lost map output shows up as a wrong aggregate, not just a count.
DATA = [(i % 40, i) for i in range(600)]
EXPECTED = {}
for key, value in DATA:
    EXPECTED[key] = EXPECTED.get(key, 0) + value


def _schedule_config(seed: int, schedule: FaultSchedule | None = None):
    config = small_config(
        executors=2,
        default_parallelism=4,
        shuffle_partitions=4,
        heartbeat_interval=0.02,
        heartbeat_timeout=0.4,
        rpc_deadline=1.5,
    )
    return dataclasses.replace(
        config,
        fault_schedule=schedule
        or FaultSchedule(
            seed=seed,
            hang_p=0.1,
            delay_p=0.2,
            drop_p=0.15,
            heartbeat_miss_p=0.05,
            delay_s=0.02,
        ),
    )


def _shm_segments() -> list[str]:
    """Shared-memory segments owned by *this* driver process."""
    return glob.glob(f"/dev/shm/repro_{os.getpid()}_*")


def _run(config) -> tuple[dict, dict, list]:
    with EngineContext(config) as ctx:
        result = dict(
            ctx.parallelize(DATA, 4).reduce_by_key(lambda a, b: a + b).collect()
        )
        stats = ctx.backend.stats()
        trace = ctx.fault_injector.schedule_trace()
    return result, stats, trace


@pytest.mark.parametrize("seed", SEEDS)
def test_schedule_sweep_exact_results(seed):
    result, stats, _trace = _run(_schedule_config(seed))
    assert result == EXPECTED, f"seed {seed}: rows lost, duplicated, or stale"
    # A fenced generation's outputs must never have been consumed: any
    # stale commit is explicitly counted, and a consumed one would have
    # broken the multiset above.
    assert stats["stale_replies_dropped"] >= 0  # counter exists and is sane
    assert _shm_segments() == [], f"seed {seed}: leaked shm segments"


def test_chaos_actually_fires():
    """The sweep's probabilities must exercise every detector at least
    once across the first seeds (otherwise the suite tests nothing)."""
    totals = {"hangs_injected": 0, "drops_injected": 0, "delays_injected": 0}
    fences = 0
    for seed in SEEDS[:8]:
        _result, stats, _trace = _run(_schedule_config(seed))
        for key in totals:
            totals[key] += stats[key]
        fences += stats["heartbeat_fences"] + stats["rpc_timeouts"]
    assert all(count > 0 for count in totals.values()), totals
    assert fences > 0, "no gray failure was ever detected and fenced"


@pytest.mark.parametrize("seed", [3, 7, 11])
def test_deterministic_replay(seed):
    """Same seed → same schedule → same result, bit for bit."""
    first = _run(_schedule_config(seed))
    second = _run(_schedule_config(seed))
    assert first[2] == second[2], f"seed {seed}: schedules diverged"
    assert first[0] == second[0] == EXPECTED
    assert first[2], f"seed {seed}: empty trace — replay test is vacuous"


def test_different_seeds_draw_different_schedules():
    traces = {tuple(_run(_schedule_config(seed))[2]) for seed in (1, 2, 3)}
    assert len(traces) > 1, "every seed drew the identical schedule"


def test_gray_failure_preset_end_to_end():
    """The documented acceptance preset must pass as-is."""
    result, _stats, trace = _run(_schedule_config(0, gray_failure_schedule(seed=42)))
    assert result == EXPECTED
    assert trace, "preset fired nothing"
    assert _shm_segments() == []


@pytest.mark.parametrize("seed", SEEDS)
def test_worker_kill_chaos_leaks_nothing(seed):
    """The PR 7 crash profile (os._exit mid-task) through the new
    stop() escalation: zero shm segments after context teardown."""
    config = small_config(executors=2, default_parallelism=4, shuffle_partitions=4)
    config = dataclasses.replace(
        config, faults=cluster_chaos_profile(seed=seed, max_fires_per_site=2)
    )
    result, _stats, _trace = _run(config)
    assert result == EXPECTED
    assert _shm_segments() == [], f"seed {seed}: leaked shm segments"


def test_hung_worker_fence_reaps_spill_files():
    """A hang fence kills the worker mid-write; respawn must reap the
    dead pid's spill files so /tmp never accretes orphans."""
    config = _schedule_config(0, FaultSchedule(seed=0, hang_p=1.0, attempt_cap=1))
    with EngineContext(config) as ctx:
        result = dict(
            ctx.parallelize(DATA, 4).reduce_by_key(lambda a, b: a + b).collect()
        )
        stats = ctx.backend.stats()
        spill_root = ctx._spill_root
        dead_pids = stats["heartbeat_fences"]
        leftovers = [
            path
            for path in glob.glob(os.path.join(spill_root, "*.bin"))
            if "_p" in os.path.basename(path)
        ]
        live_pids = {slot.pid for slot in ctx.backend._slots}
        orphans = [
            path
            for path in leftovers
            if not any(f"_p{pid}_" in os.path.basename(path) for pid in live_pids)
        ]
    assert result == EXPECTED
    assert dead_pids > 0
    assert orphans == [], f"dead workers left spill files: {orphans}"
    assert _shm_segments() == []
