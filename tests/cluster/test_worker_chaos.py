"""Worker-kill chaos: injected ``os._exit`` mid-dispatch must never
lose or duplicate rows — the dispatcher respawns the worker, invalidates
the dead pid's spill outputs, and the scheduler recomputes lineage."""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine.context import EngineContext
from repro.faults import cluster_chaos_profile
from tests.conftest import small_config

SEEDS = list(range(20))

#: 600 rows over 40 keys; value multiset per key is exact, so a lost or
#: doubled map output shows up as a wrong aggregate, not just a count.
DATA = [(i % 40, i) for i in range(600)]
EXPECTED = {}
for key, value in DATA:
    EXPECTED[key] = EXPECTED.get(key, 0) + value


def _chaos_config(seed: int):
    config = small_config(
        executors=2,
        default_parallelism=4,
        shuffle_partitions=4,
    )
    return dataclasses.replace(
        config, faults=cluster_chaos_profile(seed=seed, max_fires_per_site=2)
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_no_lost_or_duplicated_rows(seed):
    with EngineContext(_chaos_config(seed)) as ctx:
        result = dict(
            ctx.parallelize(DATA, 4).reduce_by_key(lambda a, b: a + b).collect()
        )
        rows = sorted(ctx.parallelize(list(range(200)), 4).map(lambda x: x * 2).collect())
        stats = ctx.backend.stats()
        metrics = ctx.scheduler.metrics.snapshot()
    assert result == EXPECTED, f"seed {seed}: shuffle rows lost or duplicated"
    assert rows == [x * 2 for x in range(200)], f"seed {seed}: map rows diverged"
    # Every injected crash kills a worker mid-task; the dispatcher must
    # have observed each death it caused.
    assert stats["workers_lost"] >= stats["crashes_injected"]
    assert metrics["workers_lost"] == stats["workers_lost"]


def test_chaos_actually_fires():
    """At least one of the seeded profiles must exercise the crash path
    (otherwise the suite silently tests nothing)."""
    fired = 0
    for seed in SEEDS[:8]:
        with EngineContext(_chaos_config(seed)) as ctx:
            ctx.parallelize(DATA, 4).reduce_by_key(lambda a, b: a + b).collect()
            fired += ctx.backend.stats()["crashes_injected"]
    assert fired > 0
