"""The driver-side task wait polls cancellation (CP002 regression).

``run_task`` used to end in a bare ``box.result()`` — a cancelled or
deadline-expired query could not unwind until its in-flight worker
task replied. ``_await_result`` waits in ticks and polls the query
between them, bounding cancellation latency at the driver.
"""

import threading
from concurrent.futures import Future

import pytest

from repro.cluster.backend import _await_result
from repro.errors import QueryCancelledError
from repro.serving.context import QueryContext


def test_resolved_future_returns_immediately():
    box = Future()
    box.set_result(41)
    assert _await_result(box, None) == 41


def test_task_exception_is_reraised():
    box = Future()
    box.set_exception(ValueError("task blew up"))
    with pytest.raises(ValueError):
        _await_result(box, None)


def test_cancelled_query_unblocks_the_wait():
    box = Future()  # never resolves: the worker never replies
    query = QueryContext.create()
    query.cancel("user abort")
    with pytest.raises(QueryCancelledError):
        _await_result(box, query)


def test_expired_deadline_unblocks_the_wait():
    box = Future()
    query = QueryContext.create(deadline_s=0.0)
    with pytest.raises(QueryCancelledError):
        _await_result(box, query)


def test_live_query_still_receives_a_late_result():
    box = Future()
    query = QueryContext.create()  # unbounded, never cancelled
    timer = threading.Timer(0.12, box.set_result, args=("late",))
    timer.start()
    try:
        assert _await_result(box, query) == "late"
    finally:
        timer.cancel()
