"""Heartbeat liveness: gray workers are detected, fenced, and respawned
without losing a row.

The unit half drives :class:`HeartbeatMonitor`'s sweep directly (no
monitor thread, no timing races); the end-to-end half injects
``cluster.hang`` directives and asserts the query still completes
bit-identically within the heartbeat budget.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.cluster.liveness import BEAT, DEAD, LIVE, SUSPECT, HeartbeatMonitor
from repro.engine.context import EngineContext
from repro.faults import FaultInjector, FaultSchedule
from tests.conftest import small_config

DATA = [(i % 20, i) for i in range(400)]
EXPECTED = {}
for key, value in DATA:
    EXPECTED[key] = EXPECTED.get(key, 0) + value


class _FakeConn:
    """Beat-pipe stand-in: a drainable list of pre-packed frames."""

    def __init__(self):
        self.frames: list[bytes] = []

    def beat(self, generation: int) -> None:
        self.frames.append(BEAT.pack(generation, time.monotonic()))

    def poll(self, _timeout: float = 0.0) -> bool:
        return bool(self.frames)

    def recv_bytes(self) -> bytes:
        return self.frames.pop(0)


def _monitor(timeout: float = 1.0, injector=None):
    dead: list[tuple[int, int, int]] = []
    monitor = HeartbeatMonitor(
        interval=timeout / 10,
        timeout=timeout,
        on_dead=lambda slot, gen, pid: dead.append((slot, gen, pid)),
        injector=injector,
    )
    return monitor, dead


class TestMonitorUnit:
    def test_beating_slot_stays_live(self):
        monitor, _ = _monitor()
        conn = _FakeConn()
        monitor.register(0, 1, conn, pid=999999)
        conn.beat(1)
        assert monitor._sweep() == []
        assert monitor._slots[0].state == LIVE
        assert monitor.suspect_slots() == frozenset()

    def test_silence_walks_suspect_then_dead(self):
        monitor, _ = _monitor(timeout=1.0)
        conn = _FakeConn()
        monitor.register(0, 1, conn, pid=999999)
        monitor._slots[0].last_beat -= 0.6  # past timeout/2, short of timeout
        assert monitor._sweep() == []
        assert monitor._slots[0].state == SUSPECT
        assert monitor.suspect_slots() == frozenset({0})
        monitor._slots[0].last_beat -= 0.5  # now past the full timeout
        assert monitor._sweep() == [(0, 1, 999999)]
        assert monitor._slots[0].state == DEAD
        assert monitor.stats()["heartbeat_fences"] == 1
        # Already DEAD: no second verdict for the same generation.
        assert monitor._sweep() == []

    def test_fresh_beat_recovers_suspect(self):
        monitor, _ = _monitor(timeout=1.0)
        conn = _FakeConn()
        monitor.register(0, 1, conn, pid=999999)
        monitor._slots[0].last_beat -= 0.6
        monitor._sweep()
        assert monitor._slots[0].state == SUSPECT
        conn.beat(1)
        monitor._sweep()
        assert monitor._slots[0].state == LIVE

    def test_stale_generation_beats_discarded(self):
        """A zombie generation's beats must not refresh the new one."""
        monitor, _ = _monitor(timeout=1.0)
        conn = _FakeConn()
        monitor.register(0, 2, conn, pid=999999)
        monitor._slots[0].last_beat -= 1.1
        conn.beat(1)  # generation 1 zombie still beating
        assert monitor._sweep() == [(0, 2, 999999)]
        assert monitor.stats()["beats_discarded"] == 1

    def test_respawn_rebinds_generation(self):
        monitor, _ = _monitor(timeout=1.0)
        monitor.register(0, 1, _FakeConn(), pid=111)
        monitor._slots[0].last_beat -= 1.1
        monitor._sweep()
        assert monitor._slots[0].state == DEAD
        fresh = _FakeConn()
        monitor.register(0, 2, fresh, pid=222)
        assert monitor._slots[0].state == LIVE
        fresh.beat(2)
        assert monitor._sweep() == []

    def test_injected_heartbeat_miss_deafens_registration(self):
        injector = FaultInjector(None, FaultSchedule(seed=5, heartbeat_miss_p=1.0))
        monitor, _ = _monitor(timeout=1.0, injector=injector)
        conn = _FakeConn()
        monitor.register(0, 1, conn, pid=999999)
        assert monitor._slots[0].deaf
        conn.beat(1)
        monitor._slots[0].last_beat -= 1.1
        # The worker is perfectly healthy; the fence is the experiment.
        assert monitor._sweep() == [(0, 1, 999999)]
        assert monitor.stats()["beats_discarded"] == 1
        # The respawned generation is spawn-attempt 1: past the default
        # attempt_cap, so it hears beats again — no fencing livelock.
        monitor.register(0, 2, conn, pid=999999)
        assert not monitor._slots[0].deaf


def _hang_config(seed: int = 1):
    config = small_config(
        executors=2,
        default_parallelism=4,
        shuffle_partitions=4,
        heartbeat_interval=0.02,
        heartbeat_timeout=0.35,
    )
    return dataclasses.replace(
        config,
        fault_schedule=FaultSchedule(seed=seed, hang_p=1.0, attempt_cap=1),
    )


class TestHangEndToEnd:
    def test_hung_workers_fenced_and_query_completes(self):
        """Every split's first dispatch hangs its worker whole (beats
        paused). The monitor must fence each hang within
        ``heartbeat_timeout`` and the retried attempts must produce the
        exact multiset — detection, respawn, and lineage recompute with
        zero lost or duplicated rows."""
        started = time.monotonic()
        with EngineContext(_hang_config()) as ctx:
            result = dict(
                ctx.parallelize(DATA, 4)
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
            elapsed = time.monotonic() - started
            stats = ctx.backend.stats()
            metrics = ctx.scheduler.metrics.snapshot()
        assert result == EXPECTED
        assert stats["hangs_injected"] > 0, "schedule never fired"
        assert stats["heartbeat_fences"] >= stats["hangs_injected"]
        # Fenced deaths surface as ClusterTimeoutError (transient), and
        # each fence's retry made progress.
        assert metrics["cluster_timeouts"] > 0
        # Liveness budget: each hang is detected within heartbeat_timeout
        # plus scheduling slack; the whole job (two serial waves of
        # hangs, at most) stays well under the no-detection sleep bound.
        config = _hang_config()
        budget = config.heartbeat_timeout * (stats["hangs_injected"] + 2) + 5.0
        assert elapsed < budget, f"detection too slow: {elapsed:.1f}s"

    def test_generation_bumps_per_fence(self):
        with EngineContext(_hang_config()) as ctx:
            ctx.parallelize(DATA, 4).reduce_by_key(lambda a, b: a + b).collect()
            stats = ctx.backend.stats()
        # Every fence killed a generation and respawned the slot.
        assert stats["generations"] >= stats["workers"] + stats["heartbeat_fences"]

    def test_heartbeats_disabled_keeps_plain_path(self):
        """heartbeat_interval=0 must run the classic backend: no monitor,
        no fences, results identical."""
        config = small_config(
            executors=2,
            default_parallelism=4,
            shuffle_partitions=4,
            heartbeat_interval=0.0,
        )
        with EngineContext(config) as ctx:
            result = dict(
                ctx.parallelize(DATA, 4)
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )
            stats = ctx.backend.stats()
        assert result == EXPECTED
        assert stats["heartbeat_fences"] == 0
        assert "suspect_slots" not in stats


@pytest.mark.parametrize("reason", ["heartbeat", "rpc-deadline"])
def test_cluster_timeout_error_is_transient(reason):
    from repro.engine.scheduler import _find_transient
    from repro.errors import ClusterTimeoutError, TaskError

    exc = TaskError(0, 1, ClusterTimeoutError(0, 3, reason))
    found = _find_transient(exc)
    assert isinstance(found, ClusterTimeoutError)
    assert found.generation == 3
