"""Ablation A3 — querying a continuously-updated table.

Paper §1: *"updates to the graph invalidate caching of Dataframes"*.
The scenario interleaves appends with point queries:

* **indexed** — ``append_rows`` keeps the cache; queries hit the new
  version immediately;
* **vanilla** — every append unions + re-caches the columnar relation
  before the query can run.

The measured unit is (apply one update batch, then answer one query),
i.e. the freshness-constrained latency a live dashboard pays.
"""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.sql import Session
from repro.sql.functions import col

ROWS = 20_000
BATCH = 200


@pytest.fixture(scope="module")
def session():
    s = Session(Config(executor_threads=2, shuffle_partitions=4))
    enable_indexing(s)
    yield s
    s.stop()


def _base(session: Session):
    return session.create_dataframe(
        [(i, i % 1000, float(i)) for i in range(ROWS)],
        [("id", "long"), ("device", "long"), ("reading", "double")],
        validate=False,
    )


@pytest.mark.parametrize("system", ["indexed", "vanilla"])
def test_update_then_query(benchmark, session, system):
    counter = {"next": ROWS}

    if system == "indexed":
        state = {"table": create_index(_base(session), "id")}

        def step():
            start = counter["next"]
            counter["next"] += BATCH
            rows = [(i, i % 1000, float(i)) for i in range(start, start + BATCH)]
            state["table"] = state["table"].append_rows(rows)
            hit = state["table"].get_rows_local(start)
            assert hit and hit[0][0] == start

    else:
        state = {"table": _base(session).cache()}

        def step():
            start = counter["next"]
            counter["next"] += BATCH
            rows = [(i, i % 1000, float(i)) for i in range(start, start + BATCH)]
            fresh = session.create_dataframe(
                rows,
                [("id", "long"), ("device", "long"), ("reading", "double")],
                validate=False,
            )
            # The cached relation is invalidated: union + re-cache.
            state["table"] = state["table"].union(fresh).cache()
            hit = state["table"].filter(col("id") == start).collect_tuples()
            assert hit and hit[0][0] == start

    benchmark.pedantic(step, rounds=5, warmup_rounds=1, iterations=1)
