"""Ablation A4 — memory overhead of the index.

Paper §1: the Indexed DataFrame *"has a relatively low memory overhead
in addition to the original data"*. This bench accounts bytes per row
for (a) the binary row batches alone, (b) batches + cTrie + backward
pointers, and (c) the vanilla columnar cache, and asserts the index's
*overhead* stays within a small multiple of the raw data.

(Caveat: Python object overheads inflate everything equally; the
*ratios* are the meaningful output.)
"""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.sql import Session

ROWS = 50_000


@pytest.fixture(scope="module")
def session():
    s = Session(Config(executor_threads=2, shuffle_partitions=4))
    enable_indexing(s)
    yield s
    s.stop()


@pytest.fixture(scope="module")
def frames(session):
    df = session.create_dataframe(
        [(i, f"user{i}", i % 100) for i in range(ROWS)],
        [("id", "long"), ("name", "string"), ("grp", "long")],
        validate=False,
    )
    return df.cache(), create_index(df, "id")


def test_memory_accounting(frames, capsys):
    cached, indexed = frames
    stats = indexed.memory_stats()
    data = stats["data_bytes"]
    headers = stats["header_bytes"]
    index = stats["index_bytes"]
    columnar = cached.cached_bytes()

    per_row_data = data / ROWS
    per_row_total = (data + index) / ROWS
    overhead_ratio = (headers + index) / max(1, data - headers)

    print(
        f"\nrows={ROWS}  batches={per_row_data:.1f} B/row "
        f"(incl. {headers / ROWS:.1f} B/row backward ptrs)  "
        f"index={index / ROWS:.1f} B/row  total={per_row_total:.1f} B/row  "
        f"columnar cache={columnar / ROWS:.1f} B/row  "
        f"index overhead={overhead_ratio:.2f}x of raw data"
    )
    # "Relatively low memory overhead": the index + pointer structures
    # must not dwarf the data itself (Python dict/trie overheads make
    # this looser than the JVM original).
    assert overhead_ratio < 4.0


def test_memory_bench(benchmark, frames):
    """Benchmark snapshot+stats collection itself (cheap, O(partitions))."""
    _cached, indexed = frames
    benchmark.pedantic(indexed.memory_stats, rounds=10, warmup_rounds=1, iterations=1)
