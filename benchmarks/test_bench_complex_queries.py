"""Extension experiment E1 — complex (multi-hop) reads.

Beyond the paper's Figure 3: the same indexed-vs-vanilla comparison on
LDBC-interactive-shaped complex reads (2-hop friends, friends'
timelines, like aggregation). Expectation: CQ1/CQ2 benefit from
chained index lookups and indexed joins; CQ3 is partially
index-resistant (dominated by the un-indexed ``likes`` table).
"""

from __future__ import annotations

import pytest

from repro.snb.complex_queries import COMPLEX_QUERIES


def _busy_person(dataset):
    degree: dict[int, int] = {}
    for a, _b, _ts in dataset.knows:
        degree[a] = degree.get(a, 0) + 1
    return max(degree, key=degree.get)


@pytest.mark.parametrize("query", list(COMPLEX_QUERIES))
@pytest.mark.parametrize("system", ["indexed", "vanilla"])
def test_complex_query(benchmark, fig3_setup, result_sink, query, system):
    fn, _kind = COMPLEX_QUERIES[query]
    person = _busy_person(fig3_setup.dataset)
    ctx = fig3_setup.indexed if system == "indexed" else fig3_setup.vanilla

    expected = [tuple(r) for r in fn(fig3_setup.vanilla, person)]
    assert [tuple(r) for r in fn(ctx, person)] == expected

    benchmark.pedantic(lambda: fn(ctx, person), rounds=5, warmup_rounds=1, iterations=1)
    result_sink.record(
        "Extension E1: complex reads (IndexedDF vs Spark)",
        query,
        system,
        benchmark.stats.stats.median * 1000.0,
    )
