"""Ablation A6 — cTrie microbenchmarks (substrate of the index).

Prokopec et al. claim O(log32 n) inserts/lookups and **O(1)
snapshots**. We benchmark each op and assert that snapshot cost does
not grow with trie size (the property MVCC versioning relies on:
``append_rows`` mints a version per micro-batch).
"""

from __future__ import annotations

import time

import pytest

from repro.ctrie import CTrie

SIZES = [1_000, 100_000]


@pytest.fixture(scope="module", params=SIZES, ids=lambda s: f"n={s}")
def filled(request):
    trie = CTrie()
    for i in range(request.param):
        trie.insert(i, i)
    return request.param, trie


def test_insert_throughput(benchmark):
    def build():
        trie = CTrie()
        for i in range(10_000):
            trie.insert(i, i)
        return trie

    benchmark.pedantic(build, rounds=3, warmup_rounds=1, iterations=1)


def test_lookup_latency(benchmark, filled):
    size, trie = filled
    keys = [size // 4, size // 2, 3 * size // 4]

    def probe():
        for key in keys:
            assert trie.lookup(key) == key

    benchmark.pedantic(probe, rounds=50, warmup_rounds=5, iterations=1)


def test_snapshot_cost(benchmark, filled):
    _size, trie = filled
    benchmark.pedantic(trie.readonly_snapshot, rounds=50, warmup_rounds=5, iterations=1)


def test_snapshot_is_constant_time():
    """Snapshot latency must not scale with trie size (O(1) claim)."""

    def best_of(trie, repeats=200):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            trie.readonly_snapshot()
            best = min(best, time.perf_counter() - start)
        return best

    small = CTrie()
    for i in range(1_000):
        small.insert(i, i)
    large = CTrie()
    for i in range(200_000):
        large.insert(i, i)

    ratio = best_of(large) / max(best_of(small), 1e-9)
    assert ratio < 20, f"snapshot cost grew {ratio:.1f}x for 200x more entries"
