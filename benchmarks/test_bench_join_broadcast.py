"""Ablation A5 — indexed join: shuffle vs broadcast-probe crossover.

Paper §2 (Indexed Join): *"When the Dataframe size is small enough to
be broadcasted efficiently, our implementation falls back to a
broadcast-join instead of a shuffle."* We sweep the probe-side size
across the broadcast threshold and benchmark both dispatch modes; for
small probes the broadcast path should win (no shuffle), for large
probes the shuffle path amortizes.
"""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.sql import Session

BUILD_ROWS = 50_000
PROBE_SIZES = [100, 1_000, 10_000]
THRESHOLD = 1_000


@pytest.fixture(scope="module")
def setup():
    session = Session(
        Config(
            executor_threads=2,
            shuffle_partitions=4,
            broadcast_threshold=THRESHOLD,
        )
    )
    enable_indexing(session)
    build_df = session.create_dataframe(
        [(i, f"item{i}", float(i)) for i in range(BUILD_ROWS)],
        [("id", "long"), ("name", "string"), ("value", "double")],
        validate=False,
    )
    indexed = create_index(build_df, "id")
    probes = {
        n: session.create_dataframe(
            [(i * (BUILD_ROWS // n), i) for i in range(n)],
            [("pid", "long"), ("seq", "long")],
            validate=False,
        ).cache()
        for n in PROBE_SIZES
    }
    yield session, indexed, probes
    session.stop()


@pytest.mark.parametrize("probe_size", PROBE_SIZES)
def test_indexed_join_over_probe_sizes(benchmark, setup, probe_size):
    _session, indexed, probes = setup
    probe = probes[probe_size]

    def run() -> int:
        return indexed.join(probe, on=indexed.col("id") == probe.col("pid")).count()

    matches = run()
    assert matches == probe_size  # every probe key exists exactly once

    benchmark.pedantic(run, rounds=5, warmup_rounds=1, iterations=1)


def test_broadcast_dispatch_boundary(setup):
    """The physical plan switches mode exactly at the threshold."""
    _session, indexed, probes = setup
    small = probes[100]
    large = probes[10_000]
    small_join = indexed.join(small, on=indexed.col("id") == small.col("pid"))
    large_join = indexed.join(large, on=indexed.col("id") == large.col("pid"))
    assert "IndexedJoin" in small_join.explain()
    assert "IndexedJoin" in large_join.explain()
