"""Ablation A2 — point-lookup latency vs table size.

The cTrie gives sub-linear (O(log32 n)) lookups while the vanilla
equality filter scans the whole cached table. As rows grow 10³ → 10⁵,
the vanilla filter's latency should grow roughly linearly while the
indexed lookup stays nearly flat — the core latency claim of the
paper's title.
"""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.core import create_index, enable_indexing
from repro.sql import Session
from repro.sql.functions import col

SIZES = [1_000, 10_000, 100_000]


def _session() -> Session:
    session = Session(
        Config(executor_threads=2, shuffle_partitions=4, default_parallelism=4)
    )
    enable_indexing(session)
    return session


@pytest.fixture(scope="module")
def tables():
    session = _session()
    built = {}
    for size in SIZES:
        df = session.create_dataframe(
            [(i, i % 97, float(i)) for i in range(size)],
            [("id", "long"), ("bucket", "long"), ("value", "double")],
            validate=False,
        )
        built[size] = (create_index(df, "id"), df.cache())
    yield built
    session.stop()


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("system", ["indexed", "vanilla"])
def test_lookup_scaling(benchmark, tables, size, system):
    indexed, vanilla = tables[size]
    key = size // 2

    if system == "indexed":
        fn = lambda: indexed.get_rows_local(key)  # noqa: E731
    else:
        fn = lambda: vanilla.filter(col("id") == key).collect_tuples()  # noqa: E731

    rows = fn()
    assert len(rows) == 1 and rows[0][0] == key

    benchmark.pedantic(fn, rounds=20, warmup_rounds=2, iterations=1)


def test_lookup_is_sublinear(tables):
    """Direct check: indexed lookup latency grows far slower than data."""
    import time

    def measure(fn, repeats=50):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    small_idx, _ = tables[SIZES[0]]
    large_idx, _ = tables[SIZES[-1]]
    small = measure(lambda: small_idx.get_rows_local(SIZES[0] // 2))
    large = measure(lambda: large_idx.get_rows_local(SIZES[-1] // 2))
    growth = large / max(small, 1e-9)
    data_growth = SIZES[-1] / SIZES[0]
    assert growth < data_growth / 4, (
        f"lookup grew {growth:.1f}x for {data_growth:.0f}x more data"
    )
