"""Figure 3 — SNB simple read queries SQ1..SQ7 (log-scale in paper).

Paper §3: *"The Indexed DataFrame speeds up all queries, with the
exception of Q5 and Q6, which cannot make use of the index."* The same
query functions run against the vanilla (cached columnar) and indexed
contexts; equivalence is asserted before timing.

Run: ``pytest benchmarks/test_bench_figure3_snb.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.snb import ALL_QUERIES, run_query

QUERY_NAMES = list(ALL_QUERIES)


def _param(setup, name: str):
    return setup.person_param if ALL_QUERIES[name][1] == "person" else setup.message_param


@pytest.mark.parametrize("query", QUERY_NAMES)
@pytest.mark.parametrize("system", ["indexed", "vanilla"])
def test_figure3_query(benchmark, fig3_setup, result_sink, query, system):
    parameter = _param(fig3_setup, query)
    ctx = fig3_setup.indexed if system == "indexed" else fig3_setup.vanilla

    # Equivalence: both systems answer identically.
    expected = sorted(map(tuple, run_query(fig3_setup.vanilla, query, parameter)))
    actual = sorted(map(tuple, run_query(ctx, query, parameter)))
    assert actual == expected

    benchmark.pedantic(
        lambda: run_query(ctx, query, parameter),
        rounds=5,
        warmup_rounds=1,
        iterations=1,
    )
    result_sink.record(
        "Figure 3: SNB simple reads (IndexedDF vs Spark)",
        query,
        system,
        benchmark.stats.stats.median * 1000.0,
    )
