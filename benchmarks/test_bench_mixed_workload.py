"""Ablation A8 — the demo's operating point: concurrent reads + writes.

Paper §4: the demo *"concurrently handl[es] the update workload of the
Social Network Benchmark, and transparently run[s] SNB queries"*. This
bench drives exactly that: a writer thread ingests SNB update batches
while the measured thread answers short reads against the freshest
version. Reported: per-query latency with the writer active.

The indexed context appends in place (cheap versions); the vanilla
context must rebuild its cached tables per batch, so its queries also
contend with much heavier writer work.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import Config
from repro.core import enable_indexing
from repro.snb import generate, load_indexed, load_vanilla, sq1, sq2, update_stream
from repro.sql.session import Session

BATCHES = 60


@pytest.fixture(scope="module")
def world():
    session = Session(
        Config(
            executor_threads=4,
            shuffle_partitions=4,
            batch_size_bytes=1024 * 1024,
            broadcast_threshold=10_000,
        )
    )
    enable_indexing(session)
    dataset = generate(scale_factor=1.0, seed=17)
    yield session, dataset
    session.stop()


@pytest.mark.parametrize("system", ["indexed", "vanilla"])
def test_queries_under_update_load(benchmark, world, system):
    session, dataset = world
    context = (
        load_indexed(session, dataset)
        if system == "indexed"
        else load_vanilla(session, dataset)
    )
    state = {"ctx": context}
    lock = threading.Lock()
    stop = threading.Event()
    batches = iter(update_stream(dataset, BATCHES, rows_per_batch=100, seed=23))

    def writer() -> None:
        while not stop.is_set():
            try:
                batch = next(batches)
            except StopIteration:
                return
            fresh = state["ctx"].with_appended(
                persons=batch.persons, knows=batch.knows, messages=batch.messages
            )
            with lock:
                state["ctx"] = fresh

    thread = threading.Thread(target=writer)
    thread.start()
    person = dataset.person_ids()[3]

    def read_query():
        with lock:
            ctx = state["ctx"]
        profile = sq1(ctx, person)
        recent = sq2(ctx, person, limit=5)
        return len(profile) + len(recent)

    try:
        result = benchmark.pedantic(
            read_query, rounds=10, warmup_rounds=1, iterations=1
        )
        assert result >= 1
    finally:
        stop.set()
        thread.join()
