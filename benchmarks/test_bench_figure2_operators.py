"""Figure 2 — SQL operators: Indexed DataFrame vs vanilla Spark.

Paper §3, Figure 2: join, filter, equality filter, aggregation,
projection, and scan over the cached ``person_knows_person`` table
(join against ``person``). Expected shape:

* Join and Equality Filter: IndexedDF significantly faster;
* Aggregation / Filter / Scan: no index benefit (the Python substrate
  additionally penalizes full-scan decode, see EXPERIMENTS.md);
* Projection: IndexedDF *slower* — the row store must touch every row
  while the columnar vanilla cache reads one pruned vector.

Run: ``pytest benchmarks/test_bench_figure2_operators.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import operator_workload

OPERATORS = ["Join", "Filter", "Equality Filter", "Aggregation", "Projection", "Scan"]


@pytest.mark.parametrize("operator", OPERATORS)
@pytest.mark.parametrize("system", ["indexed", "vanilla"])
def test_figure2_operator(benchmark, fig2_setup, result_sink, operator, system):
    ops = operator_workload(fig2_setup)
    indexed_fn, vanilla_fn = ops[operator]
    fn = indexed_fn if system == "indexed" else vanilla_fn

    # Both systems must compute the same answer before being timed.
    assert indexed_fn() == vanilla_fn()

    result = benchmark.pedantic(fn, rounds=5, warmup_rounds=1, iterations=1)
    assert result >= 0
    result_sink.record(
        "Figure 2: SQL operators (IndexedDF vs Spark)",
        operator,
        system,
        benchmark.stats.stats.median * 1000.0,
    )
