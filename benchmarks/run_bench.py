#!/usr/bin/env python
"""Benchmark-regression harness: interpreted vs compiled hot paths.

Runs the Figure-2-style operator microbenchmarks twice — once with
``Config.codegen_enabled=False`` (the interpreted row-at-a-time paths)
and once with it on (compiled batch kernels + bulk row decoders) — and
writes ``BENCH_PR2.json`` at the repo root. The JSON schema is
documented in ``benchmarks/figures.txt``.

Usage::

    python benchmarks/run_bench.py                  # full scale, writes BENCH_PR2.json
    python benchmarks/run_bench.py --scale 0.05     # CI smoke scale
    python benchmarks/run_bench.py --check          # nonzero exit if compiled
                                                    # is slower on filter_project

Single-threaded executors and few partitions on purpose: the harness
measures per-row expression evaluation and row decoding, so engine
overhead (scheduling, shuffling) is kept off the critical path.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import codegen  # noqa: E402
from repro.config import Config  # noqa: E402
from repro.core import create_index, enable_indexing  # noqa: E402
from repro.sql import Session  # noqa: E402
from repro.sql.functions import col, count  # noqa: E402
from repro.sql.types import (  # noqa: E402
    DoubleType,
    LongType,
    StringType,
    StructField,
    StructType,
)

#: Rows at ``--scale 1.0``.
BASE_ROWS = 120_000
#: Point lookups per round of the index_lookup op.
BASE_LOOKUPS = 2_000

SCHEMA = StructType(
    [
        StructField("id", LongType()),
        StructField("score", DoubleType()),
        StructField("age", LongType()),
        StructField("name", StringType()),
        StructField("city", StringType()),
    ]
)

CITIES = ["amsterdam", "bremen", "cardiff", "dresden", "eindhoven", "florence"]


def make_rows(n: int, seed: int = 42) -> list[tuple]:
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        rows.append(
            (
                i,
                rng.random(),
                rng.randint(18, 90),
                f"person_{i:08d}",
                CITIES[i % len(CITIES)],
            )
        )
    return rows


def make_session(codegen_enabled: bool) -> Session:
    session = Session(
        Config(
            executor_threads=1,
            shuffle_partitions=2,
            default_parallelism=2,
            batch_size_bytes=1024 * 1024,
            codegen_enabled=codegen_enabled,
        )
    )
    enable_indexing(session)
    return session


def build_ops(rows: list[tuple], lookups: int, codegen_enabled: bool) -> dict:
    """``op name → (callable, rows processed per call)``.

    Each callable runs a complete query (plan + execute + materialize)
    against a session configured for one evaluation mode.
    """
    session = make_session(codegen_enabled)
    df = session.create_dataframe(rows, SCHEMA, validate=False).cache()
    indexed = create_index(df, "id")
    keys = [row[0] for row in rows[:: max(1, len(rows) // lookups)]][:lookups]

    def filter_project() -> int:
        out = (
            df.filter((col("score") > 0.25) & (col("age") < 80))
            .select(
                col("name"),
                (col("score") * col("age")).alias("weighted"),
            )
            .collect_tuples()
        )
        return len(out)

    def lookup_scan() -> int:
        # Full decode of the indexed row batches back to tuples — the
        # transformToRowRDD path every non-indexed operator rides on.
        return len(indexed.to_df().collect_tuples())

    def index_lookup() -> int:
        # One engine query with an IN-list of keys: the optimizer
        # rewrites it to IndexLookupExec, whose per-partition probe is
        # the cTrie walk + (bulk) row decode.
        return len(
            indexed.to_df()
            .filter(col("id").isin(*keys))
            .collect_tuples()
        )

    def hash_aggregate() -> int:
        return len(
            df.group_by("city").agg(count().alias("n")).collect_tuples()
        )

    return {
        "filter_project": (filter_project, len(rows)),
        "lookup_scan": (lookup_scan, len(rows)),
        "index_lookup": (index_lookup, len(keys)),
        "hash_aggregate": (hash_aggregate, len(rows)),
    }


#: First line of the schema section in figures.txt — run_bench refreshes
#: everything from this marker on; the pytest bench suite (conftest.py)
#: preserves it when rewriting the figure tables above it.
SCHEMA_MARKER = "==== BENCH_PR2.json schema ===="

SCHEMA_DOC = (
    SCHEMA_MARKER
    + """
Written by benchmarks/run_bench.py to BENCH_PR2.json at the repo root.

{
  "meta": {
    "bench":   harness title,
    "scale":   row-count multiplier (1.0 = 120000 rows),
    "rows":    rows in the benchmark dataset,
    "lookups": keys in the index_lookup IN-list,
    "rounds":  timed rounds per op (median reported),
    "seed":    RNG seed for row generation,
    "python":  interpreter version,
    "codegen": {"compiled": <kernels compiled>,
                "fallbacks": <interpreter fallbacks>}
  },
  "ops": {
    <op>: {          # filter_project | lookup_scan | index_lookup |
                     # hash_aggregate
      "rows":                   rows processed per call,
      "rounds":                 timed rounds,
      "interpreted_ms":         median latency, codegen_enabled=False,
      "compiled_ms":            median latency, codegen_enabled=True,
      "speedup":                interpreted_ms / compiled_ms,
      "interpreted_rows_per_s": throughput at the interpreted median,
      "compiled_rows_per_s":    throughput at the compiled median
    }
  }
}

Regenerate: python benchmarks/run_bench.py [--scale F] [--rounds N]
[--seed N] [--out PATH] [--check]. --check exits nonzero if the
compiled path is slower than interpreted on filter_project.
"""
)


def ensure_schema_doc(path: Path) -> None:
    """Refresh the schema section at the end of ``figures.txt``.

    Everything before the marker (the figure tables the pytest bench
    suite writes) is left alone.
    """
    text = path.read_text() if path.exists() else ""
    marker_at = text.find(SCHEMA_MARKER)
    if marker_at != -1:
        text = text[:marker_at]
    head = text.rstrip()
    if head:
        head += "\n\n"
    path.write_text(head + SCHEMA_DOC)


def time_op(fn, rounds: int) -> list[float]:
    fn()  # warmup: compile kernels, populate caches, settle allocator
    samples = []
    for _ in range(rounds):
        # Each round materializes row lists large enough to trigger
        # collection mid-sample; collect between rounds and keep the
        # collector out of the timed region so medians are stable.
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            samples.append((time.perf_counter() - start) * 1000.0)
        finally:
            gc.enable()
    return samples


def run(scale: float, rounds: int, seed: int) -> dict:
    n = max(1000, int(BASE_ROWS * scale))
    lookups = max(50, int(BASE_LOOKUPS * scale))
    rows = make_rows(n, seed)

    interpreted = build_ops(rows, lookups, codegen_enabled=False)
    compiled = build_ops(rows, lookups, codegen_enabled=True)
    codegen.reset_stats()

    ops: dict[str, dict] = {}
    for name in interpreted:
        fn_i, work = interpreted[name]
        fn_c, _ = compiled[name]
        med_i = statistics.median(time_op(fn_i, rounds))
        med_c = statistics.median(time_op(fn_c, rounds))
        ops[name] = {
            "rows": work,
            "rounds": rounds,
            "interpreted_ms": round(med_i, 3),
            "compiled_ms": round(med_c, 3),
            "speedup": round(med_i / med_c, 3) if med_c > 0 else None,
            "interpreted_rows_per_s": round(work / (med_i / 1000.0)) if med_i > 0 else None,
            "compiled_rows_per_s": round(work / (med_c / 1000.0)) if med_c > 0 else None,
        }
        print(
            f"{name:16s} interpreted {med_i:9.2f} ms   "
            f"compiled {med_c:9.2f} ms   speedup {ops[name]['speedup']:.2f}x"
        )

    stats = codegen.stats()
    return {
        "meta": {
            "bench": "PR2 interpreted-vs-compiled operator microbenchmarks",
            "scale": scale,
            "rows": n,
            "lookups": lookups,
            "rounds": rounds,
            "seed": seed,
            "python": sys.version.split()[0],
            "codegen": {"compiled": stats.compiled, "fallbacks": stats.fallbacks},
        },
        "ops": ops,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="row-count multiplier (1.0 = %d rows)" % BASE_ROWS)
    parser.add_argument("--rounds", type=int, default=5,
                        help="timed rounds per op (median reported)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_PR2.json")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if the compiled path is slower than "
                             "interpreted on the filter_project op")
    args = parser.parse_args(argv)

    result = run(args.scale, args.rounds, args.seed)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    ensure_schema_doc(Path(__file__).resolve().parent / "figures.txt")

    if args.check:
        speedup = result["ops"]["filter_project"]["speedup"]
        if speedup is None or speedup < 1.0:
            print(
                f"REGRESSION: compiled filter_project is slower than "
                f"interpreted (speedup {speedup})",
                file=sys.stderr,
            )
            return 1
        print(f"check ok: filter_project speedup {speedup:.2f}x >= 1.0")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
