#!/usr/bin/env python
"""Benchmark-regression harness: interpreted vs compiled hot paths, and
statistics-driven adaptive execution vs static plans.

Two suites share the harness (``--suite``):

* ``pr2`` (default) — the Figure-2-style operator microbenchmarks run
  twice, with ``Config.codegen_enabled`` off then on (interpreted
  row-at-a-time vs compiled batch kernels). Writes ``BENCH_PR2.json``.
* ``pr3`` — the statistics/adaptivity benchmarks run twice, with
  ``zone_maps_enabled``/``adaptive_enabled`` off then on: a selective
  range scan (zone-map batch skipping), a skewed-shuffle aggregate
  (reduce-partition coalescing), and a small-probe join the optimizer
  misestimates (runtime broadcast replanning). Writes
  ``BENCH_PR3.json`` with pruning counters and plan markers embedded.
* ``pr5`` — the durability overhead/recovery benchmarks: micro-batch
  append throughput with durability off, on, and on-without-fsync
  (the WAL-append overhead the paper's update path would pay), plus
  cold-recovery latency from WAL replay vs from a checkpoint at two
  dataset sizes. Writes ``BENCH_PR5.json``.
* ``pr6`` — the closed-loop concurrent-serving benchmark: several
  worker threads issue a mixed lookup/analytic/scan stream (with a
  concurrent appender, the paper's updatable-data scenario) in three
  modes — ungoverned ``.sql()``, governed ``.serve()`` with a
  deliberately undersized admission pool, and governed under the
  serving chaos profile. Reports p50/p99 latency and the typed
  outcome mix. Writes ``BENCH_PR6.json``.
* ``pr8`` — the bitmap-index planner A/B: multi-predicate selective
  scans where the costed bitmap-AND plan races the cTrie IN-list
  lookup and the zone-map-pruned scan over the same rows, plus the
  shared-arrangement run (one build, every later consumer shares by
  reference). Writes ``BENCH_PR8.json`` with EXPLAIN markers and
  registry counters embedded.

All JSON schemas are documented in ``benchmarks/figures.txt``.
Every suite stamps ``cpu_count`` and host identity into ``meta``.

Usage::

    python benchmarks/run_bench.py                  # pr2, writes BENCH_PR2.json
    python benchmarks/run_bench.py --suite pr3      # writes BENCH_PR3.json
    python benchmarks/run_bench.py --scale 0.05     # CI smoke scale
    python benchmarks/run_bench.py --check          # nonzero exit on regression
                                                    # (per-suite criteria below)

Single-threaded executors and few partitions for pr2 on purpose: it
measures per-row expression evaluation and row decoding, so engine
overhead (scheduling, shuffling) is kept off the critical path. pr3
deliberately re-enables that overhead — task fan-out and exchange
shape are exactly what adaptivity optimizes.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import codegen  # noqa: E402
from repro.config import Config  # noqa: E402
from repro.core import create_index, enable_indexing  # noqa: E402
from repro.sql import Session  # noqa: E402
from repro.sql.functions import col, count  # noqa: E402
from repro.sql.types import (  # noqa: E402
    DoubleType,
    LongType,
    StringType,
    StructField,
    StructType,
)

#: Rows at ``--scale 1.0``.
BASE_ROWS = 120_000
#: Point lookups per round of the index_lookup op.
BASE_LOOKUPS = 2_000

SCHEMA = StructType(
    [
        StructField("id", LongType()),
        StructField("score", DoubleType()),
        StructField("age", LongType()),
        StructField("name", StringType()),
        StructField("city", StringType()),
    ]
)

CITIES = ["amsterdam", "bremen", "cardiff", "dresden", "eindhoven", "florence"]


def make_rows(n: int, seed: int = 42) -> list[tuple]:
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        rows.append(
            (
                i,
                rng.random(),
                rng.randint(18, 90),
                f"person_{i:08d}",
                CITIES[i % len(CITIES)],
            )
        )
    return rows


def host_meta() -> dict:
    """Host identification stamped into every ``BENCH_*.json`` meta.

    ``--check`` thresholds are hardware-aware (pr7 scales its speedup
    floor by core count, pr8 relaxes on single-core hosts), so every
    committed figure must say what hardware produced it.
    """
    import os
    import platform

    return {
        "cpu_count": os.cpu_count() or 1,
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python_implementation": platform.python_implementation(),
        },
    }


def make_session(codegen_enabled: bool) -> Session:
    session = Session(
        Config(
            executor_threads=1,
            shuffle_partitions=2,
            default_parallelism=2,
            batch_size_bytes=1024 * 1024,
            codegen_enabled=codegen_enabled,
        )
    )
    enable_indexing(session)
    return session


def build_ops(rows: list[tuple], lookups: int, codegen_enabled: bool) -> dict:
    """``op name → (callable, rows processed per call)``.

    Each callable runs a complete query (plan + execute + materialize)
    against a session configured for one evaluation mode.
    """
    session = make_session(codegen_enabled)
    df = session.create_dataframe(rows, SCHEMA, validate=False).cache()
    indexed = create_index(df, "id")
    keys = [row[0] for row in rows[:: max(1, len(rows) // lookups)]][:lookups]

    def filter_project() -> int:
        out = (
            df.filter((col("score") > 0.25) & (col("age") < 80))
            .select(
                col("name"),
                (col("score") * col("age")).alias("weighted"),
            )
            .collect_tuples()
        )
        return len(out)

    def lookup_scan() -> int:
        # Full decode of the indexed row batches back to tuples — the
        # transformToRowRDD path every non-indexed operator rides on.
        return len(indexed.to_df().collect_tuples())

    def index_lookup() -> int:
        # One engine query with an IN-list of keys: the optimizer
        # rewrites it to IndexLookupExec, whose per-partition probe is
        # the cTrie walk + (bulk) row decode.
        return len(
            indexed.to_df()
            .filter(col("id").isin(*keys))
            .collect_tuples()
        )

    def hash_aggregate() -> int:
        return len(
            df.group_by("city").agg(count().alias("n")).collect_tuples()
        )

    return {
        "filter_project": (filter_project, len(rows)),
        "lookup_scan": (lookup_scan, len(rows)),
        "index_lookup": (index_lookup, len(keys)),
        "hash_aggregate": (hash_aggregate, len(rows)),
    }


# ----------------------------------------------------------------------
# PR3 suite: statistics-driven adaptive execution vs static plans
# ----------------------------------------------------------------------


def make_adaptive_session(enabled: bool) -> Session:
    """A session with the statistics/adaptivity layer on or off.

    Unlike the pr2 sessions, shuffle fan-out is deliberately large
    (32 reduce partitions) and batches small (4 KiB → many zone-map
    zones per partition even at smoke scale): the suite measures how
    much work statistics can *skip*, so there must be skippable work.
    The broadcast threshold is low enough that the planner's row/2
    aggregate estimate always rules broadcast out statically, leaving
    the decision to the runtime row count.
    """
    session = Session(
        Config(
            executor_threads=2,
            shuffle_partitions=32,
            default_parallelism=2,
            batch_size_bytes=4 * 1024,
            broadcast_threshold=64,
            zone_maps_enabled=enabled,
            adaptive_enabled=enabled,
        )
    )
    enable_indexing(session)
    return session


def build_adaptive_ops(rows: list[tuple], enabled: bool) -> tuple[dict, Session]:
    """``op name → (callable, rows processed per call)`` for one mode."""
    session = make_adaptive_session(enabled)
    df = session.create_dataframe(rows, SCHEMA, validate=False).cache()
    indexed = create_index(df, "id")
    n = len(rows)
    # ~1% of the id domain; ids arrive in order per hash partition, so
    # each partition's batches hold tight id ranges and zone maps can
    # skip all but the overlapping ones.
    lo = n // 2
    hi = lo + max(1, n // 100)

    def selective_range_scan() -> int:
        return len(
            indexed.to_df()
            .filter((col("id") >= lo) & (col("id") < hi))
            .collect_tuples()
        )

    def skewed_shuffle_aggregate() -> int:
        # 6 group keys fanned out over 32 reduce partitions: most
        # buckets are empty or tiny, the shape coalescing collapses.
        return len(df.group_by("city").agg(count().alias("n")).collect_tuples())

    small = df.group_by("city").agg(count().alias("n"))

    def small_probe_join() -> int:
        # The optimizer estimates the aggregate at rows/2 — far over
        # broadcast_threshold — so the static plan shuffles. At runtime
        # the build side is 6 rows; adaptive replans to broadcast.
        joined = df.join(small, on=df.col("city") == small.col("city"))
        return len(joined.collect_tuples())

    ops = {
        "selective_range_scan": (selective_range_scan, n),
        "skewed_shuffle_aggregate": (skewed_shuffle_aggregate, n),
        "small_probe_join": (small_probe_join, n),
    }
    return ops, session


def _adaptive_markers(session: Session, rows: list[tuple]) -> dict:
    """Re-run each op once on ``session`` and capture the evidence:
    pruning counters, coalescing counters, and the runtime join
    decision marker from the executed physical plan."""
    df = session.create_dataframe(rows, SCHEMA, validate=False).cache()
    indexed = create_index(df, "id")
    n = len(rows)
    lo = n // 2
    hi = lo + max(1, n // 100)

    before = session.ctx.pruning_metrics.snapshot()
    scan = indexed.to_df().filter((col("id") >= lo) & (col("id") < hi))
    scan.collect_tuples()
    after = session.ctx.pruning_metrics.snapshot()
    pruning = {k: after[k] - before[k] for k in after}

    sched_before = session.ctx.scheduler.metrics.snapshot()
    df.group_by("city").agg(count().alias("n")).collect_tuples()
    small = df.group_by("city").agg(count().alias("n"))
    joined = df.join(small, on=df.col("city") == small.col("city"))
    joined.collect_tuples()
    sched_after = session.ctx.scheduler.metrics.snapshot()
    plan = joined.last_execution_plan() or ""
    decision = "none"
    for line in plan.splitlines():
        if "AdaptiveJoin" in line:
            decision = line.strip()
            break
    return {
        "pruning": pruning,
        "coalesced_shuffles": (
            sched_after["coalesced_shuffles"] - sched_before["coalesced_shuffles"]
        ),
        "coalesced_partitions": (
            sched_after["coalesced_partitions"] - sched_before["coalesced_partitions"]
        ),
        "runtime_broadcast_joins": (
            sched_after["runtime_broadcast_joins"]
            - sched_before["runtime_broadcast_joins"]
        ),
        "join_decision": decision,
    }


def run_pr3(scale: float, rounds: int, seed: int) -> dict:
    n = max(1000, int(BASE_ROWS * scale))
    rows = make_rows(n, seed)

    static_ops, static_session = build_adaptive_ops(rows, enabled=False)
    adaptive_ops, adaptive_session = build_adaptive_ops(rows, enabled=True)

    ops: dict[str, dict] = {}
    for name in static_ops:
        fn_s, work = static_ops[name]
        fn_a, _ = adaptive_ops[name]
        med_s = statistics.median(time_op(fn_s, rounds))
        med_a = statistics.median(time_op(fn_a, rounds))
        ops[name] = {
            "rows": work,
            "rounds": rounds,
            "static_ms": round(med_s, 3),
            "adaptive_ms": round(med_a, 3),
            "speedup": round(med_s / med_a, 3) if med_a > 0 else None,
            "static_rows_per_s": round(work / (med_s / 1000.0)) if med_s > 0 else None,
            "adaptive_rows_per_s": round(work / (med_a / 1000.0)) if med_a > 0 else None,
        }
        print(
            f"{name:24s} static {med_s:9.2f} ms   "
            f"adaptive {med_a:9.2f} ms   speedup {ops[name]['speedup']:.2f}x"
        )

    markers = _adaptive_markers(adaptive_session, rows)
    static_session.stop()
    adaptive_session.stop()
    return {
        "meta": {
            "bench": "PR3 statistics-driven adaptive execution vs static plans",
            "scale": scale,
            "rows": n,
            "rounds": rounds,
            "seed": seed,
            "python": sys.version.split()[0],
            "markers": markers,
        },
        "ops": ops,
    }


def check_pr3(result: dict) -> int:
    """Nonzero when the adaptivity evidence is missing.

    Speedups vary with machine load at smoke scale, but the *decisions*
    must fire at any scale: the selective scan must skip batches and
    the small-probe join must replan to broadcast at runtime.
    """
    markers = result["meta"]["markers"]
    failures = []
    if markers["pruning"]["batches_pruned"] <= 0:
        failures.append(
            "selective_range_scan pruned zero batches "
            f"(pruning counters: {markers['pruning']})"
        )
    if markers["runtime_broadcast_joins"] <= 0 or (
        "decision=broadcast" not in markers["join_decision"]
    ):
        failures.append(
            "small_probe_join was not replanned to broadcast at runtime "
            f"(decision: {markers['join_decision']!r})"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(
            "check ok: "
            f"batches_pruned={markers['pruning']['batches_pruned']}, "
            f"coalesced_partitions={markers['coalesced_partitions']}, "
            f"join {markers['join_decision']}"
        )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# PR5 suite: WAL append overhead and cold-recovery latency
# ----------------------------------------------------------------------


def make_durable_session(root: Path | str | None, fsync: bool) -> Session:
    """A session for the durability A/B. Checkpoint thresholds are
    parked at infinity so the background checkpointer never races the
    timed appends — checkpoints in this suite are explicit."""
    options: dict = {}
    if root is not None:
        options = dict(
            durability_enabled=True,
            durability_dir=str(root),
            wal_fsync=fsync,
            wal_checkpoint_bytes=1 << 40,
            wal_checkpoint_age_s=1e9,
        )
    session = Session(
        Config(
            executor_threads=1,
            shuffle_partitions=2,
            default_parallelism=2,
            batch_size_bytes=1024 * 1024,
            **options,
        )
    )
    enable_indexing(session)
    return session


def _timed_append(session: Session, rows: list[tuple], batch: int) -> float:
    """Build an (optionally durable) index and append ``rows`` in
    micro-batches of ``batch``; returns elapsed milliseconds for the
    append loop only (the paper's low-latency update path)."""
    durable = session.durability is not None
    df = session.create_dataframe([], SCHEMA, validate=False)
    indexed = create_index(df, "id", durable_name="bench" if durable else None)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for at in range(0, len(rows), batch):
            indexed = indexed.append_rows(rows[at : at + batch])
        return (time.perf_counter() - start) * 1000.0
    finally:
        gc.enable()


def run_pr5(scale: float, rounds: int, seed: int) -> dict:
    import shutil
    import tempfile

    n = max(1000, int(BASE_ROWS * scale))
    rows = make_rows(n, seed)
    batch = max(50, n // 100)  # ~100 micro-batches, Kafka-step sized

    modes = {
        "plain": dict(root=False, fsync=False),
        "durable_fsync": dict(root=True, fsync=True),
        "durable_nofsync": dict(root=True, fsync=False),
    }
    append_ms: dict[str, float] = {}
    wal_bytes = 0
    staging = Path(tempfile.mkdtemp(prefix="repro-bench-pr5-"))
    try:
        for mode, spec in modes.items():
            samples = []
            for round_no in range(rounds):
                root = staging / f"{mode}-{round_no}" if spec["root"] else None
                session = make_durable_session(root, spec["fsync"])
                try:
                    samples.append(_timed_append(session, rows, batch))
                    if root is not None:
                        wal_bytes = session.durability.store("bench").wal_bytes()
                finally:
                    session.stop()
            append_ms[mode] = statistics.median(samples)
            print(f"append/{mode:16s} {append_ms[mode]:9.2f} ms")

        # Cold recovery: one durable store per size, timed twice — first
        # replaying the WAL, then from an explicit checkpoint.
        recovery: dict[str, dict] = {}
        for label, frac in (("quarter", 0.25), ("full", 1.0)):
            subset = rows[: max(1, int(n * frac))]
            root = staging / f"recover-{label}"
            seed_session = make_durable_session(root, fsync=False)
            try:
                _timed_append(seed_session, subset, batch)
                size_wal = seed_session.durability.store("bench").wal_bytes()
            finally:
                seed_session.stop()
            entry: dict = {"rows": len(subset), "wal_bytes": size_wal}
            for phase in ("wal_replay", "checkpoint"):
                samples = []
                recovered_rows = 0
                for _ in range(rounds):
                    session = make_durable_session(root, fsync=False)
                    try:
                        gc.collect()
                        start = time.perf_counter()
                        recovered = session.durability.recover("bench")
                        samples.append((time.perf_counter() - start) * 1000.0)
                        recovered_rows = recovered.count()
                    finally:
                        session.stop()
                entry[f"{phase}_ms"] = round(statistics.median(samples), 3)
                entry[f"{phase}_rows_ok"] = recovered_rows == len(subset)
                if phase == "wal_replay":
                    # Convert the store for the second timing pass.
                    session = make_durable_session(root, fsync=False)
                    try:
                        session.durability.recover("bench")
                        session.durability.store("bench").checkpoint()
                    finally:
                        session.stop()
            recovery[label] = entry
            print(
                f"recover/{label:8s} {entry['rows']:7d} rows   "
                f"wal {entry['wal_replay_ms']:8.2f} ms   "
                f"checkpoint {entry['checkpoint_ms']:8.2f} ms"
            )
    finally:
        shutil.rmtree(staging, ignore_errors=True)

    def ratio(a: float, b: float):
        return round(a / b, 3) if b > 0 else None

    return {
        "meta": {
            "bench": "PR5 WAL append overhead and cold-recovery latency",
            "scale": scale,
            "rows": n,
            "batch_rows": batch,
            "rounds": rounds,
            "seed": seed,
            "python": sys.version.split()[0],
            "wal_bytes_full_run": wal_bytes,
        },
        "append": {
            "plain_ms": round(append_ms["plain"], 3),
            "durable_fsync_ms": round(append_ms["durable_fsync"], 3),
            "durable_nofsync_ms": round(append_ms["durable_nofsync"], 3),
            "fsync_overhead": ratio(append_ms["durable_fsync"], append_ms["plain"]),
            "nofsync_overhead": ratio(
                append_ms["durable_nofsync"], append_ms["plain"]
            ),
            "rows_per_s_plain": (
                round(n / (append_ms["plain"] / 1000.0))
                if append_ms["plain"] > 0 else None
            ),
            "rows_per_s_durable_fsync": (
                round(n / (append_ms["durable_fsync"] / 1000.0))
                if append_ms["durable_fsync"] > 0 else None
            ),
        },
        "recovery": recovery,
    }


def check_pr5(result: dict) -> int:
    """Nonzero when the durability evidence is missing or wrong.

    Latency ratios vary with the disk under the runner, but the
    *correctness* markers must hold at any scale: every recovery pass
    restored exactly the appended rows, and the durable run actually
    wrote a WAL.
    """
    failures = []
    if result["meta"]["wal_bytes_full_run"] <= 0:
        failures.append("durable append wrote an empty WAL")
    for label, entry in result["recovery"].items():
        for phase in ("wal_replay", "checkpoint"):
            if not entry[f"{phase}_rows_ok"]:
                failures.append(
                    f"recovery/{label} via {phase} lost or duplicated rows"
                )
    overhead = result["append"]["fsync_overhead"]
    if overhead is None or overhead <= 0:
        failures.append(f"no measurable durable append overhead ({overhead})")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"check ok: fsync overhead {overhead:.2f}x, "
            f"recovery counts verified at "
            f"{sorted(result['recovery'])} sizes"
        )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# PR6 suite: closed-loop concurrent serving under admission control
# ----------------------------------------------------------------------

#: Concurrent closed-loop workers per mode.
PR6_WORKERS = 6
#: Governed modes run with this many slots — fewer than the workers on
#: purpose, so the admission controller has real shedding to do.
PR6_SLOTS = 2


def make_serving_bench_session(mode: str, seed: int) -> Session:
    """One session per serving mode.

    ``static`` is the ungoverned baseline (plain ``.sql()``, serving
    layer never constructed). The governed modes undersize the pool
    (2 slots, depth-2 queue, 50 ms queue timeout) relative to the 6
    workers so overload shedding actually fires; ``governed_chaos``
    adds the overload fault mix on top with a capped fire budget so the
    run drains back to health.
    """
    options: dict = {}
    if mode != "static":
        options.update(
            serving_enabled=True,
            serving_max_concurrent=PR6_SLOTS,
            serving_queue_depth=2,
            serving_queue_timeout_s=0.05,
            serving_default_deadline_s=30.0,
        )
    if mode == "governed_chaos":
        from repro.faults import serving_chaos_profile

        options["faults"] = serving_chaos_profile(seed=seed, max_fires_per_site=8)
        options["task_max_retries"] = 2
        options["retry_backoff_s"] = 0.001
    session = Session(
        Config(
            executor_threads=2,
            shuffle_partitions=4,
            default_parallelism=2,
            batch_size_bytes=64 * 1024,
            **options,
        )
    )
    enable_indexing(session)
    return session


def _percentile(sorted_ms: list[float], q: float) -> float | None:
    if not sorted_ms:
        return None
    at = min(len(sorted_ms) - 1, int(round(q * (len(sorted_ms) - 1))))
    return round(sorted_ms[at], 3)


def _run_serving_mode(mode: str, rows: list[tuple], ops: int, seed: int) -> dict:
    """One closed-loop run: PR6_WORKERS threads, ``ops`` queries each,
    plus a concurrent appender. Returns latency percentiles over the
    completed queries and the full typed-outcome mix."""
    import threading

    from repro.errors import (
        QueryCancelledError,
        QueryRejectedError,
        ReproError,
    )

    session = make_serving_bench_session(mode, seed)
    n = len(rows)
    try:
        df = session.create_dataframe(rows, SCHEMA, validate=False).cache()
        indexed = create_index(df, "id")
        session.create_or_replace_temp_view("t", indexed.to_df())

        lock = threading.Lock()
        latencies: list[float] = []
        shed_ms: list[float] = []
        outcomes = {
            "completed": 0,
            "rejected": 0,
            "cancelled": 0,
            "failed": 0,
            "untyped": 0,
            "appender_untyped": 0,
        }
        stop_appender = threading.Event()

        def query_text(worker_id: int, i: int) -> str:
            kind = (worker_id + i) % 3
            if kind == 0:
                key = (worker_id * 131 + i * 17) % n
                return f"SELECT id, name FROM t WHERE id = {key}"
            if kind == 1:
                return "SELECT city, count(*) AS c FROM t GROUP BY city"
            return "SELECT count(*) AS c FROM t WHERE score > 0.5"

        def work(worker_id: int) -> None:
            for i in range(ops):
                text = query_text(worker_id, i)
                start = time.perf_counter()
                try:
                    if mode == "static":
                        session.sql(text).collect()
                    else:
                        session.serve(text, tenant=f"t{worker_id % 2}")
                    elapsed = (time.perf_counter() - start) * 1000.0
                    with lock:
                        outcomes["completed"] += 1
                        latencies.append(elapsed)
                except QueryRejectedError:
                    elapsed = (time.perf_counter() - start) * 1000.0
                    with lock:
                        outcomes["rejected"] += 1
                        shed_ms.append(elapsed)
                except QueryCancelledError:
                    with lock:
                        outcomes["cancelled"] += 1
                except ReproError:
                    with lock:
                        outcomes["failed"] += 1
                except BaseException:  # noqa: BLE001 - the check criterion
                    with lock:
                        outcomes["untyped"] += 1

        def append_loop() -> None:
            # The paper's scenario: micro-batch updates racing the
            # queries. Typed failures are fine (chaos mode crashes
            # tasks); untyped ones count against the run.
            live = indexed
            batch_no = 0
            while not stop_appender.is_set():
                batch = [
                    (n + batch_no * 20 + i, 0.5, 30, f"new_{batch_no}_{i}", "ghent")
                    for i in range(20)
                ]
                try:
                    live = live.append_rows(batch)
                except (ReproError, QueryCancelledError):
                    pass
                except BaseException:  # noqa: BLE001
                    with lock:
                        outcomes["appender_untyped"] += 1
                batch_no += 1

        threads = [
            threading.Thread(target=work, args=(w,)) for w in range(PR6_WORKERS)
        ]
        appender = threading.Thread(target=append_loop)
        start = time.perf_counter()
        appender.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)
        stop_appender.set()
        appender.join(timeout=60.0)
        wall_s = time.perf_counter() - start

        hung = sum(t.is_alive() for t in threads) + appender.is_alive()
        latencies.sort()
        shed_ms.sort()
        entry = {
            "workers": PR6_WORKERS,
            "ops_per_worker": ops,
            "wall_s": round(wall_s, 3),
            "qps": (
                round(outcomes["completed"] / wall_s, 2) if wall_s > 0 else None
            ),
            "p50_ms": _percentile(latencies, 0.50),
            "p99_ms": _percentile(latencies, 0.99),
            "max_ms": _percentile(latencies, 1.0),
            "shed_p99_ms": _percentile(shed_ms, 0.99),
            "outcomes": outcomes,
            "hung_threads": hung,
        }
        if mode != "static":
            stats = session.serving.stats()
            entry["drained"] = (
                stats["admission"]["running"] == 0
                and stats["admission"]["queued"] == 0
                and stats["memory"]["active_queries"] == 0
                and stats["memory"]["total_bytes"] == 0
            )
            entry["serving"] = stats["serving"]
            entry["peak_queue_depth"] = stats["admission"]["peak_queue_depth"]
            entry["breaker_states"] = {
                site: snap["state"] for site, snap in stats["breakers"].items()
            }
        return entry
    finally:
        session.stop()


def run_pr6(scale: float, rounds: int, seed: int) -> dict:
    # Serving measures per-query latency under concurrency, not bulk
    # scan throughput: a tenth of the pr2 dataset keeps each analytic
    # query in the tens-of-milliseconds band where queueing behavior —
    # not row decoding — dominates the percentiles.
    n = max(800, int(BASE_ROWS * scale * 0.1))
    ops = max(4, rounds * 2)
    rows = make_rows(n, seed)

    modes: dict[str, dict] = {}
    for mode in ("static", "governed", "governed_chaos"):
        modes[mode] = _run_serving_mode(mode, rows, ops, seed)
        entry = modes[mode]
        p50 = entry["p50_ms"] if entry["p50_ms"] is not None else float("nan")
        p99 = entry["p99_ms"] if entry["p99_ms"] is not None else float("nan")
        print(
            f"{mode:16s} p50 {p50:8.2f} ms   p99 {p99:8.2f} ms   "
            f"outcomes {entry['outcomes']}"
        )

    return {
        "meta": {
            "bench": "PR6 closed-loop concurrent serving under admission control",
            "scale": scale,
            "rows": n,
            "workers": PR6_WORKERS,
            "slots": PR6_SLOTS,
            "ops_per_worker": ops,
            "rounds": rounds,
            "seed": seed,
            "python": sys.version.split()[0],
        },
        "modes": modes,
    }


def check_pr6(result: dict) -> int:
    """Nonzero when the overload-safety evidence is missing.

    Latency percentiles vary with the runner, but the safety properties
    must hold at any scale: every thread joins, every error is typed,
    the undersized governed pool actually sheds, and the governance
    accounting drains to zero afterwards.
    """
    failures = []
    total = result["meta"]["workers"] * result["meta"]["ops_per_worker"]
    for mode, entry in result["modes"].items():
        if entry["hung_threads"]:
            failures.append(f"{mode}: {entry['hung_threads']} thread(s) hung")
        untyped = (
            entry["outcomes"]["untyped"] + entry["outcomes"]["appender_untyped"]
        )
        if untyped:
            failures.append(f"{mode}: {untyped} untyped error(s)")
        # Conservation: every submitted query ended exactly once. The
        # appender may add untyped errors on its own thread, so only the
        # worker-loop buckets participate.
        mix = sum(
            entry["outcomes"][k]
            for k in ("completed", "rejected", "cancelled", "failed", "untyped")
        )
        if mix != total:
            failures.append(f"{mode}: outcome mix sums to {mix}, not {total}")
    static = result["modes"]["static"]
    if static["outcomes"]["completed"] != total:
        failures.append(
            "static baseline dropped queries "
            f"(completed {static['outcomes']['completed']}/{total})"
        )
    governed = result["modes"]["governed"]
    if governed["outcomes"]["rejected"] <= 0:
        failures.append(
            "governed mode shed nothing despite 6 workers on 2 slots"
        )
    for mode in ("governed", "governed_chaos"):
        if not result["modes"][mode].get("drained", False):
            failures.append(f"{mode}: governance accounting did not drain")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(
            "check ok: "
            f"governed shed {governed['outcomes']['rejected']}/{total}, "
            f"p99 static {static['p99_ms']} ms vs governed "
            f"{governed['p99_ms']} ms, all outcomes typed, accounting drained"
        )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# PR7 suite: multi-process sharded executors vs in-process execution
# ----------------------------------------------------------------------

#: The three op families of the acceptance target. Each returns a small
#: result (partial aggregates), so the timing isolates partitioned scan
#: + compute rather than driver-side result pickling.
PR7_OPS = {
    "scan": "SELECT sum(score), sum(age) FROM people",
    "filter": "SELECT count(*), sum(score) FROM people WHERE score > 0.25 AND age < 70",
    "aggregate": "SELECT city, count(*), sum(score) FROM people GROUP BY city",
}

PR7_WORKER_COUNTS = (2, 4)


def _pr7_session(executors: int, rows: list[tuple]) -> Session:
    session = Session(
        Config(
            executors=executors,
            executor_threads=4,
            shuffle_partitions=8,
            default_parallelism=8,
            batch_size_bytes=1024 * 1024,
        )
    )
    df = session.create_dataframe(
        rows,
        [
            ("id", "long"),
            ("score", "double"),
            ("age", "long"),
            ("name", "string"),
            ("city", "string"),
        ],
    )
    df.create_or_replace_temp_view("people")
    return session


def _pr7_measure(session: Session, rounds: int) -> tuple[dict, dict]:
    """Median latency and (sorted) results per op for one backend."""
    timings: dict[str, float] = {}
    results: dict[str, list] = {}
    for name, query in PR7_OPS.items():
        results[name] = sorted(session.sql(query).collect_tuples())
        samples = time_op(lambda q=query: session.sql(q).collect_tuples(), rounds)
        timings[name] = round(statistics.median(samples), 3)
    return timings, results


def _pr7_task_parity(session: Session) -> dict:
    """Hardware-independent evidence for the speedup claim.

    Captures one real dispatched scan task, runs it (a) directly on the
    driver and (b) through the full codec + worker-context path in this
    process, and compares. Parity ≈ 1.0 means a worker executes the
    shipped task exactly as fast as the driver would — so on a host
    with k cores the wall-clock speedup is bounded only by
    ``min(k, workers)`` and dispatch overhead, not by the codec or the
    shared-memory rebuild. (This container may be single-core; wall
    speedups below report what the hardware allows.)
    """
    import dataclasses as _dc

    from repro.cluster.codec import TaskCodec, loads_envelope
    from repro.cluster.worker import WorkerContext

    backend = session.ctx.backend
    captured: list[tuple] = []
    original = backend.run_task

    def capture(task, split):
        if not captured:
            captured.append((task, split))
        return original(task, split)

    backend.run_task = capture
    try:
        session.sql(PR7_OPS["scan"]).collect_tuples()
    finally:
        backend.run_task = original
    task, split = captured[0]

    task(split)  # warm driver-side caches
    start = time.perf_counter()
    task(split)
    driver_ms = (time.perf_counter() - start) * 1000.0

    codec = TaskCodec(session.ctx.ship_store)
    payload = codec.dumps_envelope(
        {
            "task": task,
            "split": split,
            "query": None,
            "plan": session.ctx.shuffle_manager.export_plan(),
        }
    )

    class _Flag:
        value = 0

    worker = WorkerContext(
        0, _dc.replace(session.config, executors=0, faults=None), _Flag()
    )
    try:
        worker.begin_task()
        envelope = loads_envelope(payload, worker)
        envelope["task"](envelope["split"])  # warm (attaches segments)
        worker.begin_task()
        envelope = loads_envelope(payload, worker)
        start = time.perf_counter()
        envelope["task"](envelope["split"])
        worker_ms = (time.perf_counter() - start) * 1000.0
    finally:
        worker.ship_cache.close()
    return {
        "driver_task_ms": round(driver_ms, 3),
        "worker_task_ms": round(worker_ms, 3),
        "ratio": round(worker_ms / driver_ms, 3) if driver_ms > 0 else None,
        "envelope_bytes": len(payload),
    }


def run_pr7(scale: float, rounds: int, seed: int) -> dict:
    import os

    # Larger than the pr2 dataset on purpose: each of the 8 partitions
    # must carry tens of milliseconds of decode+compute so process
    # dispatch overhead (one envelope per task) stays in the noise.
    n = max(1000, int(BASE_ROWS * scale * 4))
    rows = make_rows(n, seed)
    cores = os.cpu_count() or 1

    local = _pr7_session(0, rows)
    try:
        local_ms, local_results = _pr7_measure(local, rounds)
    finally:
        local.stop()
    print("local      " + "   ".join(f"{k} {v:8.1f} ms" for k, v in local_ms.items()))

    backends: dict[str, dict] = {}
    parity = None
    for workers in PR7_WORKER_COUNTS:
        session = _pr7_session(workers, rows)
        try:
            cluster_ms, cluster_results = _pr7_measure(session, rounds)
            if workers == PR7_WORKER_COUNTS[-1]:
                parity = _pr7_task_parity(session)
            stats = session.ctx.backend.stats()
        finally:
            session.stop()
        speedups = {
            name: round(local_ms[name] / cluster_ms[name], 3)
            for name in PR7_OPS
        }
        aggregate = round(
            sum(local_ms.values()) / sum(cluster_ms.values()), 3
        )
        backends[f"executors_{workers}"] = {
            "latency_ms": cluster_ms,
            "speedup": speedups,
            "aggregate_speedup": aggregate,
            "identical": cluster_results == local_results,
            "backend_stats": stats,
        }
        print(
            f"executors={workers}  "
            + "   ".join(f"{k} {v:8.1f} ms" for k, v in cluster_ms.items())
            + f"   aggregate speedup {aggregate:.2f}x"
        )

    return {
        "meta": {
            "bench": "PR7 multi-process sharded executors vs in-process",
            "scale": scale,
            "rows": n,
            "rounds": rounds,
            "seed": seed,
            "cpu_count": cores,
            "partitions": 8,
            "python": sys.version.split()[0],
        },
        "local_latency_ms": local_ms,
        "backends": backends,
        "task_parity": parity,
    }


def check_pr7(result: dict) -> int:
    """Nonzero when the cluster backend's evidence is missing.

    Wall-clock speedup is hardware-dependent — 4 workers on one core
    time-slice instead of parallelize — so the ≥2x aggregate-speedup
    criterion applies when the host has ≥4 cores (≥1.2x at 2 workers
    on 2-3 cores). The hardware-independent criteria always apply:
    results bit-identical, every task actually dispatched (no codec
    fallbacks on the query path), no worker deaths, and per-task
    worker/driver parity within 40% — which is what guarantees the
    speedup materializes once cores are available.
    """
    failures = []
    cores = result["meta"]["cpu_count"]
    for name, entry in result["backends"].items():
        if not entry["identical"]:
            failures.append(f"{name}: results diverged from in-process run")
        stats = entry["backend_stats"]
        if stats["tasks_dispatched"] == 0:
            failures.append(f"{name}: no tasks dispatched to workers")
        if stats["codec_fallbacks"]:
            failures.append(
                f"{name}: {stats['codec_fallbacks']} codec fallback(s) on "
                "the query path"
            )
        if stats["workers_lost"]:
            failures.append(f"{name}: {stats['workers_lost']} worker(s) lost")
    parity = result["task_parity"]
    if parity is None or parity["ratio"] is None or parity["ratio"] > 1.4:
        failures.append(
            f"worker/driver per-task parity out of bounds: {parity}"
        )
    four = result["backends"]["executors_4"]["aggregate_speedup"]
    two = result["backends"]["executors_2"]["aggregate_speedup"]
    if cores >= 4 and four < 2.0:
        failures.append(
            f"aggregate speedup at 4 workers is {four}x < 2.0x on a "
            f"{cores}-core host"
        )
    elif cores >= 2 and two < 1.2:
        failures.append(
            f"aggregate speedup at 2 workers is {two}x < 1.2x on a "
            f"{cores}-core host"
        )
    elif cores == 1 and four < 0.25:
        failures.append(
            f"single-core overhead is pathological ({four}x aggregate)"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"check ok: aggregate speedup {four}x at 4 workers on "
            f"{cores} core(s), task parity {parity['ratio']}, "
            "results identical"
        )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# PR8 suite: bitmap-AND vs cTrie lookup vs zone-map-pruned scan
# ----------------------------------------------------------------------

#: Concurrent consumers racing create_index in the sharing run.
PR8_CONSUMERS = 4
#: Sequential re-acquire timings after the first build.
PR8_SHARE_SAMPLES = 3


def _pr8_session(bitmap_enabled: bool) -> Session:
    """Single-threaded on purpose (like pr2): the suite measures rows
    touched per query, not parallelism. Zone maps stay on so the scan
    rival gets every pruning opportunity it has — the interleaved city
    assignment (``i % 6``) defeats them by construction, which is
    exactly the workload bitmap indexes exist for."""
    session = Session(
        Config(
            executor_threads=1,
            shuffle_partitions=4,
            default_parallelism=2,
            batch_size_bytes=256 * 1024,
            bitmap_indexes_enabled=bitmap_enabled,
        )
    )
    enable_indexing(session)
    return session


def _pr8_queries(indexed) -> dict:
    """The three measured predicate shapes over one indexed relation."""
    base = indexed.to_df()
    return {
        # One covered equality: BitmapScanExec (bitmap_chosen).
        "single_eq": base.filter(col("age") == 42),
        # Selective conjunction: BitmapIndexAndExec (bitmap_and) — the
        # headline op, raced against cTrie lookup and pruned scan.
        "and_eq": base.filter(
            (col("city") == "dresden") & (col("age") == 42)
        ),
        # Disjunction under a range residual: bitmap OR + AND program.
        "or_range": base.filter(
            ((col("city") == "bremen") | (col("city") == "cardiff"))
            & (col("age") >= 87)
        ),
    }


def _pr8_plan_marker(df) -> str:
    """The planner-decision line from the last executed physical plan."""
    plan = df.last_execution_plan() or ""
    for line in plan.splitlines():
        if any(
            needle in line
            for needle in ("bitmap_chosen", "bitmap_and", "index_rejected")
        ):
            return line.strip()
    return "none"


def run_pr8(scale: float, rounds: int, seed: int) -> dict:
    import threading

    from repro.index.registry import bitmap_registry

    n = max(1000, int(BASE_ROWS * scale))
    rows = make_rows(n, seed)
    registry = bitmap_registry()
    stores = []

    scan_session = _pr8_session(bitmap_enabled=False)
    bitmap_session = _pr8_session(bitmap_enabled=True)
    try:
        scan_df = scan_session.create_dataframe(
            rows, SCHEMA, validate=False
        ).cache()
        scan_indexed = create_index(scan_df, "id")
        bitmap_df = bitmap_session.create_dataframe(
            rows, SCHEMA, validate=False
        ).cache()
        bitmap_indexed = (
            create_index(bitmap_df, "id")
            .create_index("city")
            .create_index("age")
        )
        stores.append(bitmap_indexed.store)

        scan_q = _pr8_queries(scan_indexed)
        bitmap_q = _pr8_queries(bitmap_indexed)
        # The cTrie rival for the conjunctive query: the primary index
        # answers only key probes, so the application must maintain the
        # city → ids mapping itself and push it back as an IN-list; the
        # residual (age) still filters row by row after the probes.
        dresden_ids = [row[0] for row in rows if row[4] == "dresden"]
        ctrie_q = scan_indexed.to_df().filter(
            col("id").isin(*dresden_ids) & (col("age") == 42)
        )

        ops: dict[str, dict] = {}
        for name in scan_q:
            scan_rows = sorted(scan_q[name].collect_tuples())
            bitmap_rows = sorted(bitmap_q[name].collect_tuples())
            med_scan = statistics.median(
                time_op(lambda q=scan_q[name]: q.collect_tuples(), rounds)
            )
            med_bitmap = statistics.median(
                time_op(lambda q=bitmap_q[name]: q.collect_tuples(), rounds)
            )
            entry = {
                "rows": n,
                "selected": len(bitmap_rows),
                "rounds": rounds,
                "scan_ms": round(med_scan, 3),
                "bitmap_ms": round(med_bitmap, 3),
                "speedup_vs_scan": (
                    round(med_scan / med_bitmap, 3) if med_bitmap > 0 else None
                ),
                "identical": scan_rows == bitmap_rows,
            }
            if name == "and_eq":
                ctrie_rows = sorted(ctrie_q.collect_tuples())
                med_ctrie = statistics.median(
                    time_op(lambda: ctrie_q.collect_tuples(), rounds)
                )
                entry["ctrie_ms"] = round(med_ctrie, 3)
                entry["ctrie_keys"] = len(dresden_ids)
                entry["speedup_vs_ctrie"] = (
                    round(med_ctrie / med_bitmap, 3) if med_bitmap > 0 else None
                )
                entry["identical"] = (
                    entry["identical"] and ctrie_rows == bitmap_rows
                )
            ops[name] = entry
            line = (
                f"{name:12s} scan {med_scan:9.2f} ms   "
                f"bitmap {med_bitmap:9.2f} ms   "
                f"speedup {entry['speedup_vs_scan']:.2f}x"
            )
            if "ctrie_ms" in entry:
                line += (
                    f"   (ctrie {entry['ctrie_ms']:9.2f} ms, "
                    f"{entry['speedup_vs_ctrie']:.2f}x)"
                )
            print(line)

        markers = {name: _pr8_plan_marker(bitmap_q[name]) for name in bitmap_q}
        # index_rejected evidence: near-total selectivity makes the
        # per-row fetch cost dwarf the scan rival, so the planner must
        # fall back — visibly (EXPLAIN marker) and audibly (counters).
        before = bitmap_session.ctx.pruning_metrics.snapshot()
        rejected_q = bitmap_indexed.to_df().filter(col("age") >= 21)
        rejected_q.collect_tuples()
        after = bitmap_session.ctx.pruning_metrics.snapshot()
        markers["rejected"] = _pr8_plan_marker(rejected_q)
        markers["pruning"] = {k: after[k] - before[k] for k in after}

        # Shared-arrangement amortization: one fresh store, the first
        # create_index pays the backfill, every later consumer —
        # sequential re-acquires, then PR8_CONSUMERS racing threads on
        # an unindexed column — shares the maintained arrangement.
        share_df = bitmap_session.create_dataframe(rows, SCHEMA, validate=False)
        share_indexed = create_index(share_df, "id")
        stores.append(share_indexed.store)
        before_reg = registry.snapshot()
        start = time.perf_counter()
        share_indexed.create_index("city")
        build_ms = (time.perf_counter() - start) * 1000.0
        share_ms = []
        for _ in range(PR8_SHARE_SAMPLES):
            start = time.perf_counter()
            share_indexed.create_index("city")
            share_ms.append((time.perf_counter() - start) * 1000.0)
        mid_reg = registry.snapshot()

        barrier = threading.Barrier(PR8_CONSUMERS)
        durations = [0.0] * PR8_CONSUMERS

        def consumer(slot: int) -> None:
            barrier.wait()
            t = time.perf_counter()
            share_indexed.create_index("age")
            durations[slot] = (time.perf_counter() - t) * 1000.0

        threads = [
            threading.Thread(target=consumer, args=(slot,))
            for slot in range(PR8_CONSUMERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        after_reg = registry.snapshot()
        ranked = sorted(durations)
        med_share = statistics.median(share_ms)
        sharing = {
            "build_ms": round(build_ms, 3),
            "share_ms": round(med_share, 3),
            "amortization": round(build_ms / max(med_share, 1e-6), 1),
            "sequential": {
                "builds": mid_reg["builds"] - before_reg["builds"],
                "shares": mid_reg["shares"] - before_reg["shares"],
            },
            "concurrent": {
                "consumers": PR8_CONSUMERS,
                "builds": after_reg["builds"] - mid_reg["builds"],
                "shares": after_reg["shares"] - mid_reg["shares"],
                "first_ms": round(ranked[-1], 3),
                "rest_ms": round(statistics.median(ranked[:-1]), 3),
            },
            "registry": after_reg,
        }
        print(
            f"sharing      build {build_ms:9.2f} ms   "
            f"share {med_share:9.2f} ms   "
            f"concurrent builds={sharing['concurrent']['builds']} "
            f"shares={sharing['concurrent']['shares']}"
        )
    finally:
        for store in stores:
            registry.release(store)
        scan_session.stop()
        bitmap_session.stop()

    return {
        "meta": {
            "bench": "PR8 updatable bitmap indexes vs cTrie lookup and "
                     "pruned scan",
            "scale": scale,
            "rows": n,
            "rounds": rounds,
            "seed": seed,
            "python": sys.version.split()[0],
            "markers": markers,
        },
        "ops": ops,
        "sharing": sharing,
    }


def check_pr8(result: dict) -> int:
    """Nonzero when the bitmap evidence is missing.

    The decision evidence is hardware-independent and applies at any
    scale: the planner must choose each bitmap plan (EXPLAIN markers),
    reject the non-selective one with pruning counters recorded, return
    bit-identical rows on every path, and amortize index builds across
    consumers. The ≥3x speedup floors apply to committed full-scale
    figures (``scale >= 1.0``), relaxed to 2x on single-core hosts
    where loaded-machine timer noise dominates short medians.
    """
    failures = []
    meta = result["meta"]
    markers = meta["markers"]
    for op_name, needle in (
        ("single_eq", "bitmap_chosen=True"),
        ("and_eq", "bitmap_and=True"),
        ("or_range", "bitmap_and=True"),
    ):
        if needle not in markers[op_name]:
            failures.append(
                f"{op_name}: planner did not emit {needle} "
                f"(plan line: {markers[op_name]!r})"
            )
    if "index_rejected=" not in markers["rejected"]:
        failures.append(
            "non-selective predicate was not visibly rejected "
            f"(plan line: {markers['rejected']!r})"
        )
    if markers["pruning"].get("index_rejected", 0) <= 0:
        failures.append(
            "index_rejected fallback did not record pruning metrics "
            f"(counters: {markers['pruning']})"
        )
    for name, entry in result["ops"].items():
        if not entry["identical"]:
            failures.append(
                f"{name}: bitmap rows diverge from the scan/cTrie rows"
            )
    sharing = result["sharing"]
    sequential = sharing["sequential"]
    if sequential["builds"] != 1 or sequential["shares"] < PR8_SHARE_SAMPLES:
        failures.append(f"sequential sharing did not amortize: {sequential}")
    concurrent = sharing["concurrent"]
    if (
        concurrent["builds"] != 1
        or concurrent["shares"] != concurrent["consumers"] - 1
    ):
        failures.append(
            f"concurrent consumers did not share one arrangement: {concurrent}"
        )
    if sharing["registry"]["hits"] <= 0:
        failures.append("no planner decision used a shared arrangement")
    if meta["scale"] >= 1.0:
        cores = meta["cpu_count"]
        floor = 3.0 if cores >= 2 else 2.0
        and_eq = result["ops"]["and_eq"]
        for label in ("speedup_vs_scan", "speedup_vs_ctrie"):
            value = and_eq[label]
            if value is None or value < floor:
                failures.append(
                    f"and_eq {label} is {value}x < {floor}x on a "
                    f"{cores}-core host"
                )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        and_eq = result["ops"]["and_eq"]
        print(
            "check ok: bitmap-AND "
            f"{and_eq['speedup_vs_scan']}x vs scan, "
            f"{and_eq['speedup_vs_ctrie']}x vs cTrie; "
            f"sharing builds={sharing['concurrent']['builds']} "
            f"shares={sharing['concurrent']['shares']}"
        )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# PR10 suite: driver stall under injected hangs — heartbeats vs
# rpc-deadline-only detection
# ----------------------------------------------------------------------

#: Per-query shuffle over 40 keys; exact aggregate proves fenced
#: respawn + lineage recompute never lost or duplicated a row.
PR10_DATA = [(i % 40, i) for i in range(600)]
PR10_EXPECTED: dict[int, int] = {}
for _k, _v in PR10_DATA:
    PR10_EXPECTED[_k] = PR10_EXPECTED.get(_k, 0) + _v

#: The two detection variants under the identical hang schedule.
PR10_VARIANTS = {
    # Tight heartbeat: the monitor fences a hung worker in ~0.35 s.
    "heartbeats": dict(
        heartbeat_interval=0.02, heartbeat_timeout=0.35, rpc_deadline=None
    ),
    # No heartbeats: only the per-RPC deadline backstop (2 s) catches
    # the hang — this is the stall floor the monitor is beating.
    "deadline_only": dict(
        heartbeat_interval=0.0, rpc_deadline=2.0
    ),
}


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _pr10_config(seed: int, overrides: dict) -> Config:
    import dataclasses as _dc

    from repro.faults import FaultSchedule

    config = Config(
        executors=2,
        executor_threads=2,
        default_parallelism=4,
        shuffle_partitions=4,
        **overrides,
    )
    # Every map split's *first* attempt hangs its worker whole; the
    # retries and the reduce stage (higher attempt ordinals — the
    # per-split counter spans the job) run clean. Each query therefore
    # contains a fixed number of gray failures regardless of seed, and
    # the latency distribution isolates pure detection time.
    return _dc.replace(
        config,
        fault_schedule=FaultSchedule(seed=seed, hang_p=1.0, attempt_cap=1),
    )


def run_pr10(scale: float, rounds: int, seed: int) -> dict:
    from repro.engine.context import EngineContext

    queries = max(4, int(rounds * max(scale, 0.1)))
    variants: dict[str, dict] = {}
    for name, overrides in PR10_VARIANTS.items():
        samples: list[float] = []
        correct = True
        with EngineContext(_pr10_config(seed, overrides)) as ctx:
            for _ in range(queries):
                start = time.perf_counter()
                result = dict(
                    ctx.parallelize(PR10_DATA, 4)
                    .reduce_by_key(lambda a, b: a + b)
                    .collect()
                )
                samples.append((time.perf_counter() - start) * 1000.0)
                correct = correct and result == PR10_EXPECTED
            stats = ctx.backend.stats()
            trace = ctx.fault_injector.schedule_trace()
        variants[name] = {
            "queries": queries,
            "stall_p50_ms": round(_percentile(samples, 0.5), 1),
            "stall_p99_ms": round(_percentile(samples, 0.99), 1),
            "stall_max_ms": round(max(samples), 1),
            "correct": correct,
            "hangs_injected": stats["hangs_injected"],
            "heartbeat_fences": stats["heartbeat_fences"],
            "rpc_timeouts": stats["rpc_timeouts"],
            "schedule_fires": len(trace),
            "backend_stats": stats,
        }
        print(
            f"{name:14s} p50 {variants[name]['stall_p50_ms']:8.1f} ms   "
            f"p99 {variants[name]['stall_p99_ms']:8.1f} ms   "
            f"hangs {stats['hangs_injected']}   "
            f"fences {stats['heartbeat_fences']}   "
            f"rpc timeouts {stats['rpc_timeouts']}"
        )
    heart = variants["heartbeats"]["stall_p99_ms"]
    deadline = variants["deadline_only"]["stall_p99_ms"]
    return {
        "meta": {
            "bench": "PR10 gray-failure liveness: heartbeat vs deadline-only "
            "stall under injected hangs",
            "scale": scale,
            "rows": len(PR10_DATA),
            "rounds": rounds,
            "queries_per_variant": queries,
            "seed": seed,
            "python": sys.version.split()[0],
        },
        "variants": variants,
        "p99_stall_ratio": round(deadline / heart, 3) if heart > 0 else None,
    }


def check_pr10(result: dict) -> int:
    """Nonzero when the liveness evidence is missing.

    Hardware-independent criteria: both variants return the exact
    aggregate under injected hangs; the hang schedule actually fired in
    both; the heartbeat variant detected via fences, the deadline-only
    variant via RPC timeouts; and the heartbeat p99 stall beats the
    deadline-only p99 (detection at ``heartbeat_timeout``, not at
    ``rpc_deadline``)."""
    failures = []
    for name, entry in result["variants"].items():
        if not entry["correct"]:
            failures.append(f"{name}: results diverged under injected hangs")
        if entry["hangs_injected"] == 0:
            failures.append(f"{name}: the hang schedule never fired")
    heart = result["variants"]["heartbeats"]
    deadline = result["variants"]["deadline_only"]
    if heart["heartbeat_fences"] == 0:
        failures.append("heartbeats variant never fenced a hung worker")
    if deadline["rpc_timeouts"] == 0:
        failures.append("deadline_only variant never hit the RPC deadline")
    if heart["stall_p99_ms"] >= deadline["stall_p99_ms"]:
        failures.append(
            f"heartbeat p99 stall {heart['stall_p99_ms']} ms is not below "
            f"deadline-only {deadline['stall_p99_ms']} ms"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"check ok: p99 stall {heart['stall_p99_ms']} ms with "
            f"heartbeats vs {deadline['stall_p99_ms']} ms deadline-only "
            f"({result['p99_stall_ratio']}x), results exact under "
            f"{heart['hangs_injected']}+{deadline['hangs_injected']} hangs"
        )
    return 1 if failures else 0


#: First line of the schema section in figures.txt — run_bench refreshes
#: everything from this marker on; the pytest bench suite (conftest.py)
#: preserves it when rewriting the figure tables above it.
SCHEMA_MARKER = "==== BENCH_PR2.json schema ===="

SCHEMA_DOC = (
    SCHEMA_MARKER
    + """
Written by benchmarks/run_bench.py to BENCH_PR2.json at the repo root.

{
  "meta": {
    "bench":   harness title,
    "scale":   row-count multiplier (1.0 = 120000 rows),
    "rows":    rows in the benchmark dataset,
    "lookups": keys in the index_lookup IN-list,
    "rounds":  timed rounds per op (median reported),
    "seed":    RNG seed for row generation,
    "python":  interpreter version,
    "codegen": {"compiled": <kernels compiled>,
                "fallbacks": <interpreter fallbacks>}
  },
  "ops": {
    <op>: {          # filter_project | lookup_scan | index_lookup |
                     # hash_aggregate
      "rows":                   rows processed per call,
      "rounds":                 timed rounds,
      "interpreted_ms":         median latency, codegen_enabled=False,
      "compiled_ms":            median latency, codegen_enabled=True,
      "speedup":                interpreted_ms / compiled_ms,
      "interpreted_rows_per_s": throughput at the interpreted median,
      "compiled_rows_per_s":    throughput at the compiled median
    }
  }
}

Regenerate: python benchmarks/run_bench.py [--scale F] [--rounds N]
[--seed N] [--out PATH] [--check]. --check exits nonzero if the
compiled path is slower than interpreted on filter_project.

Note on the index_lookup floor (~1.1x): profiling shows ~60% of each
call is analyzer/optimizer tree walks over the IN-list expression
(transform_up visits every literal on every call), paid identically in
both modes; the cTrie probes themselves are a small fraction. Compiled
mode can only accelerate the probe/decode slice, so the end-to-end
speedup is capped near 1.1x. Latency-critical callers should use
IndexedDataFrame.lookup_many / get_rows_local, which bypass the
planner entirely.

==== BENCH_PR3.json schema ====
Written by benchmarks/run_bench.py --suite pr3 to BENCH_PR3.json at
the repo root. Same dataset/generator as PR2; both sides run the same
queries, with zone_maps_enabled/adaptive_enabled False (static) vs
True (adaptive).

{
  "meta": {
    "bench":  harness title,
    "scale":  row-count multiplier (1.0 = 120000 rows),
    "rows":   rows in the benchmark dataset,
    "rounds": timed rounds per op (median reported),
    "seed":   RNG seed for row generation,
    "python": interpreter version,
    "markers": {          # evidence from one instrumented adaptive run
      "pruning": {        # delta of EngineContext.pruning_metrics
        "partitions_total":  candidate partitions seen by pruned scans,
        "partitions_pruned": partitions skipped via zone maps,
        "partitions_routed": partitions skipped via hash-key routing,
        "batches_total":     row batches seen in surviving partitions,
        "batches_pruned":    row batches skipped via per-batch zones,
        "scans":             scans that went through pruning
      },
      "coalesced_shuffles":     shuffles whose reduce side was coalesced,
      "coalesced_partitions":   reduce partitions removed by coalescing,
      "runtime_broadcast_joins": joins replanned to broadcast at runtime,
      "join_decision":  the AdaptiveJoin line from the executed plan,
                        e.g. "AdaptiveJoin[inner, decision=broadcast(6 rows)]"
    }
  },
  "ops": {
    <op>: {      # selective_range_scan | skewed_shuffle_aggregate |
                 # small_probe_join
      "rows":                rows processed per call,
      "rounds":              timed rounds,
      "static_ms":           median latency, both knobs False,
      "adaptive_ms":         median latency, both knobs True,
      "speedup":             static_ms / adaptive_ms,
      "static_rows_per_s":   throughput at the static median,
      "adaptive_rows_per_s": throughput at the adaptive median
    }
  }
}

Regenerate: python benchmarks/run_bench.py --suite pr3 [--scale F]
[--rounds N] [--seed N] [--out PATH] [--check]. --check exits nonzero
if the selective scan pruned zero batches or the small-probe join was
not replanned to broadcast at runtime.

==== BENCH_PR5.json schema ====
Written by benchmarks/run_bench.py --suite pr5 to BENCH_PR5.json at
the repo root. Same dataset/generator as PR2. The append workload
replays the paper's update path — ~100 micro-batches of
``IndexedDataFrame.append_rows`` — under three configurations:
durability off (plain), on (WAL + fsync per batch), and on with
``wal_fsync=False``. Recovery is timed cold (fresh session) per mode.

{
  "meta": {
    "bench":      harness title,
    "scale":      row-count multiplier (1.0 = 120000 rows),
    "rows":       rows appended per timed run,
    "batch_rows": rows per append_rows micro-batch,
    "rounds":     timed rounds (median reported),
    "seed":       RNG seed for row generation,
    "python":     interpreter version,
    "wal_bytes_full_run": live WAL bytes after one full durable run
  },
  "append": {
    "plain_ms":           median append-loop latency, durability off,
    "durable_fsync_ms":   ... durability on, fsync per WAL batch,
    "durable_nofsync_ms": ... durability on, wal_fsync=False,
    "fsync_overhead":     durable_fsync_ms / plain_ms,
    "nofsync_overhead":   durable_nofsync_ms / plain_ms,
    "rows_per_s_plain":          throughput at the plain median,
    "rows_per_s_durable_fsync":  throughput at the durable median
  },
  "recovery": {
    <size>: {    # quarter | full  (fraction of the dataset)
      "rows":              rows in the recovered store,
      "wal_bytes":         WAL size the wal_replay pass reads,
      "wal_replay_ms":     median cold recovery, WAL replay only,
      "wal_replay_rows_ok":   recovered count == appended count,
      "checkpoint_ms":     median cold recovery from a checkpoint,
      "checkpoint_rows_ok":   recovered count == appended count
    }
  }
}

Regenerate: python benchmarks/run_bench.py --suite pr5 [--scale F]
[--rounds N] [--seed N] [--out PATH] [--check]. --check exits nonzero
if any recovery pass lost or duplicated rows, or the durable run wrote
an empty WAL.

==== BENCH_PR6.json schema ====
Written by benchmarks/run_bench.py --suite pr6 to BENCH_PR6.json at
the repo root. Six closed-loop worker threads each issue a mixed
stream (indexed point lookup, GROUP BY analytic, filtered scan)
against an indexed table while an appender thread races them with
micro-batch append_rows — the paper's low-latency-queries-on-
updatable-data scenario under deliberate overload (6 workers on a
2-slot admission pool).

{
  "meta": {
    "bench":          harness title,
    "scale":          row-count multiplier (dataset = 12000 rows @ 1.0),
    "rows":           rows in the benchmark table,
    "workers":        closed-loop worker threads per mode,
    "slots":          serving_max_concurrent in the governed modes,
    "ops_per_worker": queries each worker issues (2 * --rounds),
    "rounds":         --rounds as given,
    "seed":           RNG seed (rows, chaos profile),
    "python":         interpreter version
  },
  "modes": {
    <mode>: {    # static          - ungoverned .sql() baseline
                 # governed        - .serve() on the undersized pool
                 # governed_chaos  - governed + serving chaos profile
                 #                   (capped fire budget)
      "workers", "ops_per_worker": as in meta,
      "wall_s":      wall-clock for the whole closed loop,
      "qps":         completed queries per second,
      "p50_ms":      median latency over *completed* queries,
      "p99_ms":      99th-percentile latency over completed queries,
      "max_ms":      slowest completed query,
      "shed_p99_ms": p99 latency of *rejections* (shedding must be
                     cheap; null when nothing was shed),
      "outcomes": {  # every worker query lands in exactly one bucket
        "completed", "rejected", "cancelled", "failed",
        "untyped",          # non-typed worker errors - must be 0
        "appender_untyped"  # non-typed appender errors - must be 0
      },
      "hung_threads": threads still alive after the join budget,
      # governed modes only:
      "drained":          admission/memory accounting all zero after,
      "serving":          ServingRuntime counter snapshot,
      "peak_queue_depth": deepest the admission queue got,
      "breaker_states":   site -> closed|open|half_open at the end
    }
  }
}

Regenerate: python benchmarks/run_bench.py --suite pr6 [--scale F]
[--rounds N] [--seed N] [--out PATH] [--check]. --check exits nonzero
if any thread hung, any error was untyped, the outcome mix is not
conserved, the static baseline dropped a query, governed mode shed
nothing despite the undersized pool, or governance accounting failed
to drain.

==== BENCH_PR7.json schema ====
Written by benchmarks/run_bench.py --suite pr7 to BENCH_PR7.json at
the repo root. A/B of multi-process sharded executors (REPRO_EXECUTORS)
against in-process execution on scan / filter / aggregate.

{
  "meta": {
    "bench":     suite description,
    "scale":     row-count multiplier (rows = 4 * 120000 * scale),
    "rows":      dataset size,
    "rounds":    timed rounds per op (median reported),
    "seed":      dataset RNG seed,
    "cpu_count": host cores — wall speedups are bounded by
                 min(cpu_count, executors); on a 1-core host the
                 workers time-slice and speedup cannot exceed ~1x,
    "partitions": splits per stage (tasks per query),
    "python":    interpreter version
  },
  "local_latency_ms": op -> median ms with executors=0 (the baseline),
  "backends": {
    "executors_N": {
      "latency_ms":        op -> median ms on N worker processes,
      "speedup":           op -> local_ms / cluster_ms,
      "aggregate_speedup": sum(local) / sum(cluster) over all ops,
      "identical":         true iff every op returned exactly the
                           baseline's rows (bit-identical contract),
      "backend_stats":     tasks_dispatched / codec_fallbacks /
                           workers_lost / crashes_injected / workers /
                           generations
    }
  },
  "task_parity": {          # hardware-independent speedup evidence
    "driver_task_ms":  one captured scan task run on the driver,
    "worker_task_ms":  the same task through codec + worker context,
    "ratio":           worker/driver — ~1.0 means only core count
                       limits the wall speedup,
    "envelope_bytes":  size of the pickled task envelope
  }
}

Regenerate: python benchmarks/run_bench.py --suite pr7 [--scale F]
[--rounds N] [--seed N] [--out PATH] [--check]. --check exits nonzero
if results diverge from in-process, no tasks were dispatched, any
query-path codec fallback or worker death occurred, task parity is
worse than 1.4x, or wall speedup misses the hardware-scaled bar
(>=2x aggregate at 4 workers on >=4 cores; >=1.2x at 2 workers on
2-3 cores; sanity bound only on 1 core).

==== BENCH_PR8.json schema ====
Written by benchmarks/run_bench.py --suite pr8 to BENCH_PR8.json at
the repo root. A/B of the costed bitmap-index plans against the cTrie
IN-list lookup and the zone-map-pruned scan, plus the shared-
arrangement amortization run. Every meta also carries the cpu_count /
host block stamped into all suites.

{
  "meta": {
    "bench":   suite description,
    "scale":   row-count multiplier (1.0 = 120000 rows),
    "rows":    dataset size,
    "rounds":  timed rounds per op (median reported),
    "seed":    dataset RNG seed,
    "python":  interpreter version,
    "cpu_count": host cores (stamped into every suite's meta),
    "host":    {"platform", "machine", "python_implementation"},
    "markers": {
      "single_eq": BitmapScan EXPLAIN line (bitmap_chosen=True),
      "and_eq":    BitmapIndexAnd EXPLAIN line (bitmap_and=True),
      "or_range":  BitmapIndexAnd EXPLAIN line (OR+AND program),
      "rejected":  IndexedScan line carrying index_rejected=<reason>
                   for the non-selective predicate the cost model
                   sent back to the scan path,
      "pruning":   pruning-counter deltas for the rejected query —
                   index_rejected must be > 0 (EXPLAIN and metrics
                   agree on the fallback)
    }
  },
  "ops": {
    <op>: {          # single_eq | and_eq | or_range
      "rows":            dataset rows,
      "selected":        rows the predicate keeps,
      "scan_ms":         median latency, bitmap_indexes_enabled=False,
      "bitmap_ms":       median latency, bitmap plan chosen,
      "speedup_vs_scan": scan_ms / bitmap_ms,
      "identical":       true iff every path returned the same rows,
      # and_eq only — the cTrie rival (application-maintained
      # city→ids mapping pushed through the primary index):
      "ctrie_ms":         median latency of the IN-list plan,
      "ctrie_keys":       keys in that IN-list,
      "speedup_vs_ctrie": ctrie_ms / bitmap_ms
    }
  },
  "sharing": {
    "build_ms":      first create_index (pays the backfill),
    "share_ms":      median re-acquire (shares by reference),
    "amortization":  build_ms / share_ms,
    "sequential":    {"builds": 1, "shares": re-acquire count},
    "concurrent": {  # N threads racing create_index on a fresh column
      "consumers", "builds" (must be 1), "shares" (N-1),
      "first_ms" (the builder), "rest_ms" (median sharer)
    },
    "registry":      process-wide builds/shares/hits counters
  }
}

Regenerate: python benchmarks/run_bench.py --suite pr8 [--scale F]
[--rounds N] [--seed N] [--out PATH] [--check]. --check exits nonzero
if any EXPLAIN marker is missing, the rejected fallback left no
pruning counters, any path's rows diverge, sharing failed to amortize
(builds != 1), or — on full-scale figures — bitmap-AND misses the
hardware-scaled floor (>=3x vs both rivals on multi-core hosts, >=2x
on 1 core).

==== BENCH_PR10.json schema ====
Written by benchmarks/run_bench.py --suite pr10 to BENCH_PR10.json at
the repo root. Driver stall under injected whole-worker hangs
(cluster.hang schedule, every map split's first attempt), comparing
the two gray-failure detectors on identical schedules.

{
  "meta": {
    "bench", "scale", "rows", "rounds", "queries_per_variant", "seed",
    "python", "hostname", "platform", "cpu_model", "cpu_count"
  },
  "variants": {
    <variant>: {     # heartbeats (interval 0.02 s, timeout 0.35 s)
                     # | deadline_only (no beats, rpc_deadline 2 s)
      "queries":          measured queries,
      "stall_p50_ms":     median end-to-end query latency,
      "stall_p99_ms":     p99 query latency (the stall headline:
                          bounded by heartbeat_timeout with beats on,
                          by rpc_deadline without),
      "stall_max_ms":     worst query,
      "correct":          true iff every query returned the exact
                          aggregate (fenced respawn + lineage recompute
                          lost and duplicated nothing),
      "hangs_injected":   cluster.hang directives shipped,
      "heartbeat_fences": monitor verdicts (0 for deadline_only),
      "rpc_timeouts":     deadline expiries (0 for heartbeats),
      "schedule_fires":   total schedule draws that fired,
      "backend_stats":    full ProcessBackend counter dump
    }
  },
  "p99_stall_ratio": deadline_only p99 / heartbeats p99
}

Regenerate: python benchmarks/run_bench.py --suite pr10 [--scale F]
[--rounds N] [--seed N] [--out PATH] [--check]. --check exits nonzero
if either variant returned a wrong aggregate, the hang schedule never
fired, the heartbeat variant never fenced, the deadline variant never
timed out, or the heartbeat p99 stall fails to beat deadline-only.
"""
)


def ensure_schema_doc(path: Path) -> None:
    """Refresh the schema section at the end of ``figures.txt``.

    Everything before the marker (the figure tables the pytest bench
    suite writes) is left alone.
    """
    text = path.read_text() if path.exists() else ""
    marker_at = text.find(SCHEMA_MARKER)
    if marker_at != -1:
        text = text[:marker_at]
    head = text.rstrip()
    if head:
        head += "\n\n"
    path.write_text(head + SCHEMA_DOC)


def time_op(fn, rounds: int) -> list[float]:
    fn()  # warmup: compile kernels, populate caches, settle allocator
    samples = []
    for _ in range(rounds):
        # Each round materializes row lists large enough to trigger
        # collection mid-sample; collect between rounds and keep the
        # collector out of the timed region so medians are stable.
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            samples.append((time.perf_counter() - start) * 1000.0)
        finally:
            gc.enable()
    return samples


def run(scale: float, rounds: int, seed: int) -> dict:
    n = max(1000, int(BASE_ROWS * scale))
    lookups = max(50, int(BASE_LOOKUPS * scale))
    rows = make_rows(n, seed)

    interpreted = build_ops(rows, lookups, codegen_enabled=False)
    compiled = build_ops(rows, lookups, codegen_enabled=True)
    codegen.reset_stats()

    ops: dict[str, dict] = {}
    for name in interpreted:
        fn_i, work = interpreted[name]
        fn_c, _ = compiled[name]
        med_i = statistics.median(time_op(fn_i, rounds))
        med_c = statistics.median(time_op(fn_c, rounds))
        ops[name] = {
            "rows": work,
            "rounds": rounds,
            "interpreted_ms": round(med_i, 3),
            "compiled_ms": round(med_c, 3),
            "speedup": round(med_i / med_c, 3) if med_c > 0 else None,
            "interpreted_rows_per_s": round(work / (med_i / 1000.0)) if med_i > 0 else None,
            "compiled_rows_per_s": round(work / (med_c / 1000.0)) if med_c > 0 else None,
        }
        print(
            f"{name:16s} interpreted {med_i:9.2f} ms   "
            f"compiled {med_c:9.2f} ms   speedup {ops[name]['speedup']:.2f}x"
        )

    stats = codegen.stats()
    return {
        "meta": {
            "bench": "PR2 interpreted-vs-compiled operator microbenchmarks",
            "scale": scale,
            "rows": n,
            "lookups": lookups,
            "rounds": rounds,
            "seed": seed,
            "python": sys.version.split()[0],
            "codegen": {"compiled": stats.compiled, "fallbacks": stats.fallbacks},
        },
        "ops": ops,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite",
                        choices=("pr2", "pr3", "pr5", "pr6", "pr7", "pr8",
                                 "pr10"),
                        default="pr2",
                        help="pr2: codegen A/B; pr3: zone-map/adaptive A/B; "
                             "pr5: durability overhead + cold recovery; "
                             "pr6: closed-loop concurrent serving; "
                             "pr7: multi-process executors vs in-process; "
                             "pr8: bitmap indexes vs cTrie/pruned scan; "
                             "pr10: hung-worker stall, heartbeat vs deadline")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="row-count multiplier (1.0 = %d rows)" % BASE_ROWS)
    parser.add_argument("--rounds", type=int, default=5,
                        help="timed rounds per op (median reported)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default BENCH_<suite>.json)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero on regression (per-suite criteria; "
                             "see module docstring)")
    args = parser.parse_args(argv)
    out = args.out or REPO_ROOT / f"BENCH_{args.suite.upper()}.json"

    if args.suite == "pr3":
        result = run_pr3(args.scale, args.rounds, args.seed)
    elif args.suite == "pr5":
        result = run_pr5(args.scale, args.rounds, args.seed)
    elif args.suite == "pr6":
        result = run_pr6(args.scale, args.rounds, args.seed)
    elif args.suite == "pr7":
        result = run_pr7(args.scale, args.rounds, args.seed)
    elif args.suite == "pr8":
        result = run_pr8(args.scale, args.rounds, args.seed)
    elif args.suite == "pr10":
        result = run_pr10(args.scale, args.rounds, args.seed)
    else:
        result = run(args.scale, args.rounds, args.seed)
    # Every suite's figures carry the producing hardware: --check
    # thresholds are hardware-aware, so figures without host identity
    # cannot be audited.
    result["meta"].update(host_meta())
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out}")
    ensure_schema_doc(Path(__file__).resolve().parent / "figures.txt")

    if args.check:
        if args.suite == "pr3":
            return check_pr3(result)
        if args.suite == "pr5":
            return check_pr5(result)
        if args.suite == "pr6":
            return check_pr6(result)
        if args.suite == "pr7":
            return check_pr7(result)
        if args.suite == "pr8":
            return check_pr8(result)
        if args.suite == "pr10":
            return check_pr10(result)
        speedup = result["ops"]["filter_project"]["speedup"]
        if speedup is None or speedup < 1.0:
            print(
                f"REGRESSION: compiled filter_project is slower than "
                f"interpreted (speedup {speedup})",
                file=sys.stderr,
            )
            return 1
        print(f"check ok: filter_project speedup {speedup:.2f}x >= 1.0")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
