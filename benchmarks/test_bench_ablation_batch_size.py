"""Ablation A1 — row-batch size sweep (paper §2 design knob).

*"Both the batch and row sizes are configurable parameters."* Smaller
batches allocate more often and fragment chains across buffers; larger
batches amortize allocation. Appends and lookups are measured across a
64 KiB → 4 MiB sweep; times should vary modestly (the design is
batch-size-robust), with very small batches paying an allocation tax
on append.
"""

from __future__ import annotations

import pytest

from repro.core.partition import IndexedPartition
from repro.core.pointers import PointerLayout
from repro.sql.types import LongType, StringType, StructField, StructType

BATCH_SIZES = [64 * 1024, 256 * 1024, 1024 * 1024, 4 * 1024 * 1024]
ROWS = 20_000

SCHEMA = StructType(
    [
        StructField("id", LongType(), nullable=False),
        StructField("payload", StringType()),
    ]
)


def _build(batch_size: int) -> IndexedPartition:
    layout = PointerLayout.for_geometry(batch_size, 1024)
    partition = IndexedPartition(SCHEMA, 0, layout, batch_size, 1024)
    return partition


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_append_throughput(benchmark, batch_size):
    rows = [(i, f"payload-{i:08d}" * 3) for i in range(ROWS)]

    def append_all():
        partition = _build(batch_size)
        partition.append_many(rows)
        return partition.row_count

    assert append_all() == ROWS
    benchmark.pedantic(append_all, rounds=3, warmup_rounds=1, iterations=1)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_lookup_latency(benchmark, batch_size):
    partition = _build(batch_size)
    # 10 versions per key → 10-hop backward chains across batches.
    partition.append_many(
        [(i % (ROWS // 10), f"v{j}") for j, i in enumerate(range(ROWS))]
    )
    snapshot = partition.snapshot()
    key = (ROWS // 10) // 2

    result = list(snapshot.lookup(key))
    assert len(result) == 10

    benchmark.pedantic(
        lambda: list(snapshot.lookup(key)), rounds=30, warmup_rounds=3, iterations=1
    )
