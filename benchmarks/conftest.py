"""Shared fixtures for the benchmark suite.

Scale is controlled by ``REPRO_BENCH_SF`` (default 1.0 ≈ 1 000 persons;
the paper ran SF300 on a 10-node EC2 cluster — set a few hundred here
only if you have the patience). Results tables are printed at session
teardown so ``pytest benchmarks/ --benchmark-only`` emits the textual
equivalent of each paper figure.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import BenchResult, compare_table, figure2_session, figure3_contexts
from repro.bench.workloads import Figure2Setup, Figure3Setup

SCALE = float(os.environ.get("REPRO_BENCH_SF", "2.0"))
THREADS = int(os.environ.get("REPRO_BENCH_THREADS", "4"))


@pytest.fixture(scope="session")
def fig2_setup() -> Figure2Setup:
    setup = figure2_session(scale_factor=SCALE, threads=THREADS)
    yield setup
    setup.session.stop()


@pytest.fixture(scope="session")
def fig3_setup() -> Figure3Setup:
    setup = figure3_contexts(scale_factor=SCALE, threads=THREADS)
    yield setup
    setup.session.stop()


class ResultSink:
    """Collects (figure, label, system) → median ms and prints tables."""

    def __init__(self) -> None:
        self.measurements: dict[str, dict[str, dict[str, float]]] = {}

    def record(self, figure: str, label: str, system: str, ms: float) -> None:
        self.measurements.setdefault(figure, {}).setdefault(label, {})[system] = ms

    def tables(self) -> list[str]:
        out = []
        for figure, rows in self.measurements.items():
            results = []
            for label, systems in rows.items():
                if "indexed" in systems and "vanilla" in systems:
                    results.append(
                        BenchResult(label, systems["indexed"], systems["vanilla"])
                    )
            if results:
                out.append(compare_table(figure, results))
        return out


@pytest.fixture(scope="session")
def result_sink() -> ResultSink:
    sink = ResultSink()
    yield sink
    tables = sink.tables()
    if not tables:
        return
    text = "\n\n".join(tables)
    # Bypass pytest's capture so the tables reach the terminal, and
    # persist them for EXPERIMENTS.md.
    import sys

    sys.__stdout__.write("\n" + text + "\n")
    path = os.path.join(os.path.dirname(__file__), "figures.txt")
    # Preserve the BENCH_PR2.json schema section run_bench.py maintains
    # at the end of the file; only the figure tables are rewritten.
    tail = ""
    if os.path.exists(path):
        with open(path) as fh:
            old = fh.read()
        marker_at = old.find("==== BENCH_PR2.json schema ====")
        if marker_at != -1:
            tail = "\n" + old[marker_at:]
    with open(path, "w") as fh:
        fh.write(text + "\n" + tail)
