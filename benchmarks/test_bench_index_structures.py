"""Ablation A7 — why a cTrie? Versioning cost vs a copied dict index.

The obvious alternative index is a hash map; but MVCC then needs a
full copy per version (one ``appendRows`` per micro-batch!), which is
O(n) in table size. The cTrie snapshot is O(1) plus an amortized
copy-on-write burst proportional to the *batch*, not the table.

Measured shape (see EXPERIMENTS.md): growing the table 10x grows the
dict's cycle cost ~30x but the cTrie's only ~4x. In CPython the dict
copy is C-speed while cTrie copy-on-write is Python-object work, so
the absolute crossover lies beyond laptop scale — the JVM original
pays far smaller trie constants. The asymptotic assertion below is
what the design argument rests on.
"""

from __future__ import annotations

import time

import pytest

from repro.ctrie import CTrie

SIZES = [10_000, 100_000]
BATCH = 100


@pytest.mark.parametrize("size", SIZES)
def test_ctrie_version_cycle(benchmark, size):
    trie = CTrie()
    for i in range(size):
        trie.insert(i, i)
    counter = {"next": size}

    def cycle():
        start = counter["next"]
        counter["next"] += BATCH
        for i in range(start, start + BATCH):
            trie.insert(i, i)
        return trie.readonly_snapshot()  # O(1) version mint

    benchmark.pedantic(cycle, rounds=20, warmup_rounds=2, iterations=1)


@pytest.mark.parametrize("size", SIZES)
def test_dict_copy_version_cycle(benchmark, size):
    index = {i: i for i in range(size)}
    state = {"index": index, "next": size}

    def cycle():
        fresh = dict(state["index"])  # O(n) copy to preserve old version
        start = state["next"]
        state["next"] += BATCH
        for i in range(start, start + BATCH):
            fresh[i] = i
        state["index"] = fresh
        return fresh

    benchmark.pedantic(cycle, rounds=20, warmup_rounds=2, iterations=1)


def test_ctrie_cycle_is_size_independent():
    """The design-choice assertion: cTrie version cycles must not grow
    linearly with table size (dict copies do)."""

    def best_cycle(trie: CTrie, base: int) -> float:
        best = float("inf")
        for round_ in range(30):
            start = time.perf_counter()
            for i in range(BATCH):
                trie.insert(base + round_ * BATCH + i, i)
            trie.readonly_snapshot()
            best = min(best, time.perf_counter() - start)
        return best

    small = CTrie()
    for i in range(5_000):
        small.insert(i, i)
    large = CTrie()
    for i in range(200_000):
        large.insert(i, i)

    growth = best_cycle(large, 10**9) / max(best_cycle(small, 10**9), 1e-9)
    assert growth < 8, f"version cycle grew {growth:.1f}x for 40x more data"
